//! Slotted-page record layout.
//!
//! A slotted region occupies the tail of a page starting at a caller
//! chosen `base` offset (heap pages reserve a small header in front for
//! the page chain). Layout, with offsets relative to `base`:
//!
//! ```text
//! +-----------+----------+---------------------+------------------+
//! | count u16 | free u16 | slot entries (4B ea)| ... free ... |records|
//! +-----------+----------+---------------------+------------------+
//! ```
//!
//! Each slot entry is `(offset u16, len u16)`; records grow downward
//! from the end of the page while the slot array grows upward. A slot
//! with `offset == 0` is a tombstone available for reuse (offset 0 is
//! the header, so no live record can be there). Deleting and updating
//! fragment the record area; [`SlottedPage::compact`] defragments.

use crate::page::{Page, PAGE_SIZE};

const HDR_COUNT: usize = 0;
const HDR_FREE_END: usize = 2;
const HDR_SIZE: usize = 4;
const SLOT_SIZE: usize = 4;

/// Mutable accessor for the slotted region of a page.
pub struct SlottedPage<'a> {
    page: &'a mut Page,
    base: usize,
}

/// Result of [`SlottedPage::update`].
#[derive(Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// Record updated in place (or relocated within the page).
    Done,
    /// Not enough space in this page even after compaction; the caller
    /// must relocate the record to another page.
    NoSpace,
}

impl<'a> SlottedPage<'a> {
    /// Wrap the slotted region of `page` starting at `base`.
    ///
    /// Call [`SlottedPage::init`] once on a fresh page before use.
    pub fn new(page: &'a mut Page, base: usize) -> Self {
        debug_assert!(base + HDR_SIZE < PAGE_SIZE);
        SlottedPage { page, base }
    }

    /// Initialize an empty slotted region.
    pub fn init(&mut self) {
        self.set_count(0);
        self.set_free_end(self.region_len());
    }

    fn region_len(&self) -> usize {
        PAGE_SIZE - self.base
    }

    fn count(&self) -> usize {
        self.page.get_u16(self.base + HDR_COUNT) as usize
    }

    fn set_count(&mut self, c: usize) {
        self.page.put_u16(self.base + HDR_COUNT, c as u16);
    }

    fn free_end(&self) -> usize {
        self.page.get_u16(self.base + HDR_FREE_END) as usize
    }

    fn set_free_end(&mut self, v: usize) {
        self.page.put_u16(self.base + HDR_FREE_END, v as u16);
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let off = self.base + HDR_SIZE + i * SLOT_SIZE;
        (
            self.page.get_u16(off) as usize,
            self.page.get_u16(off + 2) as usize,
        )
    }

    fn set_slot(&mut self, i: usize, rec_off: usize, len: usize) {
        let off = self.base + HDR_SIZE + i * SLOT_SIZE;
        self.page.put_u16(off, rec_off as u16);
        self.page.put_u16(off + 2, len as u16);
    }

    /// Bytes of contiguous free space between the slot array and the
    /// record area.
    pub fn contiguous_free(&self) -> usize {
        self.free_end()
            .saturating_sub(HDR_SIZE + self.count() * SLOT_SIZE)
    }

    /// Total reclaimable free space (after compaction), assuming a new
    /// slot entry would be needed.
    pub fn total_free(&self) -> usize {
        let live: usize = (0..self.count())
            .map(|i| self.slot(i))
            .filter(|(off, _)| *off != 0)
            .map(|(_, len)| len)
            .sum();
        self.region_len() - HDR_SIZE - self.count() * SLOT_SIZE - live
    }

    /// Largest record insertable into a completely empty region with
    /// `base` header reservation.
    pub fn max_record_len(base: usize) -> usize {
        PAGE_SIZE - base - HDR_SIZE - SLOT_SIZE
    }

    /// Number of slots (live + tombstones).
    pub fn slot_count(&self) -> usize {
        self.count()
    }

    /// Insert `data`, returning the slot number, or `None` if the page
    /// cannot hold it even after compaction.
    pub fn insert(&mut self, data: &[u8]) -> Option<u16> {
        let reuse = (0..self.count()).find(|&i| self.slot(i).0 == 0);
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.contiguous_free() < data.len() + slot_cost {
            if self.total_free() < data.len() + slot_cost {
                return None;
            }
            self.compact();
            if self.contiguous_free() < data.len() + slot_cost {
                return None;
            }
        }
        let new_end = self.free_end() - data.len();
        self.page.put_slice(self.base + new_end, data);
        self.set_free_end(new_end);
        let idx = match reuse {
            Some(i) => i,
            None => {
                let i = self.count();
                self.set_count(i + 1);
                i
            }
        };
        // Record a non-zero offset even for empty records: `new_end` is
        // at least HDR_SIZE, so 0 stays reserved for tombstones.
        self.set_slot(idx, new_end, data.len());
        Some(idx as u16)
    }

    /// Read the record in `slot`, if live.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        let i = slot as usize;
        if i >= self.count() {
            return None;
        }
        let (off, len) = self.slot(i);
        if off == 0 {
            return None;
        }
        Some(self.page.get_slice(self.base + off, len))
    }

    /// Delete the record in `slot`. Returns false if it was not live.
    pub fn delete(&mut self, slot: u16) -> bool {
        let i = slot as usize;
        if i >= self.count() || self.slot(i).0 == 0 {
            return false;
        }
        self.set_slot(i, 0, 0);
        // Shrink the slot array if a tail of tombstones formed.
        let mut c = self.count();
        while c > 0 && self.slot(c - 1).0 == 0 {
            c -= 1;
        }
        self.set_count(c);
        true
    }

    /// Replace the record in `slot` with `data`, relocating within the
    /// page if needed.
    pub fn update(&mut self, slot: u16, data: &[u8]) -> UpdateOutcome {
        let i = slot as usize;
        if i >= self.count() || self.slot(i).0 == 0 {
            return UpdateOutcome::NoSpace;
        }
        let (off, len) = self.slot(i);
        if data.len() <= len {
            // In place; the leftover tail becomes internal fragmentation
            // reclaimed by the next compaction.
            self.page.put_slice(self.base + off, data);
            self.set_slot(i, off, data.len());
            return UpdateOutcome::Done;
        }
        // Tombstone the old record, then place the new bytes; roll back
        // on failure.
        self.set_slot(i, 0, 0);
        if self.contiguous_free() < data.len() {
            if self.total_free() < data.len() {
                self.set_slot(i, off, len);
                return UpdateOutcome::NoSpace;
            }
            self.compact();
        }
        let new_end = self.free_end() - data.len();
        self.page.put_slice(self.base + new_end, data);
        self.set_free_end(new_end);
        self.set_slot(i, new_end, data.len());
        UpdateOutcome::Done
    }

    /// Defragment the record area so all free space is contiguous.
    pub fn compact(&mut self) {
        let count = self.count();
        // Collect live records (slot, offset, len), sorted by offset
        // descending so we can slide them toward the end of the page.
        let mut live: Vec<(usize, usize, usize)> = (0..count)
            .map(|i| {
                let (off, len) = self.slot(i);
                (i, off, len)
            })
            .filter(|(_, off, _)| *off != 0)
            .collect();
        live.sort_by_key(|(_, off, _)| std::cmp::Reverse(*off));
        let mut write_end = self.region_len();
        for (slot, off, len) in live {
            write_end -= len;
            if off != write_end {
                // Overlap-safe: we always move data toward higher
                // addresses and regions never overlap because write_end
                // decreases past each record; use copy_within.
                let src = self.base + off;
                let dst = self.base + write_end;
                self.page.bytes_mut().copy_within(src..src + len, dst);
            }
            self.set_slot(slot, write_end, len);
        }
        self.set_free_end(write_end);
    }

    /// Iterate live `(slot, record)` pairs.
    pub fn iter_live(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.count()).filter_map(move |i| {
            let (off, len) = self.slot(i);
            if off == 0 {
                None
            } else {
                Some((i as u16, self.page.get_slice(self.base + off, len)))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Page {
        let mut p = Page::new();
        SlottedPage::new(&mut p, 0).init();
        p
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = fresh();
        let mut s = SlottedPage::new(&mut p, 0);
        let a = s.insert(b"alpha").unwrap();
        let b = s.insert(b"beta").unwrap();
        assert_ne!(a, b);
        assert_eq!(s.get(a).unwrap(), b"alpha");
        assert_eq!(s.get(b).unwrap(), b"beta");
        assert_eq!(s.get(99), None);
    }

    #[test]
    fn empty_records_are_live() {
        let mut p = fresh();
        let mut s = SlottedPage::new(&mut p, 0);
        let slot = s.insert(b"").unwrap();
        assert_eq!(s.get(slot).unwrap(), b"");
        assert!(s.delete(slot));
        assert_eq!(s.get(slot), None);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = fresh();
        let mut s = SlottedPage::new(&mut p, 0);
        let a = s.insert(b"one").unwrap();
        let _b = s.insert(b"two").unwrap();
        assert!(s.delete(a));
        assert!(!s.delete(a), "double delete");
        let c = s.insert(b"three").unwrap();
        assert_eq!(c, a, "tombstoned slot reused");
        assert_eq!(s.get(c).unwrap(), b"three");
    }

    #[test]
    fn trailing_tombstones_shrink_slot_array() {
        let mut p = fresh();
        let mut s = SlottedPage::new(&mut p, 0);
        let a = s.insert(b"one").unwrap();
        let b = s.insert(b"two").unwrap();
        assert_eq!(s.slot_count(), 2);
        s.delete(b);
        assert_eq!(s.slot_count(), 1);
        s.delete(a);
        assert_eq!(s.slot_count(), 0);
    }

    #[test]
    fn fills_up_and_compacts() {
        let mut p = fresh();
        let mut s = SlottedPage::new(&mut p, 0);
        // Fill with 100-byte records.
        let mut slots = Vec::new();
        while let Some(slot) = s.insert(&[7u8; 100]) {
            slots.push(slot);
        }
        assert!(slots.len() >= 35, "page should hold ~39 such records");
        // Delete every other record, then insert a large record that
        // only fits after compaction.
        for slot in slots.iter().step_by(2) {
            s.delete(*slot);
        }
        let big_len = s.total_free().saturating_sub(SLOT_SIZE);
        assert!(big_len > 150, "freed space should exceed one record");
        let big = vec![9u8; big_len.min(1500)];
        let slot = s.insert(&big).expect("fits after compaction");
        assert_eq!(s.get(slot).unwrap(), &big[..]);
        // Survivors intact.
        for slot in slots.iter().skip(1).step_by(2) {
            assert_eq!(s.get(*slot).unwrap(), &[7u8; 100][..]);
        }
    }

    #[test]
    fn update_in_place_shrinking_and_growing() {
        let mut p = fresh();
        let mut s = SlottedPage::new(&mut p, 0);
        let slot = s.insert(b"abcdef").unwrap();
        assert_eq!(s.update(slot, b"xy"), UpdateOutcome::Done);
        assert_eq!(s.get(slot).unwrap(), b"xy");
        assert_eq!(s.update(slot, b"longer-than-before"), UpdateOutcome::Done);
        assert_eq!(s.get(slot).unwrap(), b"longer-than-before");
    }

    #[test]
    fn update_without_space_rolls_back() {
        let mut p = fresh();
        let mut s = SlottedPage::new(&mut p, 0);
        let slot = s.insert(b"small").unwrap();
        while s.insert(&[1u8; 64]).is_some() {}
        let huge = vec![2u8; PAGE_SIZE];
        assert_eq!(s.update(slot, &huge), UpdateOutcome::NoSpace);
        assert_eq!(s.get(slot).unwrap(), b"small", "rolled back");
    }

    #[test]
    fn respects_base_offset() {
        let mut p = Page::new();
        p.put_u64(0, 0xFEED_FACE); // simulated heap header
        let mut s = SlottedPage::new(&mut p, 16);
        s.init();
        let slot = s.insert(b"payload").unwrap();
        assert_eq!(s.get(slot).unwrap(), b"payload");
        assert_eq!(p.get_u64(0), 0xFEED_FACE, "header untouched");
    }

    #[test]
    fn max_record_len_fits_exactly() {
        let mut p = fresh();
        let mut s = SlottedPage::new(&mut p, 0);
        let max = SlottedPage::max_record_len(0);
        let data = vec![3u8; max];
        let slot = s.insert(&data).expect("max record must fit");
        assert_eq!(s.get(slot).unwrap(), &data[..]);
        assert!(s.insert(b"x").is_none(), "page is exactly full");
    }

    #[test]
    fn iter_live_skips_tombstones() {
        let mut p = fresh();
        let mut s = SlottedPage::new(&mut p, 0);
        let a = s.insert(b"a").unwrap();
        let b = s.insert(b"b").unwrap();
        let c = s.insert(b"c").unwrap();
        s.delete(b);
        let live: Vec<(u16, Vec<u8>)> = s
            .iter_live()
            .map(|(i, d)| (i, d.to_vec()))
            .collect();
        assert_eq!(live, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }
}
