//! Crash-safe reply journal and push-outbox key space.
//!
//! The network layer keeps an in-memory `(client_id, seq) → reply`
//! dedup window so a retried request replays its cached ack instead of
//! re-executing. That window must survive a server restart or the
//! exactly-once contract silently degrades to at-most-once: a client
//! whose commit was durable but whose ack was lost would retry into a
//! fresh process that re-executes it. This module gives the window a
//! durable twin inside the same [`crate::store::DurableStore`] the
//! engine commits through:
//!
//! * **Reply entries** live under the reserved key prefix
//!   [`REPLY_PREFIX`] (`'j'`), keyed by big-endian `(client_id, seq)`
//!   so a prefix scan yields them in client order. Values are sealed
//!   with a CRC-32 header ([`seal`]/[`unseal`]) on top of the WAL's own
//!   record checksums, so a torn or foreign value is detected rather
//!   than replayed as an ack.
//! * **Push-outbox records** ([`OUTBOX_PREFIX`], `'q'`) retain
//!   encoded-but-unacked push frames per handler, and **push counters**
//!   ([`PUSH_SEQ_PREFIX`], `'k'`) persist each handler's next sequence
//!   number so redelivered and fresh pushes never reuse a sequence a
//!   client has already deduplicated.
//!
//! Crash atomicity is the delicate part: the journal entry for a
//! commit must become durable in the *same* WAL batch as the commit
//! itself, or a crash between the two either loses the ack (retry
//! re-executes) or invents one (retry acks a commit that never
//! happened). The server cannot append to the engine's batch directly —
//! the batch is built deep inside the resource managers — so it
//! *annotates the thread* before dispatching ([`set_pending_ops`]) and
//! [`crate::store::DurableStore::commit`] folds the annotation into the
//! first transactional batch it flushes on that thread. Requests whose
//! dispatch never reaches the store (read-only commits) fall back to a
//! separate metadata batch, which is safe precisely because there is no
//! data batch to be atomic with.

use crate::crc::crc32;
use crate::store::StoreOp;
use std::cell::RefCell;

/// Reserved key prefix for reply-journal entries (`'j'`). Must not
/// collide with engine prefixes (`'c'`/`'o'` object manager, `'r'`
/// rules, `'e'` events).
pub const REPLY_PREFIX: u8 = b'j';
/// Reserved key prefix for unacked push-outbox records (`'q'`).
pub const OUTBOX_PREFIX: u8 = b'q';
/// Reserved key prefix for per-handler push sequence counters (`'k'`).
pub const PUSH_SEQ_PREFIX: u8 = b'k';
/// Reserved key prefix for slow-subscriber eviction tombstones (`'v'`).
/// A tombstone marks a handler whose outbox blew its byte/age budget:
/// its `'q'`/`'k'` state has been garbage-collected, and the value
/// (sealed) records the preserved next-sequence counter plus whether
/// the `SubscriberEvicted` engine signal has fired yet — the signal's
/// done-marker rides the signalling transaction's WAL batch so a crash
/// at the eviction point replays it exactly once.
pub const EVICT_PREFIX: u8 = b'v';

/// Journal key for one `(client_id, seq)` reply: prefix byte followed
/// by both halves big-endian, so `scan_prefix(&[REPLY_PREFIX])` yields
/// entries grouped by client in ascending sequence order.
pub fn reply_key(client_id: u64, seq: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(17);
    k.push(REPLY_PREFIX);
    k.extend_from_slice(&client_id.to_be_bytes());
    k.extend_from_slice(&seq.to_be_bytes());
    k
}

/// Inverse of [`reply_key`]; `None` for malformed or foreign keys.
pub fn parse_reply_key(key: &[u8]) -> Option<(u64, u64)> {
    if key.len() != 17 || key[0] != REPLY_PREFIX {
        return None;
    }
    let client_id = u64::from_be_bytes(key[1..9].try_into().ok()?);
    let seq = u64::from_be_bytes(key[9..17].try_into().ok()?);
    Some((client_id, seq))
}

/// Outbox key for one unacked push: prefix, handler length (u32 BE),
/// handler bytes, sequence (u64 BE) — prefix-scannable per handler and
/// ordered by sequence within a handler.
pub fn outbox_key(handler: &str, seq: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(13 + handler.len());
    k.push(OUTBOX_PREFIX);
    k.extend_from_slice(&(handler.len() as u32).to_be_bytes());
    k.extend_from_slice(handler.as_bytes());
    k.extend_from_slice(&seq.to_be_bytes());
    k
}

/// Inverse of [`outbox_key`]; `None` for malformed or foreign keys.
pub fn parse_outbox_key(key: &[u8]) -> Option<(String, u64)> {
    if key.len() < 13 || key[0] != OUTBOX_PREFIX {
        return None;
    }
    let len = u32::from_be_bytes(key[1..5].try_into().ok()?) as usize;
    if key.len() != 13 + len {
        return None;
    }
    let handler = String::from_utf8(key[5..5 + len].to_vec()).ok()?;
    let seq = u64::from_be_bytes(key[5 + len..].try_into().ok()?);
    Some((handler, seq))
}

/// Counter key persisting `handler`'s next push sequence.
pub fn push_seq_key(handler: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + handler.len());
    k.push(PUSH_SEQ_PREFIX);
    k.extend_from_slice(handler.as_bytes());
    k
}

/// Inverse of [`push_seq_key`].
pub fn parse_push_seq_key(key: &[u8]) -> Option<String> {
    if key.is_empty() || key[0] != PUSH_SEQ_PREFIX {
        return None;
    }
    String::from_utf8(key[1..].to_vec()).ok()
}

/// Tombstone key for a dead-lettered (evicted) subscription.
pub fn evict_key(handler: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + handler.len());
    k.push(EVICT_PREFIX);
    k.extend_from_slice(handler.as_bytes());
    k
}

/// Inverse of [`evict_key`].
pub fn parse_evict_key(key: &[u8]) -> Option<String> {
    if key.is_empty() || key[0] != EVICT_PREFIX {
        return None;
    }
    String::from_utf8(key[1..].to_vec()).ok()
}

/// Seal a payload with a little-endian CRC-32 header. The WAL already
/// checksums records, but journal values outlive the log (they survive
/// checkpoints into the B+tree), so they carry their own end-to-end
/// check.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 + payload.len());
    v.extend_from_slice(&crc32(payload).to_le_bytes());
    v.extend_from_slice(payload);
    v
}

/// Verify and strip a [`seal`] header; `None` when the checksum does
/// not match (the caller treats the entry as absent, which fails safe:
/// a lost ack re-executes at most the engine's own idempotency, an
/// invented ack would be unrecoverable).
pub fn unseal(value: &[u8]) -> Option<&[u8]> {
    if value.len() < 4 {
        return None;
    }
    let stored = u32::from_le_bytes(value[..4].try_into().ok()?);
    let payload = &value[4..];
    (crc32(payload) == stored).then_some(payload)
}

thread_local! {
    static PENDING_OPS: RefCell<Option<Vec<StoreOp>>> = const { RefCell::new(None) };
}

/// Annotate the current thread with journal ops that must ride the
/// next transactional WAL batch flushed on this thread. The server
/// calls this immediately before dispatching a keyed commit; the store
/// consumes it inside [`crate::store::DurableStore::commit`].
pub fn set_pending_ops(ops: Vec<StoreOp>) {
    PENDING_OPS.with(|p| *p.borrow_mut() = Some(ops));
}

/// Take (and clear) the current thread's pending annotation, if any.
pub fn take_pending_ops() -> Option<Vec<StoreOp>> {
    PENDING_OPS.with(|p| p.borrow_mut().take())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_key_roundtrips() {
        let k = reply_key(7, 42);
        assert_eq!(parse_reply_key(&k), Some((7, 42)));
        assert_eq!(parse_reply_key(b"x"), None);
        assert_eq!(parse_reply_key(&k[..16]), None);
    }

    #[test]
    fn outbox_key_roundtrips() {
        let k = outbox_key("alerts", 9);
        assert_eq!(parse_outbox_key(&k), Some(("alerts".into(), 9)));
        assert_eq!(parse_outbox_key(&outbox_key("", 1)), Some(("".into(), 1)));
        assert_eq!(parse_outbox_key(b"q\x00\x00\x00\x09ab"), None);
    }

    #[test]
    fn push_seq_key_roundtrips() {
        assert_eq!(parse_push_seq_key(&push_seq_key("h")), Some("h".into()));
        assert_eq!(parse_push_seq_key(b"jx"), None);
    }

    #[test]
    fn evict_key_roundtrips() {
        assert_eq!(parse_evict_key(&evict_key("slow")), Some("slow".into()));
        assert_eq!(parse_evict_key(b"kx"), None);
        assert_eq!(parse_evict_key(b""), None);
    }

    #[test]
    fn seal_detects_corruption() {
        let sealed = seal(b"payload");
        assert_eq!(unseal(&sealed), Some(&b"payload"[..]));
        let mut torn = sealed.clone();
        torn[5] ^= 0xff;
        assert_eq!(unseal(&torn), None);
        assert_eq!(unseal(b"xy"), None);
    }

    #[test]
    fn pending_ops_are_per_thread_and_single_shot() {
        set_pending_ops(vec![StoreOp::Delete { key: vec![1] }]);
        std::thread::spawn(|| assert!(take_pending_ops().is_none()))
            .join()
            .unwrap();
        assert_eq!(take_pending_ops().map(|v| v.len()), Some(1));
        assert!(take_pending_ops().is_none());
    }
}
