//! A pinning buffer pool with LRU eviction.
//!
//! Callers fetch pages through the pool and hold them via [`PageRef`]
//! guards; a page is only evictable while unpinned. `capacity` is a
//! soft limit: if every frame is pinned the pool grows rather than
//! failing, which keeps deep B+tree descents simple.

use crate::disk::DiskManager;
use crate::page::{Page, PageId};
use hipac_common::Result;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One buffered page.
pub struct Frame {
    /// The page this frame currently holds.
    pub id: PageId,
    page: RwLock<Page>,
    dirty: AtomicBool,
    pins: AtomicUsize,
}

/// A pinned handle to a buffered page. The pin is released on drop.
pub struct PageRef {
    frame: Arc<Frame>,
}

impl PageRef {
    /// The page id this handle refers to.
    pub fn id(&self) -> PageId {
        self.frame.id
    }

    /// Shared read access to the page image.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.page.read()
    }

    /// Exclusive write access; marks the page dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.page.write()
    }
}

impl Clone for PageRef {
    fn clone(&self) -> Self {
        self.frame.pins.fetch_add(1, Ordering::AcqRel);
        PageRef {
            frame: Arc::clone(&self.frame),
        }
    }
}

impl Drop for PageRef {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

struct PoolInner {
    frames: HashMap<PageId, Arc<Frame>>,
    /// Approximate recency queue; may contain stale duplicates, which
    /// eviction skips.
    lru: VecDeque<PageId>,
}

/// What eviction may do with dirty pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Dirty pages may be evicted after being written back ("steal").
    WriteBack,
    /// Only clean pages are evictable; dirty pages stay resident until
    /// an explicit flush ("no-steal"). The durable store relies on this
    /// so the data file never contains un-checkpointed state.
    CleanOnly,
}

/// The buffer pool. Cheap to clone via `Arc` by callers that share it.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    capacity: usize,
    policy: EvictionPolicy,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// Create a pool over `disk` holding at most ~`capacity` pages
    /// (soft limit; see module docs), with write-back eviction.
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> Self {
        Self::with_policy(disk, capacity, EvictionPolicy::WriteBack)
    }

    /// Create a pool with an explicit eviction policy.
    pub fn with_policy(
        disk: Arc<DiskManager>,
        capacity: usize,
        policy: EvictionPolicy,
    ) -> Self {
        BufferPool {
            disk,
            capacity: capacity.max(1),
            policy,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                lru: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Fetch page `id`, reading it from disk on a miss.
    pub fn fetch(&self, id: PageId) -> Result<PageRef> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            frame.pins.fetch_add(1, Ordering::AcqRel);
            let frame = Arc::clone(frame);
            inner.lru.push_back(id);
            return Ok(PageRef { frame });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.evict_if_full(&mut inner)?;
        let page = self.disk.read_page(id)?;
        let frame = Arc::new(Frame {
            id,
            page: RwLock::new(page),
            dirty: AtomicBool::new(false),
            pins: AtomicUsize::new(1),
        });
        inner.frames.insert(id, Arc::clone(&frame));
        inner.lru.push_back(id);
        Ok(PageRef { frame })
    }

    /// Allocate a fresh zeroed page on disk and return it pinned.
    pub fn new_page(&self) -> Result<PageRef> {
        let id = self.disk.allocate()?;
        let mut inner = self.inner.lock();
        self.evict_if_full(&mut inner)?;
        let frame = Arc::new(Frame {
            id,
            page: RwLock::new(Page::new()),
            dirty: AtomicBool::new(false),
            pins: AtomicUsize::new(1),
        });
        inner.frames.insert(id, Arc::clone(&frame));
        inner.lru.push_back(id);
        Ok(PageRef { frame })
    }

    fn evict_if_full(&self, inner: &mut PoolInner) -> Result<()> {
        let mut scanned = 0;
        let bound = inner.lru.len();
        while inner.frames.len() >= self.capacity && scanned < bound {
            scanned += 1;
            let Some(candidate) = inner.lru.pop_front() else {
                break;
            };
            let evictable = match inner.frames.get(&candidate) {
                Some(f) => {
                    f.pins.load(Ordering::Acquire) == 0
                        && (self.policy == EvictionPolicy::WriteBack
                            || !f.dirty.load(Ordering::Acquire))
                }
                None => continue, // stale queue entry
            };
            if !evictable {
                inner.lru.push_back(candidate);
                continue;
            }
            // A later duplicate queue entry means the page was touched
            // again after this entry was queued: skip this entry and let
            // the newer one carry the recency.
            if inner.lru.contains(&candidate) {
                continue;
            }
            let frame = inner.frames.remove(&candidate).expect("checked above");
            if frame.dirty.load(Ordering::Acquire) {
                let page = frame.page.read();
                self.disk.write_page(candidate, &page)?;
            }
        }
        Ok(())
    }

    /// Write all dirty pages back to disk (without syncing).
    pub fn flush_all(&self) -> Result<()> {
        let inner = self.inner.lock();
        for (id, frame) in inner.frames.iter() {
            if frame.dirty.swap(false, Ordering::AcqRel) {
                let page = frame.page.read();
                self.disk.write_page(*id, &page)?;
            }
        }
        Ok(())
    }

    /// Flush dirty pages and fsync the database file.
    pub fn flush_and_sync(&self) -> Result<()> {
        self.flush_all()?;
        self.disk.sync()
    }

    /// Number of pages currently buffered.
    pub fn buffered_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// (hits, misses) counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn pool(name: &str, cap: usize) -> BufferPool {
        let dir = std::env::temp_dir().join("hipac-buffer-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p: PathBuf = dir.join(format!("{name}-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        BufferPool::new(Arc::new(DiskManager::open(&p).unwrap()), cap)
    }

    #[test]
    fn fetch_returns_written_data() {
        let pool = pool("basic", 8);
        let id = {
            let p = pool.new_page().unwrap();
            p.write().put_u64(0, 4242);
            p.id()
        };
        let p = pool.fetch(id).unwrap();
        assert_eq!(p.read().get_u64(0), 4242);
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let pool = pool("evict", 2);
        let mut ids = Vec::new();
        for i in 0..10u64 {
            let p = pool.new_page().unwrap();
            p.write().put_u64(0, i * 100);
            ids.push(p.id());
        }
        // Pool capacity is 2; most pages must have been evicted.
        assert!(pool.buffered_pages() <= 3);
        for (i, id) in ids.iter().enumerate() {
            let p = pool.fetch(*id).unwrap();
            assert_eq!(p.read().get_u64(0), i as u64 * 100, "page {id}");
        }
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let pool = pool("pinned", 2);
        let pinned = pool.new_page().unwrap();
        pinned.write().put_u64(0, 1);
        // Churn through many pages; the pinned page must survive in the
        // pool (its frame stays valid) and keep its contents.
        for _ in 0..20 {
            let p = pool.new_page().unwrap();
            p.write().put_u64(0, 9);
        }
        assert_eq!(pinned.read().get_u64(0), 1);
    }

    #[test]
    fn pool_grows_when_everything_is_pinned() {
        let pool = pool("grow", 2);
        let mut held = Vec::new();
        for i in 0..5u64 {
            let p = pool.new_page().unwrap();
            p.write().put_u64(0, i);
            held.push(p);
        }
        assert_eq!(pool.buffered_pages(), 5);
        for (i, p) in held.iter().enumerate() {
            assert_eq!(p.read().get_u64(0), i as u64);
        }
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let dir = std::env::temp_dir().join("hipac-buffer-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("flush-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let id = {
            let pool = BufferPool::new(Arc::clone(&disk), 8);
            let p = pool.new_page().unwrap();
            p.write().put_u64(8, 777);
            let id = p.id();
            drop(p);
            pool.flush_and_sync().unwrap();
            id
        };
        // Read through a fresh pool: data must be on disk.
        let pool2 = BufferPool::new(disk, 8);
        assert_eq!(pool2.fetch(id).unwrap().read().get_u64(8), 777);
    }

    #[test]
    fn hit_miss_stats() {
        let pool = pool("stats", 8);
        let id = pool.new_page().unwrap().id();
        let _a = pool.fetch(id).unwrap();
        let _b = pool.fetch(id).unwrap();
        let (hits, misses) = pool.stats();
        assert_eq!(hits, 2);
        assert_eq!(misses, 0);
    }

    #[test]
    fn concurrent_fetches_are_safe() {
        let pool = Arc::new(pool("conc", 4));
        let mut ids = Vec::new();
        for i in 0..16u64 {
            let p = pool.new_page().unwrap();
            p.write().put_u64(0, i);
            ids.push(p.id());
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    let id = ids[(t * 7 + round) % ids.len()];
                    let p = pool.fetch(id).unwrap();
                    let v = p.read().get_u64(0);
                    assert!(v < 16);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::disk::DiskManager;
    use std::path::PathBuf;

    fn clean_only_pool(name: &str, cap: usize) -> BufferPool {
        let dir = std::env::temp_dir().join("hipac-buffer-policy-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p: PathBuf = dir.join(format!("{name}-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        BufferPool::with_policy(
            Arc::new(DiskManager::open(&p).unwrap()),
            cap,
            EvictionPolicy::CleanOnly,
        )
    }

    #[test]
    fn clean_only_never_writes_dirty_pages_on_eviction() {
        let pool = clean_only_pool("nosteal", 2);
        // Dirty a page, then churn through many clean reads: the dirty
        // page must stay resident (the data file keeps its zeroed
        // image) until an explicit flush.
        let dirty = pool.new_page().unwrap();
        let dirty_id = dirty.id();
        dirty.write().put_u64(0, 0xD1D1);
        drop(dirty); // unpinned but dirty
        let mut ids = Vec::new();
        for _ in 0..10 {
            let p = pool.new_page().unwrap();
            ids.push(p.id());
        }
        // Re-fetch each allocated page (clean) to force eviction churn.
        for id in &ids {
            let _ = pool.fetch(*id).unwrap();
        }
        // The dirty page is still buffered with its contents…
        assert_eq!(pool.fetch(dirty_id).unwrap().read().get_u64(0), 0xD1D1);
        // …and the on-disk image is still the zeroed allocation (the
        // pool never stole it).
        let on_disk = pool.disk().read_page(dirty_id).unwrap();
        assert_eq!(on_disk.get_u64(0), 0, "dirty page must not reach disk");
        // An explicit flush writes it back.
        pool.flush_all().unwrap();
        let on_disk = pool.disk().read_page(dirty_id).unwrap();
        assert_eq!(on_disk.get_u64(0), 0xD1D1);
    }

    #[test]
    fn clean_only_pool_stays_bounded_with_clean_pages() {
        let pool = clean_only_pool("bounded", 4);
        for _ in 0..32 {
            let p = pool.new_page().unwrap();
            drop(p); // clean and unpinned: evictable
        }
        assert!(
            pool.buffered_pages() <= 6,
            "clean pages evict normally, got {}",
            pool.buffered_pages()
        );
    }
}
