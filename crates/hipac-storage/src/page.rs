//! Fixed-size pages: the unit of I/O and buffering.

use std::fmt;

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within the database file: its index.
///
/// Page 0 is the metadata page owned by [`crate::store::DurableStore`];
/// it is never handed out by the allocator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel meaning "no page" (page 0 is the meta page, so it can
    /// double as the null link in page chains).
    pub const NULL: PageId = PageId(0);

    /// True if this is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte offset of this page in the database file.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// An in-memory page image.
///
/// The buffer is boxed so `Page` values are cheap to move; all typed
/// accessors are little-endian and bounds-checked by slice indexing
/// (a bad offset is a bug, so panicking is the right failure mode).
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn new() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }

    /// Build a page from raw bytes read off disk.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Self {
        Page {
            data: Box::new(bytes),
        }
    }

    /// The full page image.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable access to the full page image.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Read a `u16` at `off` (little-endian).
    #[inline]
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.data[off..off + 2].try_into().unwrap())
    }

    /// Write a `u16` at `off`.
    #[inline]
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u32` at `off`.
    #[inline]
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    /// Write a `u32` at `off`.
    #[inline]
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u64` at `off`.
    #[inline]
    pub fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    /// Write a `u64` at `off`.
    #[inline]
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read `len` bytes at `off`.
    #[inline]
    pub fn get_slice(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    /// Write `bytes` at `off`.
    #[inline]
    pub fn put_slice(&mut self, off: usize, bytes: &[u8]) {
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Zero the whole page.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            data: self.data.clone(),
        }
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_zeroed() {
        let p = Page::new();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut p = Page::new();
        p.put_u16(0, 0xBEEF);
        p.put_u32(2, 0xDEADBEEF);
        p.put_u64(6, u64::MAX - 1);
        p.put_slice(100, b"hello");
        assert_eq!(p.get_u16(0), 0xBEEF);
        assert_eq!(p.get_u32(2), 0xDEADBEEF);
        assert_eq!(p.get_u64(6), u64::MAX - 1);
        assert_eq!(p.get_slice(100, 5), b"hello");
    }

    #[test]
    fn accessors_work_at_page_end() {
        let mut p = Page::new();
        p.put_u64(PAGE_SIZE - 8, 42);
        assert_eq!(p.get_u64(PAGE_SIZE - 8), 42);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut p = Page::new();
        p.put_u64(PAGE_SIZE - 7, 42);
    }

    #[test]
    fn page_id_offset_and_null() {
        assert_eq!(PageId(3).offset(), 3 * PAGE_SIZE as u64);
        assert!(PageId::NULL.is_null());
        assert!(!PageId(1).is_null());
        assert_eq!(format!("{}", PageId(7)), "page#7");
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Page::new();
        a.put_u64(0, 7);
        let b = a.clone();
        a.put_u64(0, 9);
        assert_eq!(b.get_u64(0), 7);
    }
}
