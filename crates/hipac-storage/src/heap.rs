//! Heap files: unordered collections of variable-length records.
//!
//! A heap file is a chain of pages. Each page reserves an 8-byte header
//! holding the next page id, followed by a slotted region. Records are
//! addressed by [`RecordId`] = (page, slot).
//!
//! Insertion fills the tail page and extends the chain when it is full;
//! space freed by deletions in interior pages is reused only by updates
//! within the page (the durable store compacts whole files at
//! checkpoint, which is where reclamation happens).

use crate::buffer::BufferPool;
use crate::page::PageId;
use crate::slotted::{SlottedPage, UpdateOutcome};
use hipac_common::{HipacError, Result};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Offset where the slotted region starts in a heap page; bytes 0..8
/// hold the next-page link.
const SLOT_BASE: usize = 8;

/// Address of a record in a heap file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    pub page: PageId,
    pub slot: u16,
}

impl fmt::Debug for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rid({}:{})", self.page.0, self.slot)
    }
}

impl RecordId {
    /// Pack into a u64 for storage in index leaves (page ids in this
    /// system stay far below 2^48).
    pub fn to_u64(self) -> u64 {
        (self.page.0 << 16) | u64::from(self.slot)
    }

    /// Inverse of [`RecordId::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: PageId(v >> 16),
            slot: (v & 0xFFFF) as u16,
        }
    }
}

struct HeapState {
    /// All pages in chain order; the last one is the insertion target.
    pages: Vec<PageId>,
}

/// A heap file over a buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    state: Mutex<HeapState>,
    first: PageId,
}

impl HeapFile {
    /// Create a new heap file, allocating its first page.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let page = pool.new_page()?;
        let first = page.id();
        {
            let mut guard = page.write();
            guard.put_u64(0, PageId::NULL.0);
            SlottedPage::new(&mut guard, SLOT_BASE).init();
        }
        Ok(HeapFile {
            pool,
            state: Mutex::new(HeapState { pages: vec![first] }),
            first,
        })
    }

    /// Open an existing heap file whose chain starts at `first`.
    pub fn open(pool: Arc<BufferPool>, first: PageId) -> Result<Self> {
        let mut pages = Vec::new();
        let mut cur = first;
        while !cur.is_null() {
            pages.push(cur);
            let page = pool.fetch(cur)?;
            let next = page.read().get_u64(0);
            cur = PageId(next);
            if pages.len() as u64 > pool.disk().num_pages() {
                return Err(HipacError::Corruption(
                    "heap page chain contains a cycle".into(),
                ));
            }
        }
        if pages.is_empty() {
            return Err(HipacError::Corruption("heap file with no pages".into()));
        }
        Ok(HeapFile {
            pool,
            state: Mutex::new(HeapState { pages }),
            first,
        })
    }

    /// First page of the chain (persist this to reopen the file).
    pub fn first_page(&self) -> PageId {
        self.first
    }

    /// Number of pages in the chain.
    pub fn page_count(&self) -> usize {
        self.state.lock().pages.len()
    }

    /// Largest insertable record.
    pub fn max_record_len() -> usize {
        SlottedPage::max_record_len(SLOT_BASE)
    }

    /// Insert a record, returning its id.
    pub fn insert(&self, data: &[u8]) -> Result<RecordId> {
        if data.len() > Self::max_record_len() {
            return Err(HipacError::RecordTooLarge {
                size: data.len(),
                max: Self::max_record_len(),
            });
        }
        let mut state = self.state.lock();
        let tail = *state.pages.last().expect("chain is never empty");
        let page = self.pool.fetch(tail)?;
        {
            let mut guard = page.write();
            let mut slotted = SlottedPage::new(&mut guard, SLOT_BASE);
            if let Some(slot) = slotted.insert(data) {
                return Ok(RecordId { page: tail, slot });
            }
        }
        // Tail is full: extend the chain.
        let new_page = self.pool.new_page()?;
        let new_id = new_page.id();
        {
            let mut guard = new_page.write();
            guard.put_u64(0, PageId::NULL.0);
            SlottedPage::new(&mut guard, SLOT_BASE).init();
        }
        page.write().put_u64(0, new_id.0);
        state.pages.push(new_id);
        let mut guard = new_page.write();
        let mut slotted = SlottedPage::new(&mut guard, SLOT_BASE);
        let slot = slotted
            .insert(data)
            .expect("fresh page must hold a record that passed the size check");
        Ok(RecordId { page: new_id, slot })
    }

    /// Read the record at `rid`.
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>> {
        let page = self.pool.fetch(rid.page)?;
        let mut guard = page.write();
        let slotted = SlottedPage::new(&mut guard, SLOT_BASE);
        slotted
            .get(rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| HipacError::StorageNotFound(format!("{rid:?}")))
    }

    /// Replace the record at `rid`. If it no longer fits in its page it
    /// is relocated; the (possibly new) record id is returned.
    pub fn update(&self, rid: RecordId, data: &[u8]) -> Result<RecordId> {
        if data.len() > Self::max_record_len() {
            return Err(HipacError::RecordTooLarge {
                size: data.len(),
                max: Self::max_record_len(),
            });
        }
        let page = self.pool.fetch(rid.page)?;
        let outcome = {
            let mut guard = page.write();
            let mut slotted = SlottedPage::new(&mut guard, SLOT_BASE);
            if slotted.get(rid.slot).is_none() {
                return Err(HipacError::StorageNotFound(format!("{rid:?}")));
            }
            slotted.update(rid.slot, data)
        };
        match outcome {
            UpdateOutcome::Done => Ok(rid),
            UpdateOutcome::NoSpace => {
                // Relocate: insert first, then unlink the old copy, so a
                // failure cannot lose the record.
                let new_rid = self.insert(data)?;
                let mut guard = page.write();
                let mut slotted = SlottedPage::new(&mut guard, SLOT_BASE);
                slotted.delete(rid.slot);
                Ok(new_rid)
            }
        }
    }

    /// Delete the record at `rid`.
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        let page = self.pool.fetch(rid.page)?;
        let mut guard = page.write();
        let mut slotted = SlottedPage::new(&mut guard, SLOT_BASE);
        if slotted.delete(rid.slot) {
            Ok(())
        } else {
            Err(HipacError::StorageNotFound(format!("{rid:?}")))
        }
    }

    /// Materialize all live records as `(rid, bytes)` pairs, in chain
    /// order.
    pub fn scan(&self) -> Result<Vec<(RecordId, Vec<u8>)>> {
        let pages = self.state.lock().pages.clone();
        let mut out = Vec::new();
        for pid in pages {
            let page = self.pool.fetch(pid)?;
            let mut guard = page.write();
            let slotted = SlottedPage::new(&mut guard, SLOT_BASE);
            for (slot, data) in slotted.iter_live() {
                out.push((RecordId { page: pid, slot }, data.to_vec()));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn make_pool(name: &str, cap: usize) -> Arc<BufferPool> {
        let dir = std::env::temp_dir().join("hipac-heap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        Arc::new(BufferPool::new(
            Arc::new(DiskManager::open(&p).unwrap()),
            cap,
        ))
    }

    #[test]
    fn insert_get_update_delete() {
        let heap = HeapFile::create(make_pool("crud", 16)).unwrap();
        let rid = heap.insert(b"hello").unwrap();
        assert_eq!(heap.get(rid).unwrap(), b"hello");
        let rid2 = heap.update(rid, b"hi").unwrap();
        assert_eq!(rid2, rid, "shrinking update stays in place");
        assert_eq!(heap.get(rid).unwrap(), b"hi");
        heap.delete(rid).unwrap();
        assert!(heap.get(rid).is_err());
        assert!(heap.delete(rid).is_err());
    }

    #[test]
    fn grows_across_pages() {
        let heap = HeapFile::create(make_pool("grow", 16)).unwrap();
        let rec = vec![5u8; 1000];
        let rids: Vec<_> = (0..20).map(|_| heap.insert(&rec).unwrap()).collect();
        assert!(heap.page_count() > 1, "1000B × 20 must span pages");
        for rid in &rids {
            assert_eq!(heap.get(*rid).unwrap(), rec);
        }
    }

    #[test]
    fn update_relocates_when_page_is_full() {
        let heap = HeapFile::create(make_pool("reloc", 16)).unwrap();
        let small = heap.insert(b"tiny").unwrap();
        // Fill the rest of the first page.
        while heap.page_count() == 1 {
            heap.insert(&[1u8; 128]).unwrap();
        }
        let big = vec![9u8; 2000];
        let new_rid = heap.update(small, &big).unwrap();
        assert_ne!(new_rid, small);
        assert_eq!(heap.get(new_rid).unwrap(), big);
        assert!(heap.get(small).is_err(), "old copy unlinked");
    }

    #[test]
    fn record_too_large_is_rejected() {
        let heap = HeapFile::create(make_pool("toolarge", 16)).unwrap();
        let huge = vec![0u8; HeapFile::max_record_len() + 1];
        assert!(matches!(
            heap.insert(&huge),
            Err(HipacError::RecordTooLarge { .. })
        ));
        let exact = vec![0u8; HeapFile::max_record_len()];
        let rid = heap.insert(&exact).unwrap();
        assert_eq!(heap.get(rid).unwrap(), exact);
    }

    #[test]
    fn scan_returns_all_live_records() {
        let heap = HeapFile::create(make_pool("scan", 16)).unwrap();
        let a = heap.insert(b"a").unwrap();
        let b = heap.insert(b"b").unwrap();
        let c = heap.insert(b"c").unwrap();
        heap.delete(b).unwrap();
        let got = heap.scan().unwrap();
        assert_eq!(
            got,
            vec![(a, b"a".to_vec()), (c, b"c".to_vec())]
        );
    }

    #[test]
    fn reopen_walks_the_chain() {
        let pool = make_pool("reopen", 16);
        let (first, rids);
        {
            let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
            first = heap.first_page();
            rids = (0..10u8)
                .map(|i| heap.insert(&[i; 900]).unwrap())
                .collect::<Vec<_>>();
        }
        let heap = HeapFile::open(pool, first).unwrap();
        assert!(heap.page_count() >= 3);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(heap.get(*rid).unwrap(), vec![i as u8; 900]);
        }
        // And inserts continue to work after reopen.
        let rid = heap.insert(b"after reopen").unwrap();
        assert_eq!(heap.get(rid).unwrap(), b"after reopen");
    }

    #[test]
    fn rid_u64_packing_roundtrips() {
        for rid in [
            RecordId { page: PageId(0), slot: 0 },
            RecordId { page: PageId(1), slot: 65535 },
            RecordId { page: PageId(1 << 40), slot: 7 },
        ] {
            assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
        }
    }
}
