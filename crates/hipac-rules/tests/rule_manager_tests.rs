//! Rule Manager behaviour: the §6 protocols (rule creation, event
//! signal processing per coupling mode, transaction commit processing),
//! rules-as-objects semantics (§2.2), cascading firings (§3.2) and the
//! application-request paradigm (§4).

use hipac_common::{HipacError, Result, Value, ValueType, VirtualClock};
use hipac_event::spec::{DbEventKind, TemporalSpec};
use hipac_event::{EventRegistry, EventSpec};
use hipac_object::expr::{BinOp, Expr};
use hipac_object::{AttrDef, ObjectStore, Query};
use hipac_rules::manager::FnHandler;
use hipac_rules::{Action, ActionOp, CouplingMode, DbAction, RuleDef, RuleManager};
use hipac_txn::TransactionManager;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Engine {
    tm: Arc<TransactionManager>,
    store: Arc<ObjectStore>,
    events: Arc<EventRegistry>,
    rules: Arc<RuleManager>,
    clock: Arc<VirtualClock>,
    log: Arc<Mutex<Vec<String>>>,
}

fn engine() -> Engine {
    let tm = Arc::new(TransactionManager::new());
    let store = ObjectStore::with_lock_timeout(
        Arc::clone(&tm),
        None,
        std::time::Duration::from_millis(500),
    )
    .unwrap();
    let clock = Arc::new(VirtualClock::new());
    let events = Arc::new(EventRegistry::new(
        Arc::clone(&clock) as Arc<dyn hipac_common::Clock>
    ));
    let rules = RuleManager::new(
        Arc::clone(&tm),
        Arc::clone(&store),
        Arc::clone(&events),
        2,
    );
    let log = Arc::new(Mutex::new(Vec::new()));
    {
        let log = Arc::clone(&log);
        rules.register_handler(
            "logger",
            Arc::new(FnHandler(move |req: &str, args: &HashMap<String, Value>| {
                let mut sorted: Vec<String> =
                    args.iter().map(|(k, v)| format!("{k}={v}")).collect();
                sorted.sort();
                log.lock().push(format!("{req}({})", sorted.join(", ")));
                Ok(())
            })),
        );
    }
    tm.run_top(|t| {
        store.create_class(
            t,
            "stock",
            None,
            vec![
                AttrDef::new("symbol", ValueType::Str).indexed(),
                AttrDef::new("price", ValueType::Float),
            ],
        )?;
        store.insert(t, "stock", vec![Value::from("XRX"), Value::from(48.0)])?;
        store.insert(t, "stock", vec![Value::from("DEC"), Value::from(99.0)])?;
        Ok(())
    })
    .unwrap();
    Engine {
        tm,
        store,
        events,
        rules,
        clock,
        log,
    }
}

fn xrx_oid(e: &Engine) -> hipac_common::ObjectId {
    e.tm.run_top(|t| {
        Ok(e
            .store
            .query(
                t,
                &Query::filtered("stock", Expr::attr("symbol").bin(BinOp::Eq, Expr::lit("XRX"))),
                None,
            )?[0]
            .oid)
    })
    .unwrap()
}

/// The paper's flagship example: "buy 500 shares of Xerox for client A
/// when the price reaches 50" — threshold-crossing condition on the
/// update delta, request to a trading program in the action.
fn xerox_rule(ec: CouplingMode, ca: CouplingMode) -> RuleDef {
    RuleDef::new("buy-xerox")
        .on(EventSpec::on_update("stock"))
        .when(Query::filtered(
            "stock",
            Expr::NewAttr("price".into())
                .bin(BinOp::Ge, Expr::lit(50.0))
                .and(Expr::NewAttr("symbol".into()).bin(BinOp::Eq, Expr::lit("XRX"))),
        ))
        .then(Action::single(ActionOp::AppRequest {
            handler: "logger".into(),
            request: "buy".into(),
            args: vec![
                ("shares".into(), Expr::lit(500)),
                ("client".into(), Expr::lit("A")),
                ("price".into(), Expr::NewAttr("price".into())),
            ],
        }))
        .ec(ec)
        .ca(ca)
}

#[test]
fn immediate_rule_fires_during_the_operation() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules
            .create_rule(t, xerox_rule(CouplingMode::Immediate, CouplingMode::Immediate))
    })
    .unwrap();
    let oid = xrx_oid(&e);
    // Below threshold: no firing.
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(49.5))]))
        .unwrap();
    assert!(e.log.lock().is_empty());
    // Crossing the threshold fires synchronously, before the update
    // call returns (the log entry exists before commit).
    e.tm.run_top(|t| {
        e.store.update(t, oid, &[("price", Value::from(50.0))])?;
        assert_eq!(e.log.lock().len(), 1, "fired inside the operation");
        Ok(())
    })
    .unwrap();
    assert_eq!(
        e.log.lock()[0],
        "buy(client=\"A\", price=50.0, shares=500)"
    );
}

#[test]
fn deferred_rule_fires_at_commit() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules
            .create_rule(t, xerox_rule(CouplingMode::Deferred, CouplingMode::Immediate))
    })
    .unwrap();
    let oid = xrx_oid(&e);
    let t = e.tm.begin();
    e.store.update(t, oid, &[("price", Value::from(55.0))]).unwrap();
    assert!(e.log.lock().is_empty(), "not yet: deferred to commit");
    // Even several triggering updates accumulate.
    e.store.update(t, oid, &[("price", Value::from(60.0))]).unwrap();
    e.tm.commit(t).unwrap();
    assert_eq!(e.log.lock().len(), 2, "both deferred firings ran at commit");
}

#[test]
fn deferred_firings_die_with_an_aborted_transaction() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules
            .create_rule(t, xerox_rule(CouplingMode::Deferred, CouplingMode::Immediate))
    })
    .unwrap();
    let oid = xrx_oid(&e);
    let t = e.tm.begin();
    e.store.update(t, oid, &[("price", Value::from(55.0))]).unwrap();
    e.tm.abort(t).unwrap();
    assert!(e.log.lock().is_empty());
}

#[test]
fn separate_rule_fires_in_concurrent_top_level_txn() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules
            .create_rule(t, xerox_rule(CouplingMode::Separate, CouplingMode::Immediate))
    })
    .unwrap();
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(52.0))]))
        .unwrap();
    e.rules.quiesce();
    assert_eq!(e.log.lock().len(), 1);
    assert!(e.rules.take_separate_errors().is_empty());
}

#[test]
fn condition_checks_database_state_not_just_delta() {
    let e = engine();
    // Fire on any stock update, but only when some stock is over 90
    // (a store query, not a delta query).
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("overpriced-watch")
                .on(EventSpec::on_update("stock"))
                .when(Query::filtered(
                    "stock",
                    Expr::attr("price").bin(BinOp::Gt, Expr::lit(90.0)),
                ))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "alert".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    let oid = xrx_oid(&e);
    // DEC is at 99, so the condition holds regardless of which stock
    // was updated.
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(10.0))]))
        .unwrap();
    assert_eq!(e.log.lock().len(), 1);
}

#[test]
fn action_can_update_the_database_and_cascade() {
    let e = engine();
    e.tm.run_top(|t| {
        e.store.create_class(
            t,
            "audit",
            None,
            vec![
                AttrDef::new("symbol", ValueType::Str),
                AttrDef::new("price", ValueType::Float),
            ],
        )?;
        // Rule 1: on stock update, insert an audit row.
        e.rules.create_rule(
            t,
            RuleDef::new("audit-stock")
                .on(EventSpec::on_update("stock"))
                .then(Action::single(ActionOp::Db(DbAction::Insert {
                    class: "audit".into(),
                    values: vec![
                        Expr::NewAttr("symbol".into()),
                        Expr::NewAttr("price".into()),
                    ],
                }))),
        )?;
        // Rule 2: on audit insert, notify (a cascaded firing).
        e.rules.create_rule(
            t,
            RuleDef::new("audit-notify")
                .on(EventSpec::db(DbEventKind::Insert, Some("audit")))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "audited".into(),
                    args: vec![("symbol".into(), Expr::NewAttr("symbol".into()))],
                })),
        )?;
        Ok(())
    })
    .unwrap();
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(51.0))]))
        .unwrap();
    // The cascade ran: audit row exists and the notification fired.
    assert_eq!(e.log.lock().as_slice(), ["audited(symbol=\"XRX\")"]);
    e.tm.run_top(|t| {
        let rows = e.store.query(t, &Query::all("audit"), None)?;
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[1], Value::from(51.0));
        Ok(())
    })
    .unwrap();
}

#[test]
fn immediate_constraint_rule_aborts_the_operation() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("no-negative-prices")
                .on(EventSpec::on_update("stock"))
                .when(Query::filtered(
                    "stock",
                    Expr::NewAttr("price".into()).bin(BinOp::Lt, Expr::lit(0.0)),
                ))
                .then(Action::single(ActionOp::AbortWith {
                    message: "negative price".into(),
                })),
        )
    })
    .unwrap();
    let oid = xrx_oid(&e);
    let err = e
        .tm
        .run_top(|t| e.store.update(t, oid, &[("price", Value::from(-1.0))]))
        .unwrap_err();
    assert!(matches!(err, HipacError::ConstraintViolation(_)));
    // The update was rolled back with the transaction.
    e.tm.run_top(|t| {
        assert_eq!(e.store.get_attr(t, oid, "price")?, Value::from(48.0));
        Ok(())
    })
    .unwrap();
}

#[test]
fn rule_abort_semantics_rule_creation_is_transactional() {
    let e = engine();
    let t = e.tm.begin();
    e.rules
        .create_rule(t, xerox_rule(CouplingMode::Immediate, CouplingMode::Immediate))
        .unwrap();
    // The creating transaction sees it; firing works inside t.
    assert_eq!(e.rules.rule_count(t), 1);
    e.tm.abort(t).unwrap();
    // Gone after abort; updates do not fire it.
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(99.0))]))
        .unwrap();
    assert!(e.log.lock().is_empty());
    e.tm.run_top(|t| {
        assert_eq!(e.rules.rule_count(t), 0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn disable_enable_and_drop_rule() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules
            .create_rule(t, xerox_rule(CouplingMode::Immediate, CouplingMode::Immediate))
    })
    .unwrap();
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| e.rules.disable_rule(t, "buy-xerox")).unwrap();
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(50.0))]))
        .unwrap();
    assert!(e.log.lock().is_empty(), "disabled rule must not fire");
    e.tm.run_top(|t| e.rules.enable_rule(t, "buy-xerox")).unwrap();
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(51.0))]))
        .unwrap();
    assert_eq!(e.log.lock().len(), 1);
    e.tm.run_top(|t| e.rules.drop_rule(t, "buy-xerox")).unwrap();
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(52.0))]))
        .unwrap();
    assert_eq!(e.log.lock().len(), 1, "dropped rule must not fire");
    // Name is reusable after the drop commits.
    e.tm.run_top(|t| {
        e.rules
            .create_rule(t, xerox_rule(CouplingMode::Immediate, CouplingMode::Immediate))
    })
    .unwrap();
}

#[test]
fn manual_fire_ignores_disable_and_uses_params() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("greeter")
                .on(EventSpec::db(DbEventKind::Insert, Some("stock")))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "hello".into(),
                    args: vec![("who".into(), Expr::param("who"))],
                }))
                .disabled(),
        )
    })
    .unwrap();
    let mut params = HashMap::new();
    params.insert("who".to_string(), Value::from("world"));
    e.tm.run_top(|t| e.rules.fire_rule(t, "greeter", params.clone()))
        .unwrap();
    assert_eq!(e.log.lock().as_slice(), ["hello(who=\"world\")"]);
}

#[test]
fn derived_event_from_condition() {
    let e = engine();
    // No event given: derived from the condition's class (insert,
    // update and delete on stock).
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("derived")
                .when(Query::filtered(
                    "stock",
                    Expr::attr("price").bin(BinOp::Gt, Expr::lit(1000.0)),
                ))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "expensive".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    // Insert triggers evaluation; condition false → nothing.
    e.tm.run_top(|t| {
        e.store
            .insert(t, "stock", vec![Value::from("CHEAP"), Value::from(1.0)])
    })
    .unwrap();
    assert!(e.log.lock().is_empty());
    // Update pushing a price over 1000 satisfies it.
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(2000.0))]))
        .unwrap();
    assert_eq!(e.log.lock().len(), 1);
    // A rule with neither event nor condition is rejected.
    let err = e
        .tm
        .run_top(|t| e.rules.create_rule(t, RuleDef::new("nothing")))
        .unwrap_err();
    assert!(matches!(err, HipacError::NoDerivableEvent(_)));
}

#[test]
fn temporal_rule_fires_on_clock_advance() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("mark-to-market")
                .on(EventSpec::Temporal(TemporalSpec::Periodic {
                    period: 100,
                    start: Some(0),
                }))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "tick".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    e.clock.advance(250);
    e.events.poll_temporal().unwrap();
    e.rules.quiesce();
    assert_eq!(e.log.lock().len(), 2, "periods at t=100 and t=200");
    assert!(e.rules.take_separate_errors().is_empty());
}

#[test]
fn external_event_rule_with_parameter_flow() {
    let e = engine();
    e.events
        .define_external("trade_request", vec!["symbol".into(), "shares".into()])
        .unwrap();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("execute-trade")
                .on(EventSpec::external("trade_request"))
                .when(Query::filtered(
                    "stock",
                    Expr::attr("symbol").bin(BinOp::Eq, Expr::param("symbol")),
                ))
                .then(Action::single(ActionOp::ForEachRow {
                    query_index: 0,
                    ops: vec![ActionOp::AppRequest {
                        handler: "logger".into(),
                        request: "execute".into(),
                        args: vec![
                            ("symbol".into(), Expr::attr("symbol")),
                            ("shares".into(), Expr::param("shares")),
                            ("at".into(), Expr::attr("price")),
                        ],
                    }],
                })),
        )
    })
    .unwrap();
    let mut args = HashMap::new();
    args.insert("symbol".to_string(), Value::from("DEC"));
    args.insert("shares".to_string(), Value::from(100));
    e.events.signal_external("trade_request", args, None).unwrap();
    e.rules.quiesce();
    assert_eq!(
        e.log.lock().as_slice(),
        ["execute(at=99.0, shares=100, symbol=\"DEC\")"]
    );
}

#[test]
fn update_where_action_modifies_matching_rows() {
    let e = engine();
    e.events.define_external("haircut", vec!["pct".into()]).unwrap();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("haircut-all")
                .on(EventSpec::external("haircut"))
                .then(Action::single(ActionOp::Db(DbAction::UpdateWhere {
                    query: Query::all("stock"),
                    assignments: vec![(
                        "price".into(),
                        Expr::attr("price")
                            .bin(BinOp::Mul, Expr::param("pct")),
                    )],
                }))),
        )
    })
    .unwrap();
    let mut args = HashMap::new();
    args.insert("pct".to_string(), Value::from(0.5));
    e.events.signal_external("haircut", args, None).unwrap();
    e.rules.quiesce();
    assert!(e.rules.take_separate_errors().is_empty());
    e.tm.run_top(|t| {
        let rows = e.store.query(t, &Query::all("stock"), None)?;
        let prices: Vec<&Value> = rows.iter().map(|r| &r.values[1]).collect();
        assert_eq!(prices, vec![&Value::from(24.0), &Value::from(49.5)]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn composite_event_rule() {
    let e = engine();
    e.events.define_external("open", vec![]).unwrap();
    e.events.define_external("close", vec![]).unwrap();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("session")
                .on(EventSpec::external("open").then(EventSpec::external("close")))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "session-complete".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    e.events.signal_external("close", HashMap::new(), None).unwrap();
    e.rules.quiesce();
    assert!(e.log.lock().is_empty());
    e.events.signal_external("open", HashMap::new(), None).unwrap();
    e.events.signal_external("close", HashMap::new(), None).unwrap();
    e.rules.quiesce();
    assert_eq!(e.log.lock().as_slice(), ["session-complete()"]);
}

#[test]
fn cascade_limit_stops_runaway_rules() {
    let e = engine();
    e.tm.run_top(|t| {
        e.store.create_class(
            t,
            "loop",
            None,
            vec![AttrDef::new("n", ValueType::Int)],
        )?;
        // Self-triggering rule: every insert into `loop` inserts again.
        e.rules.create_rule(
            t,
            RuleDef::new("runaway")
                .on(EventSpec::db(DbEventKind::Insert, Some("loop")))
                .then(Action::single(ActionOp::Db(DbAction::Insert {
                    class: "loop".into(),
                    values: vec![Expr::NewAttr("n".into()).bin(BinOp::Add, Expr::lit(1))],
                }))),
        )
    })
    .unwrap();
    let err = e
        .tm
        .run_top(|t| e.store.insert(t, "loop", vec![Value::from(0)]))
        .unwrap_err();
    assert!(
        matches!(err, HipacError::CascadeLimit { .. }),
        "got {err:?}"
    );
    // Everything rolled back.
    e.tm.run_top(|t| {
        assert!(e.store.query(t, &Query::all("loop"), None)?.is_empty());
        Ok(())
    })
    .unwrap();
}

#[test]
fn multiple_rules_on_one_event_all_fire() {
    let e = engine();
    e.tm.run_top(|t| {
        for i in 0..5 {
            e.rules.create_rule(
                t,
                RuleDef::new(format!("r{i}"))
                    .on(EventSpec::on_update("stock"))
                    .then(Action::single(ActionOp::AppRequest {
                        handler: "logger".into(),
                        request: format!("r{i}"),
                        args: vec![],
                    })),
            )?;
        }
        Ok(())
    })
    .unwrap();
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(1.0))]))
        .unwrap();
    let mut log = e.log.lock().clone();
    log.sort();
    assert_eq!(log, ["r0()", "r1()", "r2()", "r3()", "r4()"]);
    // Condition-graph sharing kicked in: identical (empty) conditions.
    assert!(e.rules.stats.rules_triggered.load(std::sync::atomic::Ordering::Relaxed) >= 5);
}

#[test]
fn rule_actions_signal_events_that_fire_other_rules() {
    let e = engine();
    e.events
        .define_external("relay", vec!["hop".into()])
        .unwrap();
    e.tm.run_top(|t| {
        // stock update -> signal relay -> second rule logs.
        e.rules.create_rule(
            t,
            RuleDef::new("first")
                .on(EventSpec::on_update("stock"))
                .then(Action::single(ActionOp::SignalEvent {
                    name: "relay".into(),
                    args: vec![("hop".into(), Expr::lit(1))],
                })),
        )?;
        e.rules.create_rule(
            t,
            RuleDef::new("second")
                .on(EventSpec::external("relay"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "relayed".into(),
                    args: vec![("hop".into(), Expr::param("hop"))],
                })),
        )?;
        Ok(())
    })
    .unwrap();
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(1.0))]))
        .unwrap();
    e.rules.quiesce();
    assert_eq!(e.log.lock().as_slice(), ["relayed(hop=1)"]);
}

#[test]
fn missing_handler_is_a_clean_error() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("bad-handler")
                .on(EventSpec::on_update("stock"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "nonexistent".into(),
                    request: "x".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    let oid = xrx_oid(&e);
    let err = e
        .tm
        .run_top(|t| e.store.update(t, oid, &[("price", Value::from(1.0))]))
        .unwrap_err();
    assert!(matches!(err, HipacError::NoApplicationHandler(_)));
}

#[test]
fn txn_commit_event_triggers_rules() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("commit-watch")
                .on(EventSpec::db(DbEventKind::TxnCommit, None))
                .ec(CouplingMode::Separate)
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "committed".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    let before = e.log.lock().len();
    e.tm.run_top(|_t| Ok(())).unwrap();
    e.rules.quiesce();
    assert!(e.log.lock().len() > before, "commit event fired the rule");
}

#[test]
fn stats_reflect_sharing_and_delta_evaluation() {
    let e = engine();
    let shared_cond = Query::filtered(
        "stock",
        Expr::NewAttr("price".into()).bin(BinOp::Ge, Expr::lit(50.0)),
    );
    e.tm.run_top(|t| {
        for i in 0..4 {
            e.rules.create_rule(
                t,
                RuleDef::new(format!("s{i}"))
                    .on(EventSpec::on_update("stock"))
                    .when(shared_cond.clone())
                    .then(Action::none()),
            )?;
        }
        Ok(())
    })
    .unwrap();
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(60.0))]))
        .unwrap();
    use std::sync::atomic::Ordering;
    assert_eq!(e.rules.stats.store_evaluations.load(Ordering::Relaxed), 0);
    assert!(e.rules.stats.delta_evaluations.load(Ordering::Relaxed) >= 1);
    assert!(e.rules.stats.conditions_satisfied.load(Ordering::Relaxed) >= 4);
}

#[test]
fn separate_firing_error_is_collected_not_propagated() {
    let e = engine();
    e.rules.register_handler(
        "failing",
        Arc::new(FnHandler(|_: &str, _: &HashMap<String, Value>| -> Result<()> {
            Err(HipacError::EvalError("handler exploded".into()))
        })),
    );
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("doomed")
                .on(EventSpec::on_update("stock"))
                .ec(CouplingMode::Separate)
                .then(Action::single(ActionOp::AppRequest {
                    handler: "failing".into(),
                    request: "x".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    let oid = xrx_oid(&e);
    // The triggering transaction succeeds regardless.
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(1.0))]))
        .unwrap();
    e.rules.quiesce();
    let errors = e.rules.take_separate_errors();
    assert_eq!(errors.len(), 1);
    assert!(matches!(errors[0].1, HipacError::EvalError(_)));
}

/// A triggering request's deadline propagates into separate-mode
/// firings: with the deadline already behind the trigger, the firing
/// aborts *definitely* — dead-lettered as `DeadlineExceeded`, handler
/// never run — instead of doing work its requester stopped waiting
/// for. Deadlines only clamp lock waits, so the uncontended trigger
/// itself still commits.
#[test]
fn near_deadline_separate_firing_aborts_definitely() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("deadline-bound")
                .on(EventSpec::on_update("stock"))
                .ec(CouplingMode::Separate)
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "too-late".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    let oid = xrx_oid(&e);
    let before = e.log.lock().len();
    e.tm.run_top(|t| {
        e.tm.tree()
            .set_deadline(t, Some(std::time::Instant::now()))?;
        e.store.update(t, oid, &[("price", Value::from(1.0))])
    })
    .unwrap();
    e.rules.quiesce();
    assert_eq!(e.log.lock().len(), before, "expired firing must not run");
    let errors = e.rules.take_separate_errors();
    assert_eq!(errors.len(), 1, "one dead-lettered firing: {errors:?}");
    assert!(
        matches!(errors[0].1, HipacError::DeadlineExceeded(_)),
        "definite deadline abort, got {:?}",
        errors[0].1
    );
    use std::sync::atomic::Ordering;
    assert!(
        e.rules.stats.separate_dead_letters.load(Ordering::Relaxed) >= 1,
        "dead-letter accounted"
    );
}

/// Without a deadline on the trigger, the same separate rule fires
/// normally — the propagation above is scoped to deadline-bearing
/// requests, not a general throttle.
#[test]
fn separate_firing_without_deadline_still_runs() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("unbounded")
                .on(EventSpec::on_update("stock"))
                .ec(CouplingMode::Separate)
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "in-time".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    let oid = xrx_oid(&e);
    let before = e.log.lock().len();
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(2.0))]))
        .unwrap();
    e.rules.quiesce();
    assert_eq!(e.log.lock().len(), before + 1);
    assert!(e.rules.take_separate_errors().is_empty());
}

#[test]
fn alter_rule_changes_behaviour_transactionally() {
    let e = engine();
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("mutable")
                .on(EventSpec::on_update("stock"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "v1".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(1.0))]))
        .unwrap();
    assert_eq!(e.log.lock().as_slice(), ["v1()"]);

    // Modify the action (same event): takes effect once committed.
    e.tm.run_top(|t| {
        e.rules.alter_rule(
            t,
            "mutable",
            RuleDef::new("ignored-name")
                .on(EventSpec::on_update("stock"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "v2".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(2.0))]))
        .unwrap();
    assert_eq!(e.log.lock().last().unwrap(), "v2()");

    // An aborted modification leaves the old behaviour.
    let t = e.tm.begin();
    e.rules
        .alter_rule(
            t,
            "mutable",
            RuleDef::new("x")
                .on(EventSpec::on_update("stock"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "v3".into(),
                    args: vec![],
                })),
        )
        .unwrap();
    e.tm.abort(t).unwrap();
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(3.0))]))
        .unwrap();
    assert_eq!(e.log.lock().last().unwrap(), "v2()", "abort reverted the alter");
}

#[test]
fn alter_rule_rewires_the_event_at_commit() {
    let e = engine();
    let oid = xrx_oid(&e);
    e.events.define_external("manual-kick", vec![]).unwrap();
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("rewire")
                .on(EventSpec::on_update("stock"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "fired".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    // Move the rule from stock updates to the external event.
    e.tm.run_top(|t| {
        e.rules.alter_rule(
            t,
            "rewire",
            RuleDef::new("rewire")
                .on(EventSpec::external("manual-kick"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "kicked".into(),
                    args: vec![],
                })),
        )
    })
    .unwrap();
    // Stock updates no longer fire it…
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(9.0))]))
        .unwrap();
    assert!(e.log.lock().is_empty());
    // …the external event does.
    e.events
        .signal_external("manual-kick", HashMap::new(), None)
        .unwrap();
    e.rules.quiesce();
    assert_eq!(e.log.lock().as_slice(), ["kicked()"]);
    // Altering to reference an undefined external event is rejected
    // eagerly.
    let err = e
        .tm
        .run_top(|t| {
            e.rules.alter_rule(
                t,
                "rewire",
                RuleDef::new("rewire").on(EventSpec::external("ghost-event")),
            )
        })
        .unwrap_err();
    assert!(matches!(err, HipacError::UnknownEvent(_)));
}

#[test]
fn times_event_rule_fires_every_nth_update() {
    let e = engine();
    let oid = xrx_oid(&e);
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("every-third")
                .on(EventSpec::on_update("stock").times(3))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "logger".into(),
                    request: "third".into(),
                    args: vec![("count".into(), Expr::param("count"))],
                })),
        )
    })
    .unwrap();
    for i in 0..7 {
        e.tm.run_top(|t| {
            e.store
                .update(t, oid, &[("price", Value::from(10.0 + i as f64))])
        })
        .unwrap();
    }
    // 7 updates → firings after the 3rd and 6th.
    assert_eq!(e.log.lock().as_slice(), ["third(count=3)", "third(count=3)"]);
}

/// Differential check of separate-mode firing recovery. A "transfer"
/// rule's worker transaction is forced to close a wait cycle with the
/// triggering application's transaction — the lock manager picks the
/// worker as deadlock victim — and the bounded retry must re-run it
/// until it commits, ending in exactly the state of the uncontended
/// run.
#[test]
fn separate_deadlock_victim_is_retried_until_it_commits() {
    // Returns (bal(a1), bal(a2), separate_retries).
    fn scenario(contended: bool) -> (Value, Value, u64) {
        let e = engine();
        e.rules.set_separate_retry_limit(5);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let gate_tx = Mutex::new(gate_tx);
        e.rules.register_handler(
            "gate",
            Arc::new(FnHandler(move |_req: &str, _args: &HashMap<String, Value>| {
                let _ = gate_tx.lock().send(());
                // Linger so the application transaction can block on a2
                // before this firing requests a1 — the firing then
                // closes the wait cycle and is chosen as victim.
                std::thread::sleep(std::time::Duration::from_millis(250));
                Ok(())
            })),
        );
        let acct = |name: &str| {
            Query::filtered("acct", Expr::attr("name").bin(BinOp::Eq, Expr::lit(name)))
        };
        e.tm.run_top(|t| {
            e.store.create_class(
                t,
                "acct",
                None,
                vec![
                    AttrDef::new("name", ValueType::Str).indexed(),
                    AttrDef::new("bal", ValueType::Float),
                ],
            )?;
            e.store
                .insert(t, "acct", vec![Value::from("a1"), Value::from(1.0)])?;
            e.store
                .insert(t, "acct", vec![Value::from("a2"), Value::from(2.0)])?;
            e.store
                .create_class(t, "trig", None, vec![AttrDef::new("n", ValueType::Int)])?;
            e.store.insert(t, "trig", vec![Value::from(0)])?;
            e.rules.create_rule(
                t,
                RuleDef::new("transfer")
                    .on(EventSpec::on_update("trig"))
                    .when(Query::filtered(
                        "trig",
                        Expr::NewAttr("n".into()).bin(BinOp::Ge, Expr::lit(0)),
                    ))
                    .then(Action {
                        ops: vec![
                            ActionOp::Db(DbAction::UpdateWhere {
                                query: acct("a2"),
                                assignments: vec![("bal".into(), Expr::lit(200.0))],
                            }),
                            ActionOp::AppRequest {
                                handler: "gate".into(),
                                request: "sync".into(),
                                args: vec![],
                            },
                            ActionOp::Db(DbAction::UpdateWhere {
                                query: acct("a1"),
                                assignments: vec![("bal".into(), Expr::lit(100.0))],
                            }),
                        ],
                    })
                    .ec(CouplingMode::Separate)
                    .ca(CouplingMode::Immediate),
            )?;
            Ok(())
        })
        .unwrap();
        let (a1_oid, a2_oid, trig_oid) = e
            .tm
            .run_top(|t| {
                Ok((
                    e.store.query(t, &acct("a1"), None)?[0].oid,
                    e.store.query(t, &acct("a2"), None)?[0].oid,
                    e.store.query(t, &Query::all("trig"), None)?[0].oid,
                ))
            })
            .unwrap();

        if contended {
            let t1 = e.tm.begin();
            e.store
                .update(t1, a1_oid, &[("bal", Value::from(10.0))])
                .unwrap();
            // Fire the separate rule from an independent, immediately
            // committed transaction so the worker runs concurrently
            // with t1.
            e.tm
                .run_top(|t| e.store.update(t, trig_oid, &[("n", Value::from(1))]))
                .unwrap();
            gate_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("separate firing reached the gate");
            // Blocks on a2 (the firing holds it); unblocks when the
            // deadlock check kills the firing.
            e.store
                .update(t1, a2_oid, &[("bal", Value::from(2.5))])
                .unwrap();
            e.tm.commit(t1).unwrap();
        } else {
            e.tm
                .run_top(|t| {
                    e.store.update(t, a1_oid, &[("bal", Value::from(10.0))])?;
                    e.store.update(t, a2_oid, &[("bal", Value::from(2.5))])
                })
                .unwrap();
            e.tm
                .run_top(|t| e.store.update(t, trig_oid, &[("n", Value::from(1))]))
                .unwrap();
        }
        e.rules.quiesce();
        assert!(
            e.rules.take_separate_errors().is_empty(),
            "the firing must eventually commit (contended={contended})"
        );
        let (b1, b2) = e
            .tm
            .run_top(|t| {
                Ok((
                    e.store.query(t, &acct("a1"), None)?[0].values[1].clone(),
                    e.store.query(t, &acct("a2"), None)?[0].values[1].clone(),
                ))
            })
            .unwrap();
        let retries = e
            .rules
            .stats
            .separate_retries
            .load(std::sync::atomic::Ordering::Relaxed);
        (b1, b2, retries)
    }

    let clean = scenario(false);
    let contended = scenario(true);
    assert_eq!(
        (&clean.0, &clean.1),
        (&contended.0, &contended.1),
        "differential: contended run must converge to the uncontended state"
    );
    assert_eq!(
        (contended.0, contended.1),
        (Value::from(100.0), Value::from(200.0)),
        "the app-txn-then-firing serial outcome"
    );
    assert_eq!(clean.2, 0, "uncontended run never retries");
    assert!(
        contended.2 >= 1,
        "the deadlock victim must have been retried"
    );
}

/// When every retry of a separate firing keeps hitting the same
/// transient abort, the budget runs out and the firing is
/// dead-lettered: error surfaced via take_separate_errors, counters
/// bumped, and a dead-letter trace recorded.
#[test]
fn exhausted_separate_retries_dead_letter_with_accounting() {
    let e = engine();
    e.rules.set_separate_retry_limit(1);
    assert_eq!(e.rules.separate_retry_limit(), 1);
    e.rules.tracer.set_enabled(true);
    e.tm.run_top(|t| {
        e.rules.create_rule(
            t,
            RuleDef::new("poison")
                .on(EventSpec::on_update("stock"))
                .when(Query::filtered(
                    "stock",
                    Expr::NewAttr("symbol".into()).bin(BinOp::Eq, Expr::lit("XRX")),
                ))
                .then(Action::single(ActionOp::Db(DbAction::UpdateWhere {
                    query: Query::filtered(
                        "stock",
                        Expr::attr("symbol").bin(BinOp::Eq, Expr::lit("XRX")),
                    ),
                    assignments: vec![("price".into(), Expr::lit(1.0))],
                })))
                .ec(CouplingMode::Separate)
                .ca(CouplingMode::Immediate),
        )
    })
    .unwrap();
    let oid = xrx_oid(&e);
    // Hold the write lock on XRX across the firing's whole retry
    // budget: every attempt times out waiting for it.
    let t1 = e.tm.begin();
    e.store
        .update(t1, oid, &[("price", Value::from(55.0))])
        .unwrap();
    e.rules.quiesce(); // initial attempt + 1 retry, then dead-letter
    let errors = e.rules.take_separate_errors();
    assert_eq!(errors.len(), 1, "terminal error surfaced: {errors:?}");
    assert!(
        errors[0].1.is_txn_fatal(),
        "terminal error is the transient abort that exhausted the budget: {:?}",
        errors[0].1
    );
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(e.rules.stats.separate_retries.load(Relaxed), 1);
    assert_eq!(e.rules.stats.separate_dead_letters.load(Relaxed), 1);
    let traces = e.rules.tracer.take();
    let dead: Vec<_> = traces.iter().filter(|tr| tr.dead_letter).collect();
    assert_eq!(dead.len(), 1, "one dead-letter trace: {traces:?}");
    assert_eq!(dead[0].retries, 1);
    assert_eq!(dead[0].rule_name, "poison");
    assert!(!dead[0].action_executed);
    e.tm.commit(t1).unwrap();
    // The dead-lettered action never applied.
    let price = e
        .tm
        .run_top(|t| {
            Ok(e.store.query(
                t,
                &Query::filtered("stock", Expr::attr("symbol").bin(BinOp::Eq, Expr::lit("XRX"))),
                None,
            )?[0]
                .values[1]
                .clone())
        })
        .unwrap();
    assert_eq!(price, Value::from(55.0));
}

/// The replication firing gate: while closed, signals trigger nothing
/// (a replica applying a replicated stream must not re-fire rules the
/// primary already fired); re-opening it (promotion) restores normal
/// firing without recreating any rules.
#[test]
fn firing_gate_suppresses_and_restores_rule_firing() {
    let e = engine();
    e.tm.run_top(|t| {
        e.rules
            .create_rule(t, xerox_rule(CouplingMode::Immediate, CouplingMode::Immediate))
    })
    .unwrap();
    let oid = xrx_oid(&e);
    assert!(e.rules.firing_gate_open(), "gate starts open");
    e.rules.set_firing_gate(false);
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(55.0))]))
        .unwrap();
    assert!(
        e.log.lock().is_empty(),
        "closed gate must suppress the firing"
    );
    e.rules.set_firing_gate(true);
    e.tm.run_top(|t| e.store.update(t, oid, &[("price", Value::from(56.0))]))
        .unwrap();
    assert_eq!(e.log.lock().len(), 1, "reopened gate fires normally");
}
