//! Property suite for the discrimination network (`network.rs`).
//!
//! The core soundness claim: the network's candidate set for a signal
//! is a *superset* of the rules the naive oracle would find satisfied
//! (or error on), and every pruned rule is one the naive Condition
//! Evaluator provably rejects — pruning changes cost, never outcome.
//! Counterexamples print the offending rule in its DSL rendering.

use hipac_common::{EventId, ObjectId, RuleId, Value, ValueType};
use hipac_event::spec::DbEventKind;
use hipac_event::{DbEventData, EventSignal};
use hipac_object::expr::{BinOp, Expr};
use hipac_object::{AttrDef, ObjectStore, Query};
use hipac_rules::{derive_guard, ConditionEvaluator, GuardSpec, MatchNetwork, MemoTable, RuleDef};
use hipac_txn::TransactionManager;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Fixture: one class, a few committed rows.
// ---------------------------------------------------------------------------

struct Fixture {
    tm: Arc<TransactionManager>,
    store: Arc<ObjectStore>,
    oid: ObjectId,
}

fn fixture() -> Fixture {
    let tm = Arc::new(TransactionManager::new());
    let store = ObjectStore::with_lock_timeout(
        Arc::clone(&tm),
        None,
        std::time::Duration::from_millis(500),
    )
    .unwrap();
    let oid = tm
        .run_top(|t| {
            store.create_class(
                t,
                "stock",
                None,
                vec![
                    AttrDef::new("sym", ValueType::Str).indexed(),
                    AttrDef::new("price", ValueType::Float),
                    AttrDef::new("qty", ValueType::Int).nullable(),
                ],
            )?;
            store.insert(
                t,
                "stock",
                vec![Value::from("a"), Value::from(1.0), Value::from(1i64)],
            )?;
            store.insert(
                t,
                "stock",
                vec![Value::from("b"), Value::from(7.0), Value::Null],
            )
        })
        .unwrap();
    Fixture { tm, store, oid }
}

// ---------------------------------------------------------------------------
// Strategies: delta-shaped predicates over (sym, price, qty).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum AttrPick {
    Price,
    Qty,
    Sym,
}

fn arb_attr() -> impl Strategy<Value = AttrPick> {
    prop_oneof![
        Just(AttrPick::Price),
        Just(AttrPick::Qty),
        Just(AttrPick::Sym),
    ]
}

fn arb_cmp() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

fn arb_value(attr: AttrPick) -> BoxedStrategy<Value> {
    match attr {
        AttrPick::Price => prop_oneof![
            (0u64..12).prop_map(|k| Value::Float(k as f64)),
            (0i64..12).prop_map(Value::Int),
            Just(Value::Null),
        ]
        .boxed(),
        AttrPick::Qty => prop_oneof![(0i64..12).prop_map(Value::Int), Just(Value::Null)].boxed(),
        AttrPick::Sym => prop_oneof![
            Just(Value::Str("a".into())),
            Just(Value::Str("b".into())),
            Just(Value::Str("zz".into())),
        ]
        .boxed(),
    }
}

fn attr_name(a: AttrPick) -> &'static str {
    match a {
        AttrPick::Price => "price",
        AttrPick::Qty => "qty",
        AttrPick::Sym => "sym",
    }
}

/// One comparison leaf: `new.X op lit`, `old.X op lit`, or the
/// flipped literal-first form (exercises guard-side normalization).
fn arb_leaf() -> impl Strategy<Value = Expr> {
    (arb_attr(), arb_cmp(), any::<bool>(), any::<bool>()).prop_flat_map(
        |(attr, op, use_new, flip)| {
            arb_value(attr).prop_map(move |v| {
                let name = attr_name(attr).to_owned();
                let image = if use_new {
                    Expr::NewAttr(name)
                } else {
                    Expr::OldAttr(name)
                };
                if flip {
                    Expr::Binary(op, Box::new(Expr::Literal(v)), Box::new(image))
                } else {
                    Expr::Binary(op, Box::new(image), Box::new(Expr::Literal(v)))
                }
            })
        },
    )
}

/// Predicates: single leaf, conjunctions (guardable when the first
/// conjunct qualifies) and disjunctions (always residual).
fn arb_predicate() -> impl Strategy<Value = Expr> {
    let leaf = arb_leaf();
    leaf.prop_recursive(3, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Binary(BinOp::And, Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Expr::Binary(BinOp::Or, Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_delta() -> impl Strategy<Value = (Vec<Value>, Vec<Value>)> {
    let row = |sym: &'static str| {
        (
            prop_oneof![Just(sym)],
            0u64..12,
            prop_oneof![(0i64..12).prop_map(Value::Int), Just(Value::Null)],
        )
            .prop_map(|(s, p, q)| vec![Value::Str(s.into()), Value::Float(p as f64), q])
    };
    (row("a"), row("a"))
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: a rule the network prunes is one the naive oracle
    /// evaluates to *unsatisfied without error*. Equivalently the
    /// candidate set contains every true match and every would-error
    /// rule, so routing only candidates through the unchanged per-rule
    /// path cannot change observable behavior.
    #[test]
    fn pruned_rules_are_naive_rejections(
        preds in proptest::collection::vec(arb_predicate(), 1..12),
        (old_row, new_row) in arb_delta(),
    ) {
        let fx = fixture();
        let event = EventId(1);
        let network = MatchNetwork::new();
        let rules: Vec<RuleDef> = preds
            .iter()
            .enumerate()
            .map(|(i, p)| {
                RuleDef::new(format!("p{i}"))
                    .on(hipac_event::EventSpec::on_update("stock"))
                    .when(Query::filtered("stock", p.clone()))
            })
            .collect();
        for (i, def) in rules.iter().enumerate() {
            network.place_committed(event, RuleId(i as u64), derive_guard(def));
        }

        let t = fx.tm.begin();
        let schema = fx.store.schema(t);
        let class = schema.class_by_name("stock").unwrap().id;
        let signal = EventSignal {
            txn: Some(t),
            db: Some(DbEventData {
                kind: DbEventKind::Update,
                class,
                class_lineage: vec!["stock".into()],
                oid: Some(fx.oid),
                old: Some(old_row.clone()),
                new: Some(new_row.clone()),
            }),
            ..EventSignal::at(0)
        };

        let candidates = network
            .probe(event, &fx.store, &signal)
            .expect("rules are wired");
        let evaluator = ConditionEvaluator::new(Arc::clone(&fx.store));
        for (i, def) in rules.iter().enumerate() {
            let rid = RuleId(i as u64);
            if candidates.binary_search(&rid).is_ok() {
                continue; // kept: the per-rule path decides, as naive would
            }
            let conds: Vec<&[Query]> = vec![&def.condition];
            match evaluator.evaluate_batch(t, &conds, &signal) {
                Ok((outcomes, _)) => prop_assert!(
                    !outcomes[0].satisfied,
                    "network pruned a satisfied rule\n  rule: {def}\n  old: {old_row:?}\n  new: {new_row:?}"
                ),
                Err(e) => prop_assert!(
                    false,
                    "network pruned a rule whose naive evaluation errors ({e})\n  rule: {def}\n  old: {old_row:?}\n  new: {new_row:?}"
                ),
            }
        }
        fx.tm.abort(t).unwrap();
    }

    /// Without a delta payload (or a transaction to resolve schema
    /// under), the network cannot discriminate and must return every
    /// wired rule.
    #[test]
    fn probe_without_delta_keeps_everything(
        preds in proptest::collection::vec(arb_predicate(), 1..8),
    ) {
        let fx = fixture();
        let event = EventId(1);
        let network = MatchNetwork::new();
        for (i, p) in preds.iter().enumerate() {
            let def = RuleDef::new(format!("p{i}"))
                .on(hipac_event::EventSpec::on_update("stock"))
                .when(Query::filtered("stock", p.clone()));
            network.place_committed(event, RuleId(i as u64), derive_guard(&def));
        }
        let bare = EventSignal::at(0);
        let all = network.probe(event, &fx.store, &bare).unwrap();
        prop_assert_eq!(all.len(), preds.len());
        prop_assert!(all.windows(2).all(|w| w[0] < w[1]), "candidates sorted by rid");
    }

    /// Guard derivation is stable and structural: residual guards stay
    /// residual under re-derivation, and guarded specs reference only
    /// attributes the predicate mentions.
    #[test]
    fn derived_guards_are_consistent(pred in arb_predicate()) {
        let def = RuleDef::new("g")
            .on(hipac_event::EventSpec::on_update("stock"))
            .when(Query::filtered("stock", pred));
        let g1 = derive_guard(&def);
        let g2 = derive_guard(&def);
        prop_assert_eq!(&g1, &g2, "derivation must be deterministic for {}", def);
        if let GuardSpec::Guarded { attr, ref_attrs, .. } = &g1 {
            prop_assert!(
                ref_attrs.contains(attr),
                "guard attr {} missing from ref union of {}",
                attr,
                def
            );
            prop_assert!(ref_attrs.windows(2).all(|w| w[0] < w[1]), "ref_attrs sorted");
        }
    }
}

// ---------------------------------------------------------------------------
// Memo: hits must be indistinguishable from re-running the query.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleave committed writes with memoized queries: every lookup
    /// that hits must return exactly what the store would.
    #[test]
    fn memo_never_serves_stale_rows(
        script in proptest::collection::vec((0u8..4, 0u64..12), 1..24),
    ) {
        let fx = fixture();
        fx.store.set_write_tracking(true);
        let memo = MemoTable::new(16);
        let queries: Vec<Query> = (0..4)
            .map(|k| Query::parse(&format!("from stock where price >= {k}.0")).unwrap())
            .collect();
        for (kind, arg) in script {
            match kind {
                // Committed write: must invalidate affected entries.
                0 => {
                    fx.tm
                        .run_top(|t| {
                            fx.store
                                .update(t, fx.oid, &[("price", Value::Float(arg as f64))])
                                .map(|_| ())
                        })
                        .unwrap();
                }
                // Aborted write: must NOT poison future lookups with
                // uncommitted rows (nothing to assert beyond the
                // comparisons below).
                1 => {
                    let t = fx.tm.begin();
                    let _ = fx.store.update(t, fx.oid, &[("price", Value::Float(99.0))]);
                    fx.tm.abort(t).unwrap();
                }
                // Memoized read: lookup-or-fill, then compare to a
                // fresh store query in the same transaction.
                _ => {
                    let q = &queries[(arg % 4) as usize];
                    fx.tm
                        .run_top(|t| {
                            let memoed = match memo.lookup(&fx.store, t, q)? {
                                Some(rows) => rows,
                                None => {
                                    let stamp = fx.store.data_stamp(&q.class);
                                    let rows = fx.store.query(t, q, None)?;
                                    memo.fill(&fx.store, t, q, stamp, &rows);
                                    rows
                                }
                            };
                            let fresh = fx.store.query(t, q, None)?;
                            assert_eq!(memoed, fresh, "memo diverged from store for {q:?}");
                            Ok(())
                        })
                        .unwrap();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Satellite: signal dispatch must not copy the rule list per signal.
// ---------------------------------------------------------------------------

/// Regression for the per-signal `Vec` clone under the manager lock:
/// repeated candidate handles for an event are the *same* `Arc`
/// allocation (dispatch clones the handle, O(1)); the allocation only
/// changes when the rule list itself changes.
#[test]
fn candidate_handle_is_shared_not_copied() {
    use hipac_event::EventRegistry;
    use hipac_rules::RuleManager;

    let fx = fixture();
    let clock = Arc::new(hipac_common::VirtualClock::new());
    let events = Arc::new(EventRegistry::new(clock as Arc<dyn hipac_common::Clock>));
    let rules = RuleManager::new(
        Arc::clone(&fx.tm),
        Arc::clone(&fx.store),
        Arc::clone(&events),
        1,
    );
    let event = fx
        .tm
        .run_top(|t| {
            for i in 0..64 {
                rules.create_rule(
                    t,
                    RuleDef::new(format!("r{i}"))
                        .on(hipac_event::EventSpec::on_update("stock"))
                        .when(Query::parse("from stock where new.price >= 1000000.0").unwrap()),
                )?;
            }
            rules.rule_event(t, "r0")
        })
        .unwrap();

    let h1 = rules.candidate_handle(event).expect("rules wired");
    assert_eq!(h1.len(), 64);
    // Signals in between must not rebuild the list.
    fx.tm
        .run_top(|t| {
            fx.store
                .update(t, fx.oid, &[("price", Value::Float(2.0))])
                .map(|_| ())
        })
        .unwrap();
    let h2 = rules.candidate_handle(event).expect("rules wired");
    assert!(
        Arc::ptr_eq(&h1, &h2),
        "signal dispatch copied the rule list instead of sharing the Arc"
    );
    // A definition change legitimately replaces the allocation.
    fx.tm.run_top(|t| rules.drop_rule(t, "r63")).unwrap();
    let h3 = rules.candidate_handle(event).expect("rules wired");
    assert_eq!(h3.len(), 63);
}

// ---------------------------------------------------------------------------
// Unstable-rule windows: uncommitted definition changes stay candidates.
// ---------------------------------------------------------------------------

#[test]
fn uncommitted_changes_stay_candidates() {
    let fx = fixture();
    let event = EventId(9);
    let network = MatchNetwork::new();
    let def = RuleDef::new("r")
        .on(hipac_event::EventSpec::on_update("stock"))
        .when(Query::parse("from stock where new.price >= 1000000.0").unwrap());
    network.place_committed(event, RuleId(1), derive_guard(&def));

    let t = fx.tm.begin();
    let schema = fx.store.schema(t);
    let class = schema.class_by_name("stock").unwrap().id;
    let signal = EventSignal {
        txn: Some(t),
        db: Some(DbEventData {
            kind: DbEventKind::Update,
            class,
            class_lineage: vec!["stock".into()],
            oid: Some(fx.oid),
            old: Some(vec![Value::Str("a".into()), Value::Float(1.0), Value::Int(1)]),
            new: Some(vec![Value::Str("a".into()), Value::Float(2.0), Value::Int(1)]),
        }),
        ..EventSignal::at(0)
    };
    // Guarded at 1e6, the update to 2.0 prunes the rule…
    assert!(network.probe(event, &fx.store, &signal).unwrap().is_empty());
    // …but once a transaction marks it changed, it must stay a
    // candidate until that top resolves.
    network.mark_pending(event, RuleId(1), t);
    assert_eq!(
        network.probe(event, &fx.store, &signal).unwrap(),
        vec![RuleId(1)]
    );
    // Abort clears the mark and re-placement resumes pruning.
    network.clear_top(t);
    assert!(network.probe(event, &fx.store, &signal).unwrap().is_empty());
    fx.tm.abort(t).unwrap();
}
