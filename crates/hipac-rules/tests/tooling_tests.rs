//! Tests for the §7 rule-base development tools: firing traces and
//! rule explanation.

use hipac_common::{Clock, TxnId, Value, ValueType, VirtualClock};
use hipac_event::{EventRegistry, EventSpec};
use hipac_object::expr::{BinOp, Expr};
use hipac_object::{AttrDef, ObjectStore, Query};
use hipac_rules::trace::QueryStrategy;
use hipac_rules::{Action, ActionOp, CouplingMode, DbAction, RuleDef, RuleManager};
use hipac_txn::TransactionManager;
use std::sync::Arc;

fn engine() -> (
    Arc<TransactionManager>,
    Arc<ObjectStore>,
    Arc<RuleManager>,
) {
    let tm = Arc::new(TransactionManager::new());
    let store = ObjectStore::new(Arc::clone(&tm), None).unwrap();
    let clock = Arc::new(VirtualClock::new());
    let events = Arc::new(EventRegistry::new(clock as Arc<dyn Clock>));
    let rules = RuleManager::new(Arc::clone(&tm), Arc::clone(&store), events, 2);
    tm.run_top(|t| {
        store.create_class(
            t,
            "stock",
            None,
            vec![
                AttrDef::new("symbol", ValueType::Str).indexed(),
                AttrDef::new("price", ValueType::Float),
            ],
        )?;
        store.insert(t, "stock", vec![Value::from("XRX"), Value::from(48.0)])?;
        Ok(())
    })
    .unwrap();
    (tm, store, rules)
}

fn xrx(store: &ObjectStore, tm: &TransactionManager) -> hipac_common::ObjectId {
    tm.run_top(|t| Ok(store.query(t, &Query::all("stock"), None)?[0].oid))
        .unwrap()
}

#[test]
fn tracer_records_satisfied_and_unsatisfied_firings() {
    let (tm, store, rules) = engine();
    tm.run_top(|t| {
        rules.create_rule(
            t,
            RuleDef::new("hit")
                .on(EventSpec::on_update("stock"))
                .when(Query::filtered(
                    "stock",
                    Expr::NewAttr("price".into()).bin(BinOp::Ge, Expr::lit(50.0)),
                ))
                .then(Action::single(ActionOp::Db(DbAction::UpdateWhere {
                    // No-op action: update nothing.
                    query: Query::filtered(
                        "stock",
                        Expr::attr("symbol").bin(BinOp::Eq, Expr::lit("NONE")),
                    ),
                    assignments: vec![("price".into(), Expr::lit(0.0))],
                }))),
        )?;
        rules.create_rule(
            t,
            RuleDef::new("miss")
                .on(EventSpec::on_update("stock"))
                .when(Query::filtered(
                    "stock",
                    Expr::NewAttr("price".into()).bin(BinOp::Ge, Expr::lit(1e9)),
                ))
                .then(Action::none()),
        )?;
        Ok(())
    })
    .unwrap();
    let oid = xrx(&store, &tm);

    // Nothing recorded while disabled.
    tm.run_top(|t| store.update(t, oid, &[("price", Value::from(55.0))]))
        .unwrap();
    assert!(rules.tracer.snapshot().is_empty());

    rules.tracer.set_enabled(true);
    tm.run_top(|t| store.update(t, oid, &[("price", Value::from(60.0))]))
        .unwrap();
    let traces = rules.tracer.take();
    let hit = traces.iter().find(|t| t.rule_name == "hit").unwrap();
    assert!(hit.satisfied && hit.action_executed);
    assert_eq!(hit.ec_coupling, CouplingMode::Immediate);
    assert!(hit.event.is_some());
    match rules.matching() {
        hipac_rules::Matching::Naive => {
            // Naive dispatch triggers every rule on the event, so the
            // unsatisfied one leaves an unsatisfied trace record.
            assert_eq!(traces.len(), 2, "one record per triggered rule");
            let miss = traces.iter().find(|t| t.rule_name == "miss").unwrap();
            assert!(!miss.satisfied && !miss.action_executed);
            // Condition evaluation took real time even though the rule
            // did not fire; the trace records it rather than a
            // hardwired zero.
            assert!(miss.duration_us > 0);
            assert!(
                hit.duration_us >= miss.duration_us,
                "hit adds action time on top of the shared condition phase"
            );
        }
        hipac_rules::Matching::Network => {
            // The discrimination network prunes "miss" (guard at 1e9
            // can never match a 60.0 update) before it triggers, so no
            // trace record exists for it.
            assert_eq!(traces.len(), 1, "pruned rule never reaches the tracer");
            assert!(rules.match_pruned() >= 1, "the miss rule was pruned");
        }
    }
}

#[test]
fn tracer_shows_cascade_depths() {
    let (tm, store, rules) = engine();
    tm.run_top(|t| {
        store.create_class(t, "echo", None, vec![AttrDef::new("n", ValueType::Int)])?;
        rules.create_rule(
            t,
            RuleDef::new("level0")
                .on(EventSpec::on_update("stock"))
                .then(Action::single(ActionOp::Db(DbAction::Insert {
                    class: "echo".into(),
                    values: vec![Expr::lit(1)],
                }))),
        )?;
        rules.create_rule(
            t,
            RuleDef::new("level1")
                .on(EventSpec::db(
                    hipac_event::spec::DbEventKind::Insert,
                    Some("echo"),
                ))
                .then(Action::none()),
        )?;
        Ok(())
    })
    .unwrap();
    let oid = xrx(&store, &tm);
    rules.tracer.set_enabled(true);
    tm.run_top(|t| store.update(t, oid, &[("price", Value::from(1.0))]))
        .unwrap();
    let traces = rules.tracer.take();
    let d0 = traces.iter().find(|t| t.rule_name == "level0").unwrap();
    let d1 = traces.iter().find(|t| t.rule_name == "level1").unwrap();
    assert!(
        d1.cascade_depth > d0.cascade_depth,
        "cascaded firing at greater depth: {} vs {}",
        d1.cascade_depth,
        d0.cascade_depth
    );
}

#[test]
fn explain_reports_strategies_and_derivation() {
    let (tm, _store, rules) = engine();
    tm.run_top(|t| {
        rules.create_rule(
            t,
            RuleDef::new("mixed")
                .on(EventSpec::on_update("stock"))
                .when(Query::parse("from stock where new.price >= 50.0").unwrap())
                .when(Query::parse("from stock where symbol = \"XRX\"").unwrap())
                .when(Query::parse("from stock where price > 10.0").unwrap())
                .then(Action::none())
                .ec(CouplingMode::Deferred)
                .ca(CouplingMode::Separate),
        )?;
        rules.create_rule(
            t,
            RuleDef::new("derived")
                .when(Query::parse("from stock where price > 0.0").unwrap())
                .then(Action::none()),
        )?;
        Ok(())
    })
    .unwrap();
    tm.run_top(|t| {
        let ex = rules.explain_rule(t, "mixed")?;
        assert!(!ex.event_derived);
        assert_eq!(
            ex.condition_strategies,
            vec![
                QueryStrategy::Delta,
                QueryStrategy::IndexEq {
                    attr: "symbol".into()
                },
                QueryStrategy::Scan,
            ]
        );
        assert_eq!(ex.ec_coupling, CouplingMode::Deferred);
        assert_eq!(ex.ca_coupling, CouplingMode::Separate);
        assert_eq!(ex.action_ops, 0);
        let text = ex.to_string();
        assert!(text.contains("IndexEq"));

        let ex = rules.explain_rule(t, "derived")?;
        assert!(ex.event_derived, "event was derived from the condition");
        assert!(rules.explain_rule(t, "ghost").is_err());
        Ok(())
    })
    .unwrap();
}

#[test]
fn manual_fire_respects_rule_locking(){
    // fire_rule takes the rule read lock inside the caller's
    // transaction: verify via trace that the firing attributes to it.
    let (tm, _store, rules) = engine();
    tm.run_top(|t| {
        rules.create_rule(
            t,
            RuleDef::new("manual")
                .on(EventSpec::on_update("stock"))
                .then(Action::none()),
        )
    })
    .unwrap();
    rules.tracer.set_enabled(true);
    let t = tm.begin();
    rules
        .fire_rule(t, "manual", std::collections::HashMap::new())
        .unwrap();
    tm.commit(t).unwrap();
    let traces = rules.tracer.take();
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].txn, Some(TxnId(t.raw())));
    assert!(traces[0].satisfied, "empty condition is always satisfied");
}
