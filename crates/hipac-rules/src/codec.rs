//! Durable serialization of rule definitions.
//!
//! Rules are database objects (§2 of the paper), so they persist with
//! the database: the Rule Manager stores committed rule definitions in
//! the durable store under their own key prefix and reloads them on
//! open. The format reuses the workspace codec primitives (tag bytes +
//! varints + length-prefixed strings); like the other on-disk formats,
//! tags are append-only.

use crate::network::{GuardOp, GuardSpec, ImageRef};
use crate::rule::{Action, ActionOp, CouplingMode, DbAction, RuleDef};
use hipac_common::codec::{get_bytes, get_uvarint, get_value, put_bytes, put_uvarint, put_value};
use hipac_common::{HipacError, Result};
use hipac_event::spec::{DbEventKind, TemporalSpec};
use hipac_event::EventSpec;
use hipac_object::expr::{BinOp, Expr, UnOp};
use hipac_object::query::Query;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let b = get_bytes(buf, pos)?;
    std::str::from_utf8(b)
        .map(str::to_owned)
        .map_err(|_| HipacError::Corruption("non-utf8 string in rule codec".into()))
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| HipacError::Corruption("truncated rule codec".into()))?;
    *pos += 1;
    Ok(b)
}

// ---- expressions ----------------------------------------------------

fn put_expr(buf: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Literal(v) => {
            buf.push(0);
            put_value(buf, v);
        }
        Expr::Attr(n) | Expr::Slot(_, n) => {
            // Slots re-resolve at evaluation time; persist the name.
            buf.push(1);
            put_str(buf, n);
        }
        Expr::OldAttr(n) | Expr::OldSlot(_, n) => {
            buf.push(2);
            put_str(buf, n);
        }
        Expr::NewAttr(n) | Expr::NewSlot(_, n) => {
            buf.push(3);
            put_str(buf, n);
        }
        Expr::Param(n) => {
            buf.push(4);
            put_str(buf, n);
        }
        Expr::Unary(op, x) => {
            buf.push(5);
            buf.push(match op {
                UnOp::Not => 0,
                UnOp::Neg => 1,
            });
            put_expr(buf, x);
        }
        Expr::Binary(op, l, r) => {
            buf.push(6);
            buf.push(binop_tag(*op));
            put_expr(buf, l);
            put_expr(buf, r);
        }
        Expr::Call(f, args) => {
            buf.push(7);
            put_str(buf, f);
            put_uvarint(buf, args.len() as u64);
            for a in args {
                put_expr(buf, a);
            }
        }
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 0,
        BinOp::And => 1,
        BinOp::Eq => 2,
        BinOp::Ne => 3,
        BinOp::Lt => 4,
        BinOp::Le => 5,
        BinOp::Gt => 6,
        BinOp::Ge => 7,
        BinOp::Add => 8,
        BinOp::Sub => 9,
        BinOp::Mul => 10,
        BinOp::Div => 11,
        BinOp::Mod => 12,
    }
}

fn untag_binop(t: u8) -> Result<BinOp> {
    Ok(match t {
        0 => BinOp::Or,
        1 => BinOp::And,
        2 => BinOp::Eq,
        3 => BinOp::Ne,
        4 => BinOp::Lt,
        5 => BinOp::Le,
        6 => BinOp::Gt,
        7 => BinOp::Ge,
        8 => BinOp::Add,
        9 => BinOp::Sub,
        10 => BinOp::Mul,
        11 => BinOp::Div,
        12 => BinOp::Mod,
        other => {
            return Err(HipacError::Corruption(format!("bad binop tag {other}")))
        }
    })
}

fn get_expr(buf: &[u8], pos: &mut usize) -> Result<Expr> {
    Ok(match get_u8(buf, pos)? {
        0 => Expr::Literal(get_value(buf, pos)?),
        1 => Expr::Attr(get_str(buf, pos)?),
        2 => Expr::OldAttr(get_str(buf, pos)?),
        3 => Expr::NewAttr(get_str(buf, pos)?),
        4 => Expr::Param(get_str(buf, pos)?),
        5 => {
            let op = match get_u8(buf, pos)? {
                0 => UnOp::Not,
                1 => UnOp::Neg,
                other => {
                    return Err(HipacError::Corruption(format!("bad unop tag {other}")))
                }
            };
            Expr::Unary(op, Box::new(get_expr(buf, pos)?))
        }
        6 => {
            let op = untag_binop(get_u8(buf, pos)?)?;
            let l = get_expr(buf, pos)?;
            let r = get_expr(buf, pos)?;
            Expr::Binary(op, Box::new(l), Box::new(r))
        }
        7 => {
            let f = get_str(buf, pos)?;
            let n = get_uvarint(buf, pos)? as usize;
            if n > buf.len().saturating_sub(*pos) {
                return Err(HipacError::Corruption("call arity exceeds input".into()));
            }
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(get_expr(buf, pos)?);
            }
            Expr::Call(f, args)
        }
        other => return Err(HipacError::Corruption(format!("bad expr tag {other}"))),
    })
}

// ---- queries ----------------------------------------------------------

fn put_query(buf: &mut Vec<u8>, q: &Query) {
    put_str(buf, &q.class);
    put_expr(buf, &q.predicate);
    match &q.projection {
        None => buf.push(0),
        Some(attrs) => {
            buf.push(1);
            put_uvarint(buf, attrs.len() as u64);
            for a in attrs {
                put_str(buf, a);
            }
        }
    }
}

fn get_query(buf: &[u8], pos: &mut usize) -> Result<Query> {
    let class = get_str(buf, pos)?;
    let predicate = get_expr(buf, pos)?;
    let projection = match get_u8(buf, pos)? {
        0 => None,
        1 => {
            let n = get_uvarint(buf, pos)? as usize;
            if n > buf.len().saturating_sub(*pos) {
                return Err(HipacError::Corruption("projection exceeds input".into()));
            }
            let mut attrs = Vec::with_capacity(n);
            for _ in 0..n {
                attrs.push(get_str(buf, pos)?);
            }
            Some(attrs)
        }
        other => {
            return Err(HipacError::Corruption(format!(
                "bad projection flag {other}"
            )))
        }
    };
    Ok(Query {
        class,
        predicate,
        projection,
    })
}

// ---- event specs -------------------------------------------------------

fn db_kind_tag(k: DbEventKind) -> u8 {
    match k {
        DbEventKind::Insert => 0,
        DbEventKind::Update => 1,
        DbEventKind::Delete => 2,
        DbEventKind::CreateClass => 3,
        DbEventKind::DropClass => 4,
        DbEventKind::TxnBegin => 5,
        DbEventKind::TxnCommit => 6,
        DbEventKind::TxnAbort => 7,
    }
}

fn untag_db_kind(t: u8) -> Result<DbEventKind> {
    Ok(match t {
        0 => DbEventKind::Insert,
        1 => DbEventKind::Update,
        2 => DbEventKind::Delete,
        3 => DbEventKind::CreateClass,
        4 => DbEventKind::DropClass,
        5 => DbEventKind::TxnBegin,
        6 => DbEventKind::TxnCommit,
        7 => DbEventKind::TxnAbort,
        other => {
            return Err(HipacError::Corruption(format!(
                "bad db event kind {other}"
            )))
        }
    })
}

fn put_spec(buf: &mut Vec<u8>, s: &EventSpec) {
    match s {
        EventSpec::Database { kind, class } => {
            buf.push(0);
            buf.push(db_kind_tag(*kind));
            match class {
                None => buf.push(0),
                Some(c) => {
                    buf.push(1);
                    put_str(buf, c);
                }
            }
        }
        EventSpec::Temporal(t) => {
            buf.push(1);
            match t {
                TemporalSpec::Absolute { at } => {
                    buf.push(0);
                    put_uvarint(buf, *at);
                }
                TemporalSpec::Relative { baseline, offset } => {
                    buf.push(1);
                    put_spec(buf, baseline);
                    put_uvarint(buf, *offset);
                }
                TemporalSpec::Periodic { period, start } => {
                    buf.push(2);
                    put_uvarint(buf, *period);
                    match start {
                        None => buf.push(0),
                        Some(s) => {
                            buf.push(1);
                            put_uvarint(buf, *s);
                        }
                    }
                }
            }
        }
        EventSpec::External { name } => {
            buf.push(2);
            put_str(buf, name);
        }
        EventSpec::Disjunction(l, r) => {
            buf.push(3);
            put_spec(buf, l);
            put_spec(buf, r);
        }
        EventSpec::Sequence(l, r) => {
            buf.push(4);
            put_spec(buf, l);
            put_spec(buf, r);
        }
        EventSpec::Conjunction(l, r) => {
            buf.push(5);
            put_spec(buf, l);
            put_spec(buf, r);
        }
        EventSpec::Times(n, inner) => {
            buf.push(6);
            put_uvarint(buf, u64::from(*n));
            put_spec(buf, inner);
        }
    }
}

fn get_spec(buf: &[u8], pos: &mut usize) -> Result<EventSpec> {
    Ok(match get_u8(buf, pos)? {
        0 => {
            let kind = untag_db_kind(get_u8(buf, pos)?)?;
            let class = match get_u8(buf, pos)? {
                0 => None,
                1 => Some(get_str(buf, pos)?),
                other => {
                    return Err(HipacError::Corruption(format!(
                        "bad class flag {other}"
                    )))
                }
            };
            EventSpec::Database { kind, class }
        }
        1 => EventSpec::Temporal(match get_u8(buf, pos)? {
            0 => TemporalSpec::Absolute {
                at: get_uvarint(buf, pos)?,
            },
            1 => {
                let baseline = Box::new(get_spec(buf, pos)?);
                TemporalSpec::Relative {
                    baseline,
                    offset: get_uvarint(buf, pos)?,
                }
            }
            2 => {
                let period = get_uvarint(buf, pos)?;
                let start = match get_u8(buf, pos)? {
                    0 => None,
                    1 => Some(get_uvarint(buf, pos)?),
                    other => {
                        return Err(HipacError::Corruption(format!(
                            "bad start flag {other}"
                        )))
                    }
                };
                TemporalSpec::Periodic { period, start }
            }
            other => {
                return Err(HipacError::Corruption(format!(
                    "bad temporal tag {other}"
                )))
            }
        }),
        2 => EventSpec::External {
            name: get_str(buf, pos)?,
        },
        3 => EventSpec::Disjunction(
            Box::new(get_spec(buf, pos)?),
            Box::new(get_spec(buf, pos)?),
        ),
        4 => EventSpec::Sequence(
            Box::new(get_spec(buf, pos)?),
            Box::new(get_spec(buf, pos)?),
        ),
        5 => EventSpec::Conjunction(
            Box::new(get_spec(buf, pos)?),
            Box::new(get_spec(buf, pos)?),
        ),
        6 => {
            let n = get_uvarint(buf, pos)? as u32;
            EventSpec::Times(n, Box::new(get_spec(buf, pos)?))
        }
        other => return Err(HipacError::Corruption(format!("bad spec tag {other}"))),
    })
}

// ---- actions -----------------------------------------------------------

fn put_args(buf: &mut Vec<u8>, args: &[(String, Expr)]) {
    put_uvarint(buf, args.len() as u64);
    for (name, e) in args {
        put_str(buf, name);
        put_expr(buf, e);
    }
}

fn get_args(buf: &[u8], pos: &mut usize) -> Result<Vec<(String, Expr)>> {
    let n = get_uvarint(buf, pos)? as usize;
    if n > buf.len().saturating_sub(*pos) {
        return Err(HipacError::Corruption("arg count exceeds input".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(buf, pos)?;
        out.push((name, get_expr(buf, pos)?));
    }
    Ok(out)
}

fn put_op(buf: &mut Vec<u8>, op: &ActionOp) {
    match op {
        ActionOp::Db(DbAction::Insert { class, values }) => {
            buf.push(0);
            put_str(buf, class);
            put_uvarint(buf, values.len() as u64);
            for v in values {
                put_expr(buf, v);
            }
        }
        ActionOp::Db(DbAction::UpdateWhere { query, assignments }) => {
            buf.push(1);
            put_query(buf, query);
            put_args(buf, assignments);
        }
        ActionOp::Db(DbAction::DeleteWhere { query }) => {
            buf.push(2);
            put_query(buf, query);
        }
        ActionOp::AppRequest {
            handler,
            request,
            args,
        } => {
            buf.push(3);
            put_str(buf, handler);
            put_str(buf, request);
            put_args(buf, args);
        }
        ActionOp::SignalEvent { name, args } => {
            buf.push(4);
            put_str(buf, name);
            put_args(buf, args);
        }
        ActionOp::ForEachRow { query_index, ops } => {
            buf.push(5);
            put_uvarint(buf, *query_index as u64);
            put_uvarint(buf, ops.len() as u64);
            for o in ops {
                put_op(buf, o);
            }
        }
        ActionOp::AbortWith { message } => {
            buf.push(6);
            put_str(buf, message);
        }
    }
}

fn get_op(buf: &[u8], pos: &mut usize) -> Result<ActionOp> {
    Ok(match get_u8(buf, pos)? {
        0 => {
            let class = get_str(buf, pos)?;
            let n = get_uvarint(buf, pos)? as usize;
            if n > buf.len().saturating_sub(*pos) {
                return Err(HipacError::Corruption("insert arity exceeds input".into()));
            }
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(get_expr(buf, pos)?);
            }
            ActionOp::Db(DbAction::Insert { class, values })
        }
        1 => ActionOp::Db(DbAction::UpdateWhere {
            query: get_query(buf, pos)?,
            assignments: get_args(buf, pos)?,
        }),
        2 => ActionOp::Db(DbAction::DeleteWhere {
            query: get_query(buf, pos)?,
        }),
        3 => {
            let handler = get_str(buf, pos)?;
            let request = get_str(buf, pos)?;
            ActionOp::AppRequest {
                handler,
                request,
                args: get_args(buf, pos)?,
            }
        }
        4 => {
            let name = get_str(buf, pos)?;
            ActionOp::SignalEvent {
                name,
                args: get_args(buf, pos)?,
            }
        }
        5 => {
            let query_index = get_uvarint(buf, pos)? as usize;
            let n = get_uvarint(buf, pos)? as usize;
            if n > buf.len().saturating_sub(*pos) {
                return Err(HipacError::Corruption("op count exceeds input".into()));
            }
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(get_op(buf, pos)?);
            }
            ActionOp::ForEachRow { query_index, ops }
        }
        6 => ActionOp::AbortWith {
            message: get_str(buf, pos)?,
        },
        other => return Err(HipacError::Corruption(format!("bad action tag {other}"))),
    })
}

// ---- rules ---------------------------------------------------------------

fn coupling_tag(c: CouplingMode) -> u8 {
    match c {
        CouplingMode::Immediate => 0,
        CouplingMode::Deferred => 1,
        CouplingMode::Separate => 2,
    }
}

fn untag_coupling(t: u8) -> Result<CouplingMode> {
    Ok(match t {
        0 => CouplingMode::Immediate,
        1 => CouplingMode::Deferred,
        2 => CouplingMode::Separate,
        other => {
            return Err(HipacError::Corruption(format!(
                "bad coupling tag {other}"
            )))
        }
    })
}

/// Serialize a rule definition.
pub fn encode_rule(def: &RuleDef) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    put_str(&mut buf, &def.name);
    match &def.event {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_spec(&mut buf, s);
        }
    }
    put_uvarint(&mut buf, def.condition.len() as u64);
    for q in &def.condition {
        put_query(&mut buf, q);
    }
    put_uvarint(&mut buf, def.action.ops.len() as u64);
    for op in &def.action.ops {
        put_op(&mut buf, op);
    }
    buf.push(coupling_tag(def.ec_coupling));
    buf.push(coupling_tag(def.ca_coupling));
    buf.push(u8::from(def.enabled));
    buf
}

/// Inverse of [`encode_rule`].
pub fn decode_rule(buf: &[u8]) -> Result<RuleDef> {
    let mut pos = 0usize;
    let name = get_str(buf, &mut pos)?;
    let event = match get_u8(buf, &mut pos)? {
        0 => None,
        1 => Some(get_spec(buf, &mut pos)?),
        other => {
            return Err(HipacError::Corruption(format!("bad event flag {other}")))
        }
    };
    let nq = get_uvarint(buf, &mut pos)? as usize;
    if nq > buf.len().saturating_sub(pos) {
        return Err(HipacError::Corruption("query count exceeds input".into()));
    }
    let mut condition = Vec::with_capacity(nq);
    for _ in 0..nq {
        condition.push(get_query(buf, &mut pos)?);
    }
    let no = get_uvarint(buf, &mut pos)? as usize;
    if no > buf.len().saturating_sub(pos) {
        return Err(HipacError::Corruption("op count exceeds input".into()));
    }
    let mut ops = Vec::with_capacity(no);
    for _ in 0..no {
        ops.push(get_op(buf, &mut pos)?);
    }
    let ec_coupling = untag_coupling(get_u8(buf, &mut pos)?)?;
    let ca_coupling = untag_coupling(get_u8(buf, &mut pos)?)?;
    let enabled = get_u8(buf, &mut pos)? == 1;
    if pos != buf.len() {
        return Err(HipacError::Corruption(
            "trailing bytes after rule definition".into(),
        ));
    }
    Ok(RuleDef {
        name,
        event,
        condition,
        action: Action { ops },
        ec_coupling,
        ca_coupling,
        enabled,
    })
}

// ---- guard specs (discrimination-network index metadata) ----------------

fn guard_op_tag(op: GuardOp) -> u8 {
    match op {
        GuardOp::Eq => 0,
        GuardOp::Lt => 1,
        GuardOp::Le => 2,
        GuardOp::Gt => 3,
        GuardOp::Ge => 4,
    }
}

fn untag_guard_op(t: u8) -> Result<GuardOp> {
    Ok(match t {
        0 => GuardOp::Eq,
        1 => GuardOp::Lt,
        2 => GuardOp::Le,
        3 => GuardOp::Gt,
        4 => GuardOp::Ge,
        other => {
            return Err(HipacError::Corruption(format!(
                "bad guard op tag {other}"
            )))
        }
    })
}

/// Serialize a rule's discrimination-network guard (persisted under
/// the `g` key prefix alongside the rule, so reopening rebuilds the
/// network without re-deriving guards from every definition).
pub fn encode_guard(g: &GuardSpec) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match g {
        GuardSpec::Residual => buf.push(0),
        GuardSpec::Guarded {
            class,
            image,
            attr,
            op,
            value,
            ref_attrs,
        } => {
            buf.push(1);
            put_str(&mut buf, class);
            buf.push(match image {
                ImageRef::Old => 0,
                ImageRef::New => 1,
            });
            put_str(&mut buf, attr);
            buf.push(guard_op_tag(*op));
            put_value(&mut buf, value);
            put_uvarint(&mut buf, ref_attrs.len() as u64);
            for a in ref_attrs {
                put_str(&mut buf, a);
            }
        }
    }
    buf
}

/// Inverse of [`encode_guard`].
pub fn decode_guard(buf: &[u8]) -> Result<GuardSpec> {
    let mut pos = 0usize;
    let guard = match get_u8(buf, &mut pos)? {
        0 => GuardSpec::Residual,
        1 => {
            let class = get_str(buf, &mut pos)?;
            let image = match get_u8(buf, &mut pos)? {
                0 => ImageRef::Old,
                1 => ImageRef::New,
                other => {
                    return Err(HipacError::Corruption(format!(
                        "bad image tag {other}"
                    )))
                }
            };
            let attr = get_str(buf, &mut pos)?;
            let op = untag_guard_op(get_u8(buf, &mut pos)?)?;
            let value = get_value(buf, &mut pos)?;
            let n = get_uvarint(buf, &mut pos)? as usize;
            if n > buf.len().saturating_sub(pos) {
                return Err(HipacError::Corruption(
                    "ref-attr count exceeds input".into(),
                ));
            }
            let mut ref_attrs = Vec::with_capacity(n);
            for _ in 0..n {
                ref_attrs.push(get_str(buf, &mut pos)?);
            }
            GuardSpec::Guarded {
                class,
                image,
                attr,
                op,
                value,
                ref_attrs,
            }
        }
        other => return Err(HipacError::Corruption(format!("bad guard tag {other}"))),
    };
    if pos != buf.len() {
        return Err(HipacError::Corruption(
            "trailing bytes after guard spec".into(),
        ));
    }
    Ok(guard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipac_object::expr::Expr as E;

    fn sample_rules() -> Vec<RuleDef> {
        vec![
            RuleDef::new("minimal").on(EventSpec::on_update("stock")),
            RuleDef::new("full")
                .on(EventSpec::on_update("stock")
                    .or(EventSpec::external("tick"))
                    .then(EventSpec::Temporal(TemporalSpec::Relative {
                        baseline: Box::new(EventSpec::db(DbEventKind::Delete, None)),
                        offset: 500,
                    })))
                .when(Query::parse("from stock where new.price >= 50.0 and symbol = :s").unwrap())
                .when(Query::parse("from stock select symbol, price").unwrap())
                .then(
                    Action::single(ActionOp::Db(DbAction::Insert {
                        class: "audit".into(),
                        values: vec![E::NewAttr("price".into()), E::lit(1)],
                    }))
                    .then(ActionOp::Db(DbAction::UpdateWhere {
                        query: Query::parse("from stock where price < 0.0").unwrap(),
                        assignments: vec![("price".into(), E::lit(0.0))],
                    }))
                    .then(ActionOp::Db(DbAction::DeleteWhere {
                        query: Query::parse("from audit where entry = \"x\"").unwrap(),
                    }))
                    .then(ActionOp::AppRequest {
                        handler: "h".into(),
                        request: "r".into(),
                        args: vec![("a".into(), E::param("p"))],
                    })
                    .then(ActionOp::SignalEvent {
                        name: "e".into(),
                        args: vec![],
                    })
                    .then(ActionOp::ForEachRow {
                        query_index: 1,
                        ops: vec![ActionOp::AbortWith {
                            message: "nested".into(),
                        }],
                    }),
                )
                .ec(CouplingMode::Deferred)
                .ca(CouplingMode::Separate)
                .disabled(),
            RuleDef::new("derived-event").when(Query::all("stock")),
            RuleDef::new("temporal").on(EventSpec::Temporal(TemporalSpec::Periodic {
                period: 60,
                start: None,
            })),
            RuleDef::new("absolute").on(EventSpec::Temporal(TemporalSpec::Absolute {
                at: 12345,
            })),
            RuleDef::new("every-third")
                .on(EventSpec::on_update("stock").times(3)),
        ]
    }

    #[test]
    fn roundtrip_all_shapes() {
        for def in sample_rules() {
            let enc = encode_rule(&def);
            let back = decode_rule(&enc)
                .unwrap_or_else(|e| panic!("decode of {} failed: {e}", def.name));
            assert_eq!(back, def, "rule {}", def.name);
        }
    }

    #[test]
    fn truncation_never_panics() {
        for def in sample_rules() {
            let enc = encode_rule(&def);
            for cut in 0..enc.len() {
                assert!(decode_rule(&enc[..cut]).is_err(), "cut {cut} of {}", def.name);
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = encode_rule(&sample_rules()[0]);
        enc.push(0);
        assert!(decode_rule(&enc).is_err());
    }

    #[test]
    fn guard_roundtrip_and_truncation() {
        let guards: Vec<GuardSpec> = sample_rules()
            .iter()
            .map(crate::network::derive_guard)
            .chain(std::iter::once(GuardSpec::Guarded {
                class: "stock".into(),
                image: ImageRef::New,
                attr: "price".into(),
                op: GuardOp::Ge,
                value: hipac_common::Value::from(50.0),
                ref_attrs: vec!["price".into(), "symbol".into()],
            }))
            .collect();
        for g in guards {
            let enc = encode_guard(&g);
            assert_eq!(decode_guard(&enc).unwrap(), g);
            for cut in 0..enc.len() {
                assert!(decode_guard(&enc[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn garbage_never_panics() {
        use rand_like::*;
        // Small deterministic pseudo-random corpus, no rand dependency
        // needed in unit scope.
        mod rand_like {
            pub fn bytes(seed: u64, len: usize) -> Vec<u8> {
                let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                (0..len)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x & 0xFF) as u8
                    })
                    .collect()
            }
        }
        for seed in 0..200u64 {
            let data = bytes(seed, (seed % 64) as usize);
            let _ = decode_rule(&data);
        }
    }
}
