//! The Condition Evaluator (§5.5).
//!
//! "After an event has been detected, the Condition Evaluator is
//! responsible for efficiently determining which rule conditions are
//! satisfied (among the rules triggered by the particular event)." Two
//! of the paper's techniques are implemented:
//!
//! * **Condition graph / multiple-query optimization**: the queries of
//!   all rules triggered by one event form a graph whose nodes are
//!   structurally hashed queries; each distinct query is evaluated once
//!   per event and its (non-)emptiness and rows shared by every rule
//!   that contains it.
//! * **Incremental (delta) evaluation**: a query whose predicate only
//!   references the event's `old.*` / `new.*` images and parameters —
//!   the dominant shape for update-triggered rules like "new.price >=
//!   50" — is evaluated directly against the delta carried by the
//!   event signal, without touching the object store at all.
//!
//! The evaluator is stateless across events (the graph is rebuilt per
//! batch); the sharing matters because one event commonly triggers many
//! rules with overlapping conditions (benchmark E5 quantifies this).

use hipac_common::{Result, TxnId, Value};
use hipac_event::EventSignal;
use hipac_object::expr::{Bindings, Expr};
use hipac_object::query::{Query, QueryResult, Row};
use hipac_object::ObjectStore;
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of evaluating one rule's condition.
#[derive(Debug, Clone)]
pub struct ConditionOutcome {
    pub satisfied: bool,
    /// Result rows of each condition query, in rule order (empty when
    /// unsatisfied — later queries are not evaluated needlessly, but
    /// shared earlier results are kept).
    pub rows: Vec<QueryResult>,
}

/// Statistics from one evaluation batch (benchmarks and tests inspect
/// these to demonstrate sharing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Queries appearing in the batch, counted with multiplicity.
    pub queries_seen: usize,
    /// Queries actually executed against the store.
    pub store_evaluations: usize,
    /// Queries answered purely from the event's delta.
    pub delta_evaluations: usize,
    /// Queries answered from the shared cache.
    pub cache_hits: usize,
}

/// The Condition Evaluator.
pub struct ConditionEvaluator {
    store: Arc<ObjectStore>,
    /// Cross-batch memo for pure committed-data queries (the
    /// discrimination network's shared subexpression nodes); `None`
    /// under naive matching.
    memo: Option<Arc<crate::network::MemoTable>>,
}

impl ConditionEvaluator {
    /// Create an evaluator over the Object Manager.
    pub fn new(store: Arc<ObjectStore>) -> Self {
        ConditionEvaluator { store, memo: None }
    }

    /// Evaluator with a committed-data query memo. The caller must
    /// have enabled the store's write tracking
    /// ([`ObjectStore::set_write_tracking`]) or every lookup misses.
    pub fn with_memo(store: Arc<ObjectStore>, memo: Arc<crate::network::MemoTable>) -> Self {
        ConditionEvaluator {
            store,
            memo: Some(memo),
        }
    }

    /// Does `query`'s predicate reference only `old.*`/`new.*` images,
    /// parameters and literals (the shape that can be answered from an
    /// event delta without touching the store)?
    pub fn delta_answerable_shape(query: &Query) -> bool {
        // Projections need a row from the store only if they project
        // plain attributes — with a delta row available we can project
        // from the new (or old) image, so projection is fine.
        fn only_delta_refs(e: &Expr) -> bool {
            match e {
                Expr::Attr(_) | Expr::Slot(..) => false,
                Expr::Literal(_) | Expr::Param(_) => true,
                Expr::OldAttr(_) | Expr::OldSlot(..) | Expr::NewAttr(_) | Expr::NewSlot(..) => {
                    true
                }
                Expr::Unary(_, e) => only_delta_refs(e),
                Expr::Binary(_, l, r) => only_delta_refs(l) && only_delta_refs(r),
                Expr::Call(_, args) => args.iter().all(only_delta_refs),
            }
        }
        only_delta_refs(&query.predicate)
    }

    /// Can `query` be answered from the event delta alone? True when
    /// the event carries a db payload whose class is (a subclass of)
    /// the query's class and the predicate has the delta-answerable
    /// shape.
    fn delta_answerable(query: &Query, signal: &EventSignal) -> bool {
        let Some(db) = &signal.db else {
            return false;
        };
        if !db.class_lineage.contains(&query.class) {
            return false;
        }
        Self::delta_answerable_shape(query)
    }

    /// Evaluate `query` against the delta only.
    fn eval_delta(
        &self,
        txn: TxnId,
        query: &Query,
        signal: &EventSignal,
    ) -> Result<QueryResult> {
        let db = signal.db.as_ref().expect("checked by delta_answerable");
        let schema = self.store.schema(txn);
        let resolved = query
            .predicate
            .resolve(&|name| schema.resolve_attr(db.class, name).map(|(s, _)| s))?;
        let ctx = Bindings {
            row: None,
            old: db.old.as_deref(),
            new: db.new.as_deref(),
            params: Some(&signal.params),
        };
        if resolved.eval_bool(&ctx)? {
            // Produce the affected instance as the single result row,
            // projecting from the newest image available.
            let image = db.new.clone().or_else(|| db.old.clone()).unwrap_or_default();
            let values = match &query.projection {
                None => image,
                Some(attrs) => {
                    let mut out = Vec::with_capacity(attrs.len());
                    for a in attrs {
                        let (slot, _) = schema.resolve_attr(db.class, a)?;
                        out.push(image.get(slot).cloned().unwrap_or(Value::Null));
                    }
                    out
                }
            };
            Ok(vec![Row {
                oid: db.oid.unwrap_or(hipac_common::ObjectId(0)),
                class: db.class,
                values,
            }])
        } else {
            Ok(Vec::new())
        }
    }

    /// Replace `old.x` / `new.x` references in `query`'s predicate with
    /// literal values from the event's delta, so the store's executor
    /// (which has no delta context) can evaluate it. Errors if the
    /// predicate references an image the event does not carry. Also
    /// used by the Rule Manager for action queries (`UpdateWhere`,
    /// `DeleteWhere`) whose predicates mention the delta.
    pub fn fold_delta(&self, txn: TxnId, query: &Query, signal: &EventSignal) -> Result<Query> {
        fn has_delta_refs(e: &Expr) -> bool {
            match e {
                Expr::OldAttr(_) | Expr::OldSlot(..) | Expr::NewAttr(_) | Expr::NewSlot(..) => {
                    true
                }
                Expr::Unary(_, e) => has_delta_refs(e),
                Expr::Binary(_, l, r) => has_delta_refs(l) || has_delta_refs(r),
                Expr::Call(_, args) => args.iter().any(has_delta_refs),
                _ => false,
            }
        }
        if !has_delta_refs(&query.predicate) {
            return Ok(query.clone());
        }
        let db = signal.db.as_ref().ok_or_else(|| {
            hipac_common::HipacError::EvalError(
                "condition references old/new but the event carries no delta".into(),
            )
        })?;
        let schema = self.store.schema(txn);
        fn fold(
            e: &Expr,
            schema: &hipac_object::Schema,
            class: hipac_common::ClassId,
            old: Option<&[Value]>,
            new: Option<&[Value]>,
        ) -> Result<Expr> {
            let image = |img: Option<&[Value]>, which: &str, name: &str| -> Result<Expr> {
                let img = img.ok_or_else(|| {
                    hipac_common::HipacError::EvalError(format!(
                        "no {which} image for {which}.{name}"
                    ))
                })?;
                let (slot, _) = schema.resolve_attr(class, name)?;
                Ok(Expr::Literal(img.get(slot).cloned().unwrap_or(Value::Null)))
            };
            Ok(match e {
                Expr::OldAttr(n) | Expr::OldSlot(_, n) => image(old, "old", n)?,
                Expr::NewAttr(n) | Expr::NewSlot(_, n) => image(new, "new", n)?,
                Expr::Unary(op, x) => {
                    Expr::Unary(*op, Box::new(fold(x, schema, class, old, new)?))
                }
                Expr::Binary(op, l, r) => Expr::Binary(
                    *op,
                    Box::new(fold(l, schema, class, old, new)?),
                    Box::new(fold(r, schema, class, old, new)?),
                ),
                Expr::Call(f, args) => Expr::Call(
                    f.clone(),
                    args.iter()
                        .map(|a| fold(a, schema, class, old, new))
                        .collect::<Result<_>>()?,
                ),
                other => other.clone(),
            })
        }
        Ok(Query {
            class: query.class.clone(),
            predicate: fold(
                &query.predicate,
                &schema,
                db.class,
                db.old.as_deref(),
                db.new.as_deref(),
            )?,
            projection: query.projection.clone(),
        })
    }

    /// Evaluate the conditions of a batch of rules triggered by one
    /// event. `conditions[i]` is the i-th rule's query collection.
    /// Returns one outcome per rule plus batch statistics.
    pub fn evaluate_batch(
        &self,
        txn: TxnId,
        conditions: &[&[Query]],
        signal: &EventSignal,
    ) -> Result<(Vec<ConditionOutcome>, EvalStats)> {
        let mut stats = EvalStats::default();
        // The condition graph: structurally identical queries share one
        // node, evaluated at most once.
        let mut cache: HashMap<&Query, QueryResult> = HashMap::new();
        let mut outcomes = Vec::with_capacity(conditions.len());
        for queries in conditions {
            let mut satisfied = true;
            let mut rows = Vec::with_capacity(queries.len());
            for q in *queries {
                stats.queries_seen += 1;
                let result: QueryResult = if let Some(hit) = cache.get(q) {
                    stats.cache_hits += 1;
                    hit.clone()
                } else {
                    let r = if Self::delta_answerable(q, signal) {
                        stats.delta_evaluations += 1;
                        self.eval_delta(txn, q, signal)?
                    } else {
                        // Mixed predicates (plain attributes AND delta
                        // references) run against the store with the
                        // delta constant-folded into the predicate.
                        let folded = self.fold_delta(txn, q, signal)?;
                        // Pure committed-data queries (post-folding: no
                        // delta refs, no params) may be served from the
                        // stamp-validated memo instead of the store.
                        let memo = self
                            .memo
                            .as_ref()
                            .filter(|_| crate::network::MemoTable::eligible(&folded));
                        let memo_rows = match memo {
                            Some(m) => m.lookup(&self.store, txn, &folded)?,
                            None => None,
                        };
                        match memo_rows {
                            Some(rows) => rows,
                            None => {
                                stats.store_evaluations += 1;
                                let stamp =
                                    memo.and_then(|_| self.store.data_stamp(&folded.class));
                                let rows =
                                    self.store.query(txn, &folded, Some(&signal.params))?;
                                if let Some(m) = memo {
                                    m.fill(&self.store, txn, &folded, stamp, &rows);
                                }
                                rows
                            }
                        }
                    };
                    cache.insert(q, r.clone());
                    r
                };
                let empty = result.is_empty();
                rows.push(result);
                if empty {
                    satisfied = false;
                    // Remaining queries still evaluated only if another
                    // rule needs them (lazily, via the cache); for this
                    // rule we can stop.
                    break;
                }
            }
            outcomes.push(ConditionOutcome {
                satisfied,
                rows: if satisfied { rows } else { Vec::new() },
            });
        }
        Ok((outcomes, stats))
    }

    /// Evaluate a single rule's condition (manual `fire`, §2.2).
    pub fn evaluate_one(
        &self,
        txn: TxnId,
        condition: &[Query],
        signal: &EventSignal,
    ) -> Result<ConditionOutcome> {
        let (mut outcomes, _) = self.evaluate_batch(txn, &[condition], signal)?;
        Ok(outcomes.pop().expect("one condition in, one outcome out"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipac_common::{ClassId, ObjectId, ValueType};
    use hipac_event::spec::DbEventKind;
    use hipac_event::DbEventData;
    use hipac_object::expr::BinOp;
    use hipac_object::AttrDef;
    use hipac_txn::TransactionManager;

    fn setup() -> (Arc<TransactionManager>, Arc<ObjectStore>, ConditionEvaluator) {
        let tm = Arc::new(TransactionManager::new());
        let store = ObjectStore::new(Arc::clone(&tm), None).unwrap();
        tm.run_top(|t| {
            store.create_class(
                t,
                "stock",
                None,
                vec![
                    AttrDef::new("symbol", ValueType::Str).indexed(),
                    AttrDef::new("price", ValueType::Float),
                ],
            )?;
            store.insert(t, "stock", vec![Value::from("XRX"), Value::from(49.0)])?;
            store.insert(t, "stock", vec![Value::from("DEC"), Value::from(99.0)])?;
            Ok(())
        })
        .unwrap();
        let ce = ConditionEvaluator::new(Arc::clone(&store));
        (tm, store, ce)
    }

    fn update_signal(tm: &TransactionManager) -> (TxnId, EventSignal) {
        let txn = tm.begin();
        let signal = EventSignal {
            time: 1,
            txn: Some(txn),
            params: HashMap::new(),
            db: Some(DbEventData {
                kind: DbEventKind::Update,
                class: ClassId(1),
                class_lineage: vec!["stock".into()],
                oid: Some(ObjectId(1)),
                old: Some(vec![Value::from("XRX"), Value::from(49.0)]),
                new: Some(vec![Value::from("XRX"), Value::from(50.0)]),
            }),
        };
        (txn, signal)
    }

    #[test]
    fn store_query_condition() {
        let (tm, _store, ce) = setup();
        let (txn, signal) = update_signal(&tm);
        let sat = [Query::filtered(
            "stock",
            Expr::attr("price").bin(BinOp::Ge, Expr::lit(90.0)),
        )];
        let unsat = [Query::filtered(
            "stock",
            Expr::attr("price").bin(BinOp::Ge, Expr::lit(1000.0)),
        )];
        let (outs, stats) = ce
            .evaluate_batch(txn, &[&sat, &unsat], &signal)
            .unwrap();
        assert!(outs[0].satisfied);
        assert_eq!(outs[0].rows[0].len(), 1);
        assert!(!outs[1].satisfied);
        assert_eq!(stats.store_evaluations, 2);
        assert_eq!(stats.delta_evaluations, 0);
        tm.abort(txn).unwrap();
    }

    #[test]
    fn shared_queries_evaluate_once() {
        let (tm, _store, ce) = setup();
        let (txn, signal) = update_signal(&tm);
        let q = Query::filtered(
            "stock",
            Expr::attr("price").bin(BinOp::Ge, Expr::lit(90.0)),
        );
        // Five rules with the same condition query.
        let conds: Vec<Vec<Query>> = (0..5).map(|_| vec![q.clone()]).collect();
        let cond_refs: Vec<&[Query]> = conds.iter().map(|c| c.as_slice()).collect();
        let (outs, stats) = ce.evaluate_batch(txn, &cond_refs, &signal).unwrap();
        assert!(outs.iter().all(|o| o.satisfied));
        assert_eq!(stats.queries_seen, 5);
        assert_eq!(stats.store_evaluations, 1, "condition graph sharing");
        assert_eq!(stats.cache_hits, 4);
        tm.abort(txn).unwrap();
    }

    #[test]
    fn delta_conditions_skip_the_store() {
        let (tm, _store, ce) = setup();
        let (txn, signal) = update_signal(&tm);
        let crossing = [Query::filtered(
            "stock",
            Expr::NewAttr("price".into())
                .bin(BinOp::Ge, Expr::lit(50.0))
                .and(Expr::OldAttr("price".into()).bin(BinOp::Lt, Expr::lit(50.0))),
        )];
        let (outs, stats) = ce.evaluate_batch(txn, &[&crossing], &signal).unwrap();
        assert!(outs[0].satisfied, "49 -> 50 crosses the threshold");
        assert_eq!(stats.delta_evaluations, 1);
        assert_eq!(stats.store_evaluations, 0, "no store access needed");
        // The produced row is the new image.
        assert_eq!(outs[0].rows[0][0].values[1], Value::from(50.0));
        tm.abort(txn).unwrap();
    }

    #[test]
    fn delta_not_applicable_for_other_classes_or_plain_attrs() {
        let (tm, _store, ce) = setup();
        let (txn, signal) = update_signal(&tm);
        // Plain attribute reference forces a store query.
        let plain = [Query::filtered(
            "stock",
            Expr::attr("price").bin(BinOp::Ge, Expr::NewAttr("price".into())),
        )];
        let (_outs, stats) = ce.evaluate_batch(txn, &[&plain], &signal).unwrap();
        assert_eq!(stats.delta_evaluations, 0);
        tm.abort(txn).unwrap();
    }

    #[test]
    fn multi_query_condition_requires_all_nonempty() {
        let (tm, _store, ce) = setup();
        let (txn, signal) = update_signal(&tm);
        let cond = [
            Query::filtered(
                "stock",
                Expr::attr("symbol").bin(BinOp::Eq, Expr::lit("XRX")),
            ),
            Query::filtered(
                "stock",
                Expr::attr("symbol").bin(BinOp::Eq, Expr::lit("NOPE")),
            ),
        ];
        let out = ce.evaluate_one(txn, &cond, &signal).unwrap();
        assert!(!out.satisfied);
        // Empty condition is the always-true condition.
        let out = ce.evaluate_one(txn, &[], &signal).unwrap();
        assert!(out.satisfied);
        tm.abort(txn).unwrap();
    }

    #[test]
    fn params_flow_into_queries() {
        let (tm, _store, ce) = setup();
        let txn = tm.begin();
        let mut params = HashMap::new();
        params.insert("sym".to_string(), Value::from("DEC"));
        let signal = EventSignal {
            time: 0,
            txn: Some(txn),
            params,
            db: None,
        };
        let cond = [Query::filtered(
            "stock",
            Expr::attr("symbol").bin(BinOp::Eq, Expr::param("sym")),
        )];
        let out = ce.evaluate_one(txn, &cond, &signal).unwrap();
        assert!(out.satisfied);
        assert_eq!(out.rows[0][0].values[1], Value::from(99.0));
        tm.abort(txn).unwrap();
    }
}
