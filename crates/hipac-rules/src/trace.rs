//! Rule-base development tools (§7).
//!
//! The paper closes with: "As the rule base for an application grows,
//! problems due to unexpected interactions among rules become more
//! likely. … Future research will produce the tools and techniques
//! needed to develop large, complex rule bases." This module provides
//! the two foundational tools:
//!
//! * a **firing tracer** — a bounded ring of [`FiringTrace`] records
//!   (what fired, triggered by what, in which transaction at which
//!   cascade depth, was the condition satisfied, how long it took);
//! * **rule explanation** — [`RuleExplanation`], a static analysis of
//!   one rule: its (possibly derived) event, how each condition query
//!   would be evaluated (delta / index / scan), and its couplings.

use crate::rule::CouplingMode;
use hipac_common::{EventId, RuleId, Timestamp, TxnId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

/// One recorded rule firing (or non-firing, when the condition failed).
#[derive(Debug, Clone, PartialEq)]
pub struct FiringTrace {
    pub rule: RuleId,
    pub rule_name: String,
    pub event: Option<EventId>,
    /// The transaction the firing coupled to (the triggering
    /// transaction for immediate/deferred, the worker transaction for
    /// separate firings).
    pub txn: Option<TxnId>,
    pub ec_coupling: CouplingMode,
    pub satisfied: bool,
    pub action_executed: bool,
    /// Transaction-tree depth of the firing's parent — cascades show up
    /// as increasing depths.
    pub cascade_depth: usize,
    /// Database time of the triggering signal.
    pub event_time: Timestamp,
    /// Wall-clock cost of this firing, rounded up to a whole
    /// microsecond: the condition-evaluation phase (shared across the
    /// batch, so every firing of one group reports the same condition
    /// component) plus, for satisfied rules with a synchronous C-A
    /// coupling, the action subtransaction.
    pub duration_us: u64,
    /// Retry attempts consumed beyond the first execution (separate
    /// firings only; synchronous firings never retry).
    pub retries: u64,
    /// True for the dead-letter record of a separate firing that
    /// failed terminally (retry budget exhausted, or a non-retryable
    /// error).
    pub dead_letter: bool,
}

/// Bounded in-memory trace buffer. Disabled by default (zero cost:
/// one relaxed atomic load per firing).
pub struct RuleTracer {
    enabled: AtomicBool,
    capacity: usize,
    ring: Mutex<VecDeque<FiringTrace>>,
}

impl RuleTracer {
    /// A disabled tracer holding at most `capacity` records.
    pub fn new(capacity: usize) -> RuleTracer {
        RuleTracer {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Turn tracing on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is tracing currently on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one firing (no-op while disabled).
    pub fn record(&self, trace: FiringTrace) {
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Snapshot the buffer without clearing it.
    pub fn snapshot(&self) -> Vec<FiringTrace> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Drain the buffer.
    pub fn take(&self) -> Vec<FiringTrace> {
        self.ring.lock().drain(..).collect()
    }
}

/// How one condition query will be evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryStrategy {
    /// Answerable from the event's old/new images alone.
    Delta,
    /// Secondary-index equality probe on the named attribute.
    IndexEq { attr: String },
    /// Polymorphic extent scan.
    Scan,
}

/// Static analysis of one rule (see `RuleManager::explain_rule`).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleExplanation {
    pub rule: RuleId,
    pub name: String,
    pub enabled: bool,
    /// The effective event specification (derived from the condition
    /// when the rule declared none).
    pub event: hipac_event::EventSpec,
    /// True when the event was derived rather than declared.
    pub event_derived: bool,
    /// Evaluation strategy per condition query, in order. `Delta`
    /// assumes the triggering event carries images of the query's
    /// class; mixed triggers fall back to the index/scan strategy.
    pub condition_strategies: Vec<QueryStrategy>,
    pub ec_coupling: CouplingMode,
    pub ca_coupling: CouplingMode,
    pub action_ops: usize,
}

impl std::fmt::Display for RuleExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "rule {} ({}) [{}]",
            self.name,
            self.rule,
            if self.enabled { "enabled" } else { "disabled" }
        )?;
        writeln!(
            f,
            "  event{}: {:?}",
            if self.event_derived { " (derived)" } else { "" },
            self.event
        )?;
        for (i, s) in self.condition_strategies.iter().enumerate() {
            writeln!(f, "  condition[{i}]: {s:?}")?;
        }
        writeln!(
            f,
            "  coupling: E-C {:?}, C-A {:?}; action: {} op(s)",
            self.ec_coupling, self.ca_coupling, self.action_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rule: u64) -> FiringTrace {
        FiringTrace {
            rule: RuleId(rule),
            rule_name: format!("r{rule}"),
            event: Some(EventId(1)),
            txn: Some(TxnId(1)),
            ec_coupling: CouplingMode::Immediate,
            satisfied: true,
            action_executed: true,
            cascade_depth: 0,
            event_time: 0,
            duration_us: 1,
            retries: 0,
            dead_letter: false,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = RuleTracer::new(4);
        tracer.record(t(1));
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn ring_keeps_the_newest_capacity_records() {
        let tracer = RuleTracer::new(3);
        tracer.set_enabled(true);
        for i in 0..10 {
            tracer.record(t(i));
        }
        let snap = tracer.snapshot();
        assert_eq!(
            snap.iter().map(|x| x.rule.raw()).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(tracer.take().len(), 3);
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn explanation_displays() {
        let ex = RuleExplanation {
            rule: RuleId(3),
            name: "watch".into(),
            enabled: true,
            event: hipac_event::EventSpec::on_update("stock"),
            event_derived: true,
            condition_strategies: vec![QueryStrategy::Delta, QueryStrategy::Scan],
            ec_coupling: CouplingMode::Deferred,
            ca_coupling: CouplingMode::Immediate,
            action_ops: 2,
        };
        let text = ex.to_string();
        assert!(text.contains("derived"));
        assert!(text.contains("condition[1]: Scan"));
        assert!(text.contains("Deferred"));
    }
}
