//! Worker pools for rule firings.
//!
//! Two pools with different synchronization contracts live here:
//!
//! * [`WorkerPool`] — fire-and-forget, for **separate**-coupled rule
//!   firings. §6.2: "For each rule firing with separate condition
//!   evaluation, the Rule Manager obtains a new top level transaction …
//!   all of these transactions execute concurrently, each in its own
//!   thread of execution." The 1989 prototype used Smalltalk
//!   lightweight processes; we use a small OS-thread pool fed by a
//!   crossbeam channel. [`WorkerPool::quiesce`] waits until all
//!   submitted firings have drained — tests and benchmarks use it to
//!   make asynchronous firings observable deterministically.
//!
//! * [`FiringPool`] — scoped batches, for **immediate/deferred**
//!   firings. §3's execution model fires the rules triggered by one
//!   event concurrently as sibling subtransactions of the suspended
//!   parent; [`FiringPool::run_batch`] provides exactly that scope: the
//!   calling thread hands a batch of sibling jobs to the pool, takes
//!   part in draining them, and returns only when every job in the
//!   batch has finished. The caller-participation rule doubles as the
//!   overflow path for cascades: a worker whose rule action triggers a
//!   further group re-enters `run_batch` and simply drains the unclaimed
//!   sub-jobs itself, so waits only ever point at actively-executing
//!   workers and can never cycle.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of work for either pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    outstanding: Mutex<usize>,
    cv: Condvar,
}

/// A fixed-size worker pool.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `size` workers (at least 1).
    pub fn new(size: usize) -> WorkerPool {
        let (tx, rx) = unbounded::<Job>();
        let shared = Arc::new(Shared {
            outstanding: Mutex::new(0),
            cv: Condvar::new(),
        });
        let mut workers = Vec::new();
        for i in 0..size.max(1) {
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hipac-rule-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            let mut n = shared.outstanding.lock();
                            *n -= 1;
                            if *n == 0 {
                                shared.cv.notify_all();
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }
        WorkerPool {
            tx: Some(tx),
            shared,
            workers,
        }
    }

    /// Submit a firing. Never blocks.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut n = self.shared.outstanding.lock();
            *n += 1;
        }
        self.tx
            .as_ref()
            .expect("pool is alive while not dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Block until every submitted job (including jobs submitted by
    /// running jobs) has completed.
    pub fn quiesce(&self) {
        let mut n = self.shared.outstanding.lock();
        while *n > 0 {
            self.shared.cv.wait(&mut n);
        }
    }

    /// Number of jobs submitted but not yet finished.
    pub fn outstanding(&self) -> usize {
        *self.shared.outstanding.lock()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the channel so workers exit, then join them.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One batch of sibling jobs. Shared between the submitting thread and
/// the workers that got a hint for it.
struct BatchCore {
    /// Jobs not yet claimed. Claiming = popping; a popped job is being
    /// executed by exactly one thread.
    queue: Mutex<Vec<Job>>,
    /// Jobs (claimed or not) that have not finished.
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl BatchCore {
    /// Pop-and-run jobs until the queue is empty, decrementing `depth`
    /// per claim and `remaining` per completion.
    fn drain(&self, depth: &AtomicUsize) {
        loop {
            let job = self.queue.lock().pop();
            match job {
                Some(job) => {
                    depth.fetch_sub(1, Ordering::Relaxed);
                    job();
                    let mut n = self.remaining.lock();
                    *n -= 1;
                    if *n == 0 {
                        self.cv.notify_all();
                    }
                }
                None => return,
            }
        }
    }
}

/// A scoped pool for firing sibling subtransactions concurrently.
///
/// `parallelism` is the number of threads that may execute jobs of one
/// batch at once: the submitting thread plus `parallelism - 1` pool
/// workers. `parallelism <= 1` means no workers are spawned and
/// [`run_batch`](FiringPool::run_batch) degenerates to the sequential
/// in-order loop, which is the pre-pool behavior bit for bit.
pub struct FiringPool {
    parallelism: usize,
    tx: Option<Sender<Arc<BatchCore>>>,
    /// Jobs enqueued but not yet claimed by any thread, across all
    /// live batches. Doubles as the overflow heuristic: a batch
    /// arriving while the backlog already covers every worker runs
    /// inline on its caller instead of queueing behind it.
    depth: Arc<AtomicUsize>,
    workers: Vec<JoinHandle<()>>,
}

impl FiringPool {
    /// A pool allowing `parallelism` concurrent siblings (min 1).
    pub fn new(parallelism: usize) -> FiringPool {
        let parallelism = parallelism.max(1);
        let (tx, rx) = unbounded::<Arc<BatchCore>>();
        let depth = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::new();
        for i in 0..parallelism - 1 {
            let rx = rx.clone();
            let depth = Arc::clone(&depth);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hipac-firing-worker-{i}"))
                    .spawn(move || {
                        // A hint names a batch that had unclaimed jobs
                        // when sent; by now the caller may have drained
                        // them, in which case drain() is a no-op.
                        while let Ok(core) = rx.recv() {
                            core.drain(&depth);
                        }
                    })
                    .expect("spawn firing worker thread"),
            );
        }
        FiringPool {
            parallelism,
            tx: Some(tx),
            depth,
            workers,
        }
    }

    /// Configured parallelism (1 = sequential).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Jobs currently enqueued and unclaimed, across all batches.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Run a batch of sibling jobs, returning when all have finished.
    ///
    /// Jobs may run concurrently (up to the pool parallelism) and in
    /// any order; with `parallelism <= 1` they run sequentially in
    /// order on the calling thread. Returns `true` when the batch was
    /// dispatched to the pool (i.e. jobs may actually have overlapped).
    ///
    /// The calling thread always participates: it drains unclaimed
    /// jobs itself and then waits only for jobs already claimed by
    /// workers. A cascade re-entering `run_batch` from inside a worker
    /// therefore cannot deadlock — waiting threads never claim new
    /// jobs, and every wait points at a thread actively executing one
    /// of the waiter's own sub-jobs.
    pub fn run_batch(&self, jobs: Vec<Job>) -> bool {
        let n = jobs.len();
        // Overflow to caller: sequential semantics, single job, or a
        // backlog already deep enough to keep every worker busy.
        if self.parallelism <= 1
            || n <= 1
            || self.depth.load(Ordering::Relaxed) >= self.workers.len()
        {
            for job in jobs {
                job();
            }
            return false;
        }
        let core = Arc::new(BatchCore {
            queue: Mutex::new(jobs),
            remaining: Mutex::new(n),
            cv: Condvar::new(),
        });
        self.depth.fetch_add(n, Ordering::Relaxed);
        // One hint per job a worker could usefully claim (the caller
        // takes at least one); stale hints are harmless no-ops.
        let tx = self.tx.as_ref().expect("pool is alive while not dropped");
        for _ in 0..(n - 1).min(self.workers.len()) {
            tx.send(Arc::clone(&core)).expect("workers outlive the sender");
        }
        core.drain(&self.depth);
        let mut remaining = core.remaining.lock();
        while *remaining > 0 {
            core.cv.wait(&mut remaining);
        }
        true
    }
}

impl Drop for FiringPool {
    fn drop(&mut self) {
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_and_quiesce_waits() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.quiesce();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn jobs_can_submit_jobs() {
        let pool = Arc::new(WorkerPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool2 = Arc::clone(&pool);
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
                for _ in 0..5 {
                    let c = Arc::clone(&c);
                    pool2.submit(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        pool.quiesce();
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn firing_batch_runs_all_jobs_and_settles() {
        let pool = FiringPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..64)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn firing_batch_overlaps_blocking_jobs() {
        // Two jobs that each wait for the other can only finish if they
        // actually run concurrently.
        let pool = FiringPool::new(2);
        let a = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                Box::new(move || {
                    a.fetch_add(1, Ordering::SeqCst);
                    while a.load(Ordering::SeqCst) < 2 {
                        std::thread::yield_now();
                    }
                }) as Job
            })
            .collect();
        assert!(pool.run_batch(jobs));
    }

    #[test]
    fn firing_parallelism_one_is_sequential_in_order() {
        let pool = FiringPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                let order = Arc::clone(&order);
                Box::new(move || order.lock().push(i)) as Job
            })
            .collect();
        assert!(!pool.run_batch(jobs));
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn firing_cascades_reenter_without_deadlock() {
        // Every job of the outer batch submits an inner batch from
        // inside the pool; with caller participation this terminates
        // even though the fan-out exceeds the worker count.
        let pool = Arc::new(FiringPool::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let outer: Vec<Job> = (0..6)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    let inner: Vec<Job> = (0..4)
                        .map(|_| {
                            let c = Arc::clone(&counter);
                            Box::new(move || {
                                c.fetch_add(1, Ordering::SeqCst);
                            }) as Job
                        })
                        .collect();
                    pool.run_batch(inner);
                }) as Job
            })
            .collect();
        pool.run_batch(outer);
        assert_eq!(counter.load(Ordering::SeqCst), 24);
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
