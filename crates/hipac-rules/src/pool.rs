//! Worker pool for separate-coupled rule firings.
//!
//! §6.2: "For each rule firing with separate condition evaluation, the
//! Rule Manager obtains a new top level transaction … all of these
//! transactions execute concurrently, each in its own thread of
//! execution." The 1989 prototype used Smalltalk lightweight processes;
//! we use a small OS-thread pool fed by a crossbeam channel.
//!
//! [`WorkerPool::quiesce`] waits until all submitted firings have
//! drained — tests and benchmarks use it to make asynchronous firings
//! observable deterministically.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    outstanding: Mutex<usize>,
    cv: Condvar,
}

/// A fixed-size worker pool.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `size` workers (at least 1).
    pub fn new(size: usize) -> WorkerPool {
        let (tx, rx) = unbounded::<Job>();
        let shared = Arc::new(Shared {
            outstanding: Mutex::new(0),
            cv: Condvar::new(),
        });
        let mut workers = Vec::new();
        for i in 0..size.max(1) {
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hipac-rule-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            let mut n = shared.outstanding.lock();
                            *n -= 1;
                            if *n == 0 {
                                shared.cv.notify_all();
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }
        WorkerPool {
            tx: Some(tx),
            shared,
            workers,
        }
    }

    /// Submit a firing. Never blocks.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut n = self.shared.outstanding.lock();
            *n += 1;
        }
        self.tx
            .as_ref()
            .expect("pool is alive while not dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Block until every submitted job (including jobs submitted by
    /// running jobs) has completed.
    pub fn quiesce(&self) {
        let mut n = self.shared.outstanding.lock();
        while *n > 0 {
            self.shared.cv.wait(&mut n);
        }
    }

    /// Number of jobs submitted but not yet finished.
    pub fn outstanding(&self) -> usize {
        *self.shared.outstanding.lock()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the channel so workers exit, then join them.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_quiesce_waits() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.quiesce();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn jobs_can_submit_jobs() {
        let pool = Arc::new(WorkerPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool2 = Arc::clone(&pool);
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
                for _ in 0..5 {
                    let c = Arc::clone(&c);
                    pool2.submit(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        pool.quiesce();
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
