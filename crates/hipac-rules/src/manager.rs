//! The Rule Manager (§5.4) and the rule-processing protocols of §6.
//!
//! Responsibilities, per the paper:
//!
//! * map events to rule firings and rule firings to transactions;
//! * schedule condition evaluation and action execution according to
//!   the coupling modes (§3.2):
//!   - *immediate* firings run in subtransactions at the event point,
//!     with the triggering operation suspended (§6.2);
//!   - *deferred* firings accumulate per transaction and run when that
//!     transaction commits (§6.3), via the Transaction Manager hook;
//!   - *separate* firings run in concurrent top-level transactions on a
//!     worker pool;
//! * manage rules as database objects (§2.2): create / delete / enable
//!   / disable are transactional (the catalog is a version store) and
//!   take write locks; firing takes a read lock, so a rule update
//!   serializes against firings of that rule;
//! * derive the event specification from the condition when a rule is
//!   defined without one (§2.1);
//! * forward requests to application programs (§4.1 role reversal)
//!   through registered [`ApplicationHandler`]s.
//!
//! Faithfulness note: the paper creates one condition-evaluation
//! subtransaction *per rule* and lets siblings run concurrently. This
//! implementation evaluates the conditions of all rules triggered by
//! one event in a single condition-evaluation subtransaction (which is
//! exactly the batch interface the paper gives the Condition Evaluator
//! in §5.5, and a legal serial schedule of the paper's siblings), then
//! runs each satisfied rule's action in its own subtransaction.

use crate::condition::{ConditionEvaluator, EvalStats};
use crate::network::{derive_guard, GuardSpec, MatchNetwork, Matching, MemoTable};
use crate::pool::{FiringPool, WorkerPool};
use crate::rule::{Action, ActionOp, CouplingMode, DbAction, RuleDef};
use hipac_common::id::IdAllocator;
use hipac_common::{EventId, HipacError, ObjectId, Result, RuleId, TxnId, Value};
use hipac_event::spec::DbEventKind;
use hipac_event::{DbEventData, EventRegistry, EventSignal, EventSpec, SignalSink};
use hipac_object::expr::Bindings;
use hipac_object::query::QueryResult;
use hipac_object::store::{DbOperation, LockKey, OpListener};
use hipac_object::ObjectStore;
use hipac_txn::{LockMode, ResourceManager, TransactionManager, TxnHook, VersionStore};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// An application program registered to receive rule-action requests
/// (§4.1: "HiPAC becomes the client and the application becomes the
/// server").
pub trait ApplicationHandler: Send + Sync {
    fn handle(&self, request: &str, args: &HashMap<String, Value>) -> Result<()>;
}

/// Aggregate counters (benchmarks and EXPERIMENTS.md read these).
#[derive(Debug, Default)]
pub struct RuleStats {
    pub signals_processed: AtomicU64,
    pub rules_triggered: AtomicU64,
    pub conditions_satisfied: AtomicU64,
    pub actions_executed: AtomicU64,
    pub store_evaluations: AtomicU64,
    pub delta_evaluations: AtomicU64,
    pub cache_hits: AtomicU64,
    /// Action firings dispatched through the parallel sibling pool
    /// (a subset of `actions_executed`).
    pub firings_parallel: AtomicU64,
    /// Separate-mode firing attempts retried after a transaction-fatal
    /// abort (deadlock / lock timeout / deadline).
    pub separate_retries: AtomicU64,
    /// Separate-mode firings abandoned after exhausting the retry
    /// budget (or failing with a non-retryable error); each leaves a
    /// dead-letter trace entry and an entry in the separate-error
    /// buffer.
    pub separate_dead_letters: AtomicU64,
}

impl RuleStats {
    fn absorb(&self, s: EvalStats) {
        self.store_evaluations
            .fetch_add(s.store_evaluations as u64, Ordering::Relaxed);
        self.delta_evaluations
            .fetch_add(s.delta_evaluations as u64, Ordering::Relaxed);
        self.cache_hits.fetch_add(s.cache_hits as u64, Ordering::Relaxed);
    }
}

struct CatalogEntry {
    event: EventId,
    /// Transaction whose abort should retract this entry (rule creation
    /// not yet committed to the top level); `None` once fully
    /// committed.
    created_by: Option<TxnId>,
}

/// The Rule Manager.
pub struct RuleManager {
    tm: Arc<TransactionManager>,
    store: Arc<ObjectStore>,
    events: Arc<EventRegistry>,
    evaluator: ConditionEvaluator,
    pool: WorkerPool,
    /// Scoped pool firing immediate/deferred sibling subtransactions
    /// concurrently (§3's execution model).
    firing: FiringPool,
    rules: VersionStore<RuleId, RuleDef>,
    rule_names: VersionStore<String, RuleId>,
    ids: IdAllocator,
    catalog: RwLock<HashMap<RuleId, CatalogEntry>>,
    /// Rules created by each still-uncommitted transaction — the
    /// inverse of `CatalogEntry::created_by`. Child commits and aborts
    /// re-attribute or retract only their own creations through this
    /// index instead of scanning the whole catalog, which would be
    /// O(total rules) on every immediate-coupled firing (each fires in
    /// a child transaction).
    created_index: Mutex<HashMap<TxnId, Vec<RuleId>>>,
    /// Event → rules, ascending by rule id. The rule lists are shared
    /// (`Arc`) so signal dispatch clones a handle, not the list — the
    /// per-signal work under this lock is O(1) regardless of how many
    /// rules an event has.
    event_map: RwLock<HashMap<EventId, Arc<Vec<RuleId>>>>,
    /// How signals resolve their candidate rules (fixed at
    /// construction): walk the full event list, or probe the
    /// discrimination network.
    matching: Matching,
    /// The discrimination network (maintained only under
    /// [`Matching::Network`]; naive mode keeps the oracle path pure).
    network: MatchNetwork,
    /// Committed-data query memo shared with the Condition Evaluator
    /// (network mode only).
    memo: Option<Arc<MemoTable>>,
    /// Structurally identical event specifications share one event
    /// definition (and one detection automaton): this is what makes the
    /// event→rules mapping of §5.4 many-to-one and lets one signal
    /// carry a whole batch of rules into the Condition Evaluator.
    spec_index: RwLock<HashMap<EventSpec, EventId>>,
    deferred: Mutex<HashMap<TxnId, Vec<(RuleId, EventSignal)>>>,
    /// Top-level transactions spawned by the Rule Manager itself
    /// (separate-mode firings). These do not emit transaction-control
    /// events, or commit-triggered rules would re-trigger themselves
    /// forever — the rule-interaction hazard the paper's §7 flags as
    /// future work; we close this one structurally.
    internal_txns: Mutex<std::collections::HashSet<TxnId>>,
    handlers: RwLock<HashMap<String, Arc<dyn ApplicationHandler>>>,
    separate_errors: Mutex<Vec<(RuleId, HipacError)>>,
    /// Retry budget for separate-mode firings aborted by a
    /// transaction-fatal error (attempts beyond the first).
    separate_retry_limit: std::sync::atomic::AtomicUsize,
    /// Rule firing gate. Open (the default) on a primary; closed on a
    /// node applying a replicated stream, where every signal reflects
    /// state the primary already fired rules for — firing again here
    /// would double-execute actions. Promotion opens the gate.
    firing_gate: std::sync::atomic::AtomicBool,
    /// Maximum transaction-tree depth for cascading firings.
    cascade_limit: usize,
    /// Statistics.
    pub stats: RuleStats,
    /// Firing tracer (§7 tooling); disabled by default.
    pub tracer: crate::trace::RuleTracer,
    /// Durable store for rule persistence (rules are database objects,
    /// §2.2). Shares the store with the Object Manager, under the `r`
    /// key prefix.
    durable: Option<Arc<hipac_storage::DurableStore>>,
    self_weak: RwLock<Weak<RuleManager>>,
}

const RULE_KEY_PREFIX: u8 = b'r';
/// Persisted discrimination-network guard metadata rides next to the
/// rule under its own prefix (written in the same durable batch as the
/// rule itself, in both matching modes, so the records never go stale).
const GUARD_KEY_PREFIX: u8 = b'g';

fn rule_key(rid: RuleId) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.push(RULE_KEY_PREFIX);
    k.extend_from_slice(&rid.raw().to_be_bytes());
    k
}

fn guard_key(rid: RuleId) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.push(GUARD_KEY_PREFIX);
    k.extend_from_slice(&rid.raw().to_be_bytes());
    k
}

/// Bridges Object Manager operations into event signals (the database
/// event detector half that lives in the Object Manager, §5.1).
struct DbEventBridge {
    mgr: Weak<RuleManager>,
}

impl OpListener for DbEventBridge {
    fn on_operation(&self, txn: TxnId, op: &DbOperation) -> Result<()> {
        let Some(mgr) = self.mgr.upgrade() else {
            return Ok(());
        };
        let schema = mgr.store.schema(txn);
        let mut lineage = Vec::new();
        let mut cur = Some(op.class());
        while let Some(cid) = cur {
            match schema.class(cid) {
                Ok(def) => {
                    lineage.push(def.name.clone());
                    cur = def.superclass;
                }
                Err(_) => break,
            }
        }
        let (kind, oid, old, new) = match op {
            DbOperation::CreateClass { .. } => (DbEventKind::CreateClass, None, None, None),
            DbOperation::DropClass { .. } => (DbEventKind::DropClass, None, None, None),
            DbOperation::Insert { oid, new, .. } => {
                (DbEventKind::Insert, Some(*oid), None, Some(new.clone()))
            }
            DbOperation::Update { oid, old, new, .. } => (
                DbEventKind::Update,
                Some(*oid),
                Some(old.clone()),
                Some(new.clone()),
            ),
            DbOperation::Delete { oid, old, .. } => {
                (DbEventKind::Delete, Some(*oid), Some(old.clone()), None)
            }
        };
        mgr.events.report_db(
            Some(txn),
            DbEventData {
                kind,
                class: op.class(),
                class_lineage: lineage,
                oid,
                old,
                new,
            },
        )
    }
}

/// Adapter: the Rule Manager's single *signal event* operation (§5.4).
struct RuleSink {
    mgr: Weak<RuleManager>,
}

impl SignalSink for RuleSink {
    fn signal(&self, event: EventId, signal: &EventSignal) -> Result<()> {
        match self.mgr.upgrade() {
            Some(mgr) => mgr.signal_event(event, signal),
            None => Ok(()),
        }
    }
}

/// Adapter: transaction lifecycle participation (§6.3 commit protocol,
/// abort cleanup, transaction events).
struct RuleTxnHook {
    mgr: Weak<RuleManager>,
}

impl TxnHook for RuleTxnHook {
    fn before_commit(&self, txn: TxnId) -> Result<()> {
        match self.mgr.upgrade() {
            Some(mgr) => mgr.process_deferred(txn),
            None => Ok(()),
        }
    }

    fn after_commit(&self, txn: TxnId, top: bool) {
        if let Some(mgr) = self.mgr.upgrade() {
            if top && mgr.internal_txns.lock().remove(&txn) {
                return;
            }
            if top {
                // Transaction-control events (§2.1). Reported without a
                // transaction context: the transaction is gone, so
                // immediate coupling degrades to separate.
                let _ = mgr.events.report_db(
                    None,
                    DbEventData {
                        kind: DbEventKind::TxnCommit,
                        class: hipac_common::ClassId(0),
                        class_lineage: Vec::new(),
                        oid: None,
                        old: None,
                        new: Some(vec![Value::Int(txn.raw() as i64)]),
                    },
                );
            }
        }
    }

    fn after_abort(&self, txn: TxnId, top: bool) {
        if let Some(mgr) = self.mgr.upgrade() {
            mgr.deferred.lock().remove(&txn);
            mgr.retract_created_by(txn);
            if top && mgr.matching == Matching::Network {
                // Pending definition changes died with the top: the
                // committed placements were never touched, so dropping
                // the unstable marks restores steady state.
                mgr.network.clear_top(txn);
            }
            if top && mgr.internal_txns.lock().remove(&txn) {
                return;
            }
            if top {
                let _ = mgr.events.report_db(
                    None,
                    DbEventData {
                        kind: DbEventKind::TxnAbort,
                        class: hipac_common::ClassId(0),
                        class_lineage: Vec::new(),
                        oid: None,
                        old: None,
                        new: Some(vec![Value::Int(txn.raw() as i64)]),
                    },
                );
            }
        }
    }
}

impl ResourceManager for RuleManager {
    fn on_commit_child(&self, txn: TxnId, parent: TxnId) -> Result<()> {
        self.rules.commit_into_parent(txn, parent);
        self.rule_names.commit_into_parent(txn, parent);
        // Creation attribution moves up with the layer — only the
        // child's own creations, via the inverse index.
        let moved = self.created_index.lock().remove(&txn);
        if let Some(rids) = moved {
            {
                let mut catalog = self.catalog.write();
                for rid in &rids {
                    if let Some(entry) = catalog.get_mut(rid) {
                        if entry.created_by == Some(txn) {
                            entry.created_by = Some(parent);
                        }
                    }
                }
            }
            self.created_index
                .lock()
                .entry(parent)
                .or_default()
                .extend(rids);
        }
        if self.matching == Matching::Network {
            self.network.promote_created(txn, parent);
        }
        // Deferred firings registered under the child move to the
        // parent? No: they were processed at the child's commit
        // (process_deferred ran in before_commit). Nothing to move.
        Ok(())
    }

    fn on_commit_top(&self, txn: TxnId) -> Result<()> {
        let changes = self.rules.commit_top(txn);
        self.rule_names.commit_top(txn);
        if let Some(d) = &self.durable {
            let mut ops = Vec::with_capacity(changes.len() * 2);
            for (rid, _, new) in &changes {
                match new {
                    Some(def) => {
                        ops.push(hipac_storage::StoreOp::Put {
                            key: rule_key(*rid),
                            value: crate::codec::encode_rule(def),
                        });
                        // Index metadata commits in the same batch as
                        // the rule, whatever the matching mode, so a
                        // later network-mode open never reads a guard
                        // that disagrees with its rule.
                        ops.push(hipac_storage::StoreOp::Put {
                            key: guard_key(*rid),
                            value: crate::codec::encode_guard(&derive_guard(def)),
                        });
                    }
                    None => {
                        ops.push(hipac_storage::StoreOp::Delete {
                            key: rule_key(*rid),
                        });
                        ops.push(hipac_storage::StoreOp::Delete {
                            key: guard_key(*rid),
                        });
                    }
                }
            }
            if !ops.is_empty() {
                d.commit(txn, &ops)?;
            }
        }
        let mut catalog = self.catalog.write();
        for (rid, _, new) in &changes {
            match new {
                Some(def) => {
                    // Rewire a modified rule's event mapping (the spec
                    // was validated at alter time).
                    let new_event = Self::effective_spec(def).and_then(|spec| {
                        let existing = self.spec_index.read().get(&spec).copied();
                        match existing {
                            Some(id) => Some(id),
                            None => match self.events.define_event(spec.clone()) {
                                Ok(id) => {
                                    self.spec_index.write().insert(spec, id);
                                    Some(id)
                                }
                                Err(_) => None,
                            },
                        }
                    });
                    let old_event = catalog.get(rid).map(|e| e.event);
                    if let (Some(new_event), Some(old_event)) = (new_event, old_event) {
                        if new_event != old_event {
                            self.link_rule_event(new_event, *rid);
                            if let Some(e) = catalog.get_mut(rid) {
                                e.event = new_event;
                            }
                            self.unlink_rule_event(old_event, *rid);
                        }
                    }
                    if let Some(e) = catalog.get_mut(rid) {
                        e.created_by = None;
                    }
                    if self.matching == Matching::Network {
                        if let Some(old_event) = old_event {
                            // Re-place per the committed definition
                            // (clears the rule's unstable mark).
                            let placed_event = new_event.unwrap_or(old_event);
                            self.network
                                .commit_change(old_event, placed_event, *rid, Some(def));
                        }
                    }
                }
                None => {
                    // Rule deletion committed: drop the mapping, and
                    // retire the (shared) event def once unreferenced.
                    if let Some(entry) = catalog.remove(rid) {
                        self.unlink_rule_event(entry.event, *rid);
                        if self.matching == Matching::Network {
                            self.network
                                .commit_change(entry.event, entry.event, *rid, None);
                        }
                    }
                }
            }
        }
        drop(catalog);
        // Everything this top created is now fully committed
        // (`created_by: None` above) — drop the attribution index.
        self.created_index.lock().remove(&txn);
        if self.matching == Matching::Network {
            // Marks owned by this top whose rules were NOT in the
            // change set (a child made the change, then aborted): the
            // committed placement is already right — just unmark.
            self.network.clear_top(txn);
        }
        Ok(())
    }

    fn on_abort(&self, txn: TxnId) -> Result<()> {
        self.rules.abort(txn);
        self.rule_names.abort(txn);
        Ok(())
    }
}

impl RuleManager {
    /// Wire a Rule Manager into the engine (in-memory rules). See
    /// [`RuleManager::with_durability`] for persistent rules.
    pub fn new(
        tm: Arc<TransactionManager>,
        store: Arc<ObjectStore>,
        events: Arc<EventRegistry>,
        workers: usize,
    ) -> Arc<RuleManager> {
        Self::with_durability(tm, store, events, workers, None)
            .expect("in-memory construction cannot fail")
    }

    /// Wire a Rule Manager into the engine. Registers itself with the
    /// Transaction Manager (resource + hook), the Object Manager
    /// (operation listener) and the Event Registry (signal sink). With
    /// a durable store, committed rules persist under the `r` key
    /// prefix and are reloaded here; external events referenced by
    /// persisted rules must already be defined in `events` (the facade
    /// replays them first).
    pub fn with_durability(
        tm: Arc<TransactionManager>,
        store: Arc<ObjectStore>,
        events: Arc<EventRegistry>,
        workers: usize,
        durable: Option<Arc<hipac_storage::DurableStore>>,
    ) -> Result<Arc<RuleManager>> {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_config(tm, store, events, workers, parallelism, durable)
    }

    /// [`RuleManager::with_durability`] with an explicit firing
    /// parallelism: the number of immediate/deferred sibling action
    /// subtransactions of one group that may execute concurrently
    /// (`1` = sequential, the pre-pool behavior). The matching mode
    /// comes from `HIPAC_MATCHING` (default: network); see
    /// [`RuleManager::with_matching`] for an explicit choice.
    pub fn with_config(
        tm: Arc<TransactionManager>,
        store: Arc<ObjectStore>,
        events: Arc<EventRegistry>,
        workers: usize,
        firing_parallelism: usize,
        durable: Option<Arc<hipac_storage::DurableStore>>,
    ) -> Result<Arc<RuleManager>> {
        Self::with_matching(
            tm,
            store,
            events,
            workers,
            firing_parallelism,
            Matching::from_env(),
            durable,
        )
    }

    /// [`RuleManager::with_config`] with an explicit candidate-matching
    /// mode: [`Matching::Network`] probes the discrimination network
    /// (O(matches) per signal); [`Matching::Naive`] walks the full
    /// event→rules list (the differential oracle).
    pub fn with_matching(
        tm: Arc<TransactionManager>,
        store: Arc<ObjectStore>,
        events: Arc<EventRegistry>,
        workers: usize,
        firing_parallelism: usize,
        matching: Matching,
        durable: Option<Arc<hipac_storage::DurableStore>>,
    ) -> Result<Arc<RuleManager>> {
        let tree = Arc::clone(tm.tree());
        let memo = (matching == Matching::Network)
            .then(|| Arc::new(MemoTable::new(4096)));
        if matching == Matching::Network {
            // The memo validates against committed-data version
            // stamps; the store only maintains them when asked.
            store.set_write_tracking(true);
        }
        let evaluator = match &memo {
            Some(m) => ConditionEvaluator::with_memo(Arc::clone(&store), Arc::clone(m)),
            None => ConditionEvaluator::new(Arc::clone(&store)),
        };
        let mgr = Arc::new(RuleManager {
            evaluator,
            matching,
            network: MatchNetwork::new(),
            memo,
            pool: WorkerPool::new(workers),
            firing: FiringPool::new(firing_parallelism),
            rules: VersionStore::new(Arc::clone(&tree)),
            rule_names: VersionStore::new(tree),
            ids: IdAllocator::new(1),
            catalog: RwLock::new(HashMap::new()),
            created_index: Mutex::new(HashMap::new()),
            event_map: RwLock::new(HashMap::new()),
            spec_index: RwLock::new(HashMap::new()),
            deferred: Mutex::new(HashMap::new()),
            internal_txns: Mutex::new(std::collections::HashSet::new()),
            handlers: RwLock::new(HashMap::new()),
            separate_errors: Mutex::new(Vec::new()),
            separate_retry_limit: std::sync::atomic::AtomicUsize::new(3),
            firing_gate: std::sync::atomic::AtomicBool::new(true),
            cascade_limit: 32,
            stats: RuleStats::default(),
            tracer: crate::trace::RuleTracer::new(4096),
            durable,
            self_weak: RwLock::new(Weak::new()),
            tm: Arc::clone(&tm),
            store: Arc::clone(&store),
            events: Arc::clone(&events),
        });
        *mgr.self_weak.write() = Arc::downgrade(&mgr);
        mgr.load_durable()?;
        tm.register_resource(Arc::clone(&mgr) as Arc<dyn ResourceManager>);
        tm.register_hook(Arc::new(RuleTxnHook {
            mgr: Arc::downgrade(&mgr),
        }));
        store.register_listener(Arc::new(DbEventBridge {
            mgr: Arc::downgrade(&mgr),
        }));
        events.register_sink(Arc::new(RuleSink {
            mgr: Arc::downgrade(&mgr),
        }));
        Ok(mgr)
    }

    /// Reload persisted rules into the committed state.
    fn load_durable(&self) -> Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        // Persisted guard specs (written by every mode — see
        // `on_commit_top`) spare re-deriving guards per rule; fall
        // back to derivation for records written before guards were
        // persisted.
        let mut guards: HashMap<RuleId, GuardSpec> = HashMap::new();
        if self.matching == Matching::Network {
            for (key, bytes) in d.scan_prefix(&[GUARD_KEY_PREFIX])? {
                if key.len() != 9 {
                    return Err(HipacError::Corruption("bad guard key length".into()));
                }
                let rid = RuleId(u64::from_be_bytes(key[1..9].try_into().unwrap()));
                guards.insert(rid, crate::codec::decode_guard(&bytes)?);
            }
        }
        for (key, bytes) in d.scan_prefix(&[RULE_KEY_PREFIX])? {
            if key.len() != 9 {
                return Err(HipacError::Corruption("bad rule key length".into()));
            }
            let rid = RuleId(u64::from_be_bytes(key[1..9].try_into().unwrap()));
            let def = crate::codec::decode_rule(&bytes)?;
            self.ids.bump_to(rid.raw());
            let spec = match &def.event {
                Some(spec) => spec.clone(),
                None => Self::derive_event(&def).ok_or(HipacError::NoDerivableEvent(rid))?,
            };
            let event = {
                let existing = self.spec_index.read().get(&spec).copied();
                match existing {
                    Some(id) => id,
                    None => {
                        let id = self.events.define_event(spec.clone())?;
                        self.spec_index.write().insert(spec, id);
                        id
                    }
                }
            };
            self.catalog.write().insert(
                rid,
                CatalogEntry {
                    event,
                    created_by: None,
                },
            );
            self.link_rule_event(event, rid);
            if self.matching == Matching::Network {
                let guard = guards
                    .remove(&rid)
                    .unwrap_or_else(|| derive_guard(&def));
                self.network.place_committed(event, rid, guard);
            }
            self.rule_names.put_committed(def.name.clone(), rid);
            self.rules.put_committed(rid, def);
        }
        Ok(())
    }

    /// The event registry (define/signal external events through it).
    pub fn events(&self) -> &Arc<EventRegistry> {
        &self.events
    }

    /// Register an application handler reachable from rule actions.
    pub fn register_handler(&self, name: &str, h: Arc<dyn ApplicationHandler>) {
        self.handlers.write().insert(name.to_owned(), h);
    }

    /// Remove an application handler. Rules addressing it afterwards
    /// fail with `NoApplicationHandler`. Returns whether it existed.
    pub fn unregister_handler(&self, name: &str) -> bool {
        self.handlers.write().remove(name).is_some()
    }

    /// Size of the deferred-firing table: `(transactions with queued
    /// firings, total queued firings)`.
    pub fn deferred_sizes(&self) -> (usize, usize) {
        let deferred = self.deferred.lock();
        let entries = deferred.values().map(Vec::len).sum();
        (deferred.len(), entries)
    }

    /// Separate-mode firings submitted but not yet finished.
    pub fn pool_outstanding(&self) -> usize {
        self.pool.outstanding()
    }

    /// Configured sibling-firing parallelism (1 = sequential).
    pub fn firing_parallelism(&self) -> usize {
        self.firing.parallelism()
    }

    /// Sibling action jobs enqueued on the firing pool and not yet
    /// claimed by any thread.
    pub fn firing_queue_depth(&self) -> usize {
        self.firing.queue_depth()
    }

    /// Errors buffered from separate-mode firings (without draining;
    /// see [`RuleManager::take_separate_errors`]).
    pub fn separate_error_count(&self) -> usize {
        self.separate_errors.lock().len()
    }

    /// Set the retry budget for separate-mode firings: how many times a
    /// firing aborted by a transaction-fatal error (deadlock, lock
    /// timeout, deadline) is re-run before being dead-lettered. `0`
    /// disables retries (the pre-retry behavior).
    pub fn set_separate_retry_limit(&self, limit: usize) {
        self.separate_retry_limit.store(limit, Ordering::Relaxed);
    }

    /// Current separate-firing retry budget.
    pub fn separate_retry_limit(&self) -> usize {
        self.separate_retry_limit.load(Ordering::Relaxed)
    }

    /// Wait until all separate-mode firings submitted so far have
    /// finished.
    pub fn quiesce(&self) {
        self.pool.quiesce();
    }

    /// Open or close the rule firing gate. While closed, signals are
    /// counted but trigger nothing — the stance of a replica applying
    /// a replicated stream (the primary already fired these rules).
    /// Promotion re-opens the gate before the node serves writes.
    pub fn set_firing_gate(&self, open: bool) {
        self.firing_gate.store(open, Ordering::Relaxed);
    }

    /// Whether automatic rule firing is currently enabled.
    pub fn firing_gate_open(&self) -> bool {
        self.firing_gate.load(Ordering::Relaxed)
    }

    /// Errors from separate-mode firings since the last call (separate
    /// transactions cannot report errors to the triggering transaction;
    /// the paper leaves their disposition open — we collect them).
    pub fn take_separate_errors(&self) -> Vec<(RuleId, HipacError)> {
        std::mem::take(&mut self.separate_errors.lock())
    }

    fn me(&self) -> Arc<RuleManager> {
        self.self_weak
            .read()
            .upgrade()
            .expect("RuleManager outlives its uses")
    }

    // ------------------------------------------------------------------
    // Rule operations (§2.2)
    // ------------------------------------------------------------------

    /// Create a rule (transactional; takes write locks on the rule and
    /// its name). If the rule has no event, one is derived from the
    /// condition (§2.1).
    pub fn create_rule(&self, txn: TxnId, def: RuleDef) -> Result<RuleId> {
        self.tm.check_operable(txn)?;
        self.store.locks().acquire(
            txn,
            LockKey::RuleName(def.name.clone()),
            LockMode::Write,
        )?;
        if self.rule_names.get(txn, &def.name).is_some() {
            return Err(HipacError::DuplicateRule(def.name));
        }
        let rid = RuleId(self.ids.alloc());
        self.store
            .locks()
            .acquire(txn, LockKey::Rule(rid.raw()), LockMode::Write)?;
        let spec = match &def.event {
            Some(spec) => spec.clone(),
            None => Self::derive_event(&def).ok_or(HipacError::NoDerivableEvent(rid))?,
        };
        // Reuse the event definition of a structurally identical spec.
        let event = {
            let existing = self.spec_index.read().get(&spec).copied();
            match existing {
                Some(id) => id,
                None => {
                    let id = self.events.define_event(spec.clone())?;
                    self.spec_index.write().insert(spec, id);
                    id
                }
            }
        };
        self.catalog.write().insert(
            rid,
            CatalogEntry {
                event,
                created_by: Some(txn),
            },
        );
        self.created_index.lock().entry(txn).or_default().push(rid);
        self.link_rule_event(event, rid);
        if self.matching == Matching::Network {
            // Wired eagerly so the creating transaction's own signals
            // see the rule; held unstable (always a candidate) until
            // the top-level commit places it under its guard.
            self.network.link_created(event, rid, txn);
        }
        self.rule_names.put(txn, def.name.clone(), rid);
        self.rules.put(txn, rid, def);
        Ok(rid)
    }

    /// §2.1: "the event specification can also be omitted … HiPAC
    /// derives the event specification from the condition": subscribe
    /// to every operation that can change the result of any condition
    /// query.
    fn derive_event(def: &RuleDef) -> Option<EventSpec> {
        let mut spec: Option<EventSpec> = None;
        for q in &def.condition {
            for kind in [DbEventKind::Insert, DbEventKind::Update, DbEventKind::Delete] {
                let leaf = EventSpec::db(kind, Some(&q.class));
                spec = Some(match spec {
                    None => leaf,
                    Some(s) => s.or(leaf),
                });
            }
        }
        spec
    }

    /// Resolve a rule name as seen by `txn`.
    pub fn rule_id(&self, txn: TxnId, name: &str) -> Result<RuleId> {
        self.rule_names
            .get(txn, &name.to_owned())
            .ok_or_else(|| HipacError::UnknownRule(name.to_owned()))
    }

    /// Modify a rule in place (§2.2 lists *modification* among the
    /// operations on rule objects). Takes the rule's write lock; the
    /// rule keeps its id and name. A changed (or re-derived) event
    /// specification takes effect when the modification commits at top
    /// level — the same boundary at which deletion retires event
    /// definitions — so an aborted modification leaves the old event
    /// wiring untouched.
    pub fn alter_rule(&self, txn: TxnId, name: &str, mut def: RuleDef) -> Result<RuleId> {
        self.tm.check_operable(txn)?;
        let rid = self.rule_id(txn, name)?;
        self.store
            .locks()
            .acquire(txn, LockKey::Rule(rid.raw()), LockMode::Write)?;
        def.name = name.to_owned();
        // Validate eagerly what commit-time rewiring will need: the
        // event must be specifiable and external references defined.
        let spec = match &def.event {
            Some(spec) => spec.clone(),
            None => Self::derive_event(&def).ok_or(HipacError::NoDerivableEvent(rid))?,
        };
        for ext in spec.external_refs() {
            self.events.external_id(&ext)?;
        }
        self.rules.put(txn, rid, def);
        self.note_rule_change(txn, rid);
        Ok(rid)
    }

    /// Mark a rule whose definition changed uncommitted as *unstable*
    /// in the discrimination network: it stays a candidate for every
    /// probe of its event until the owning top-level transaction
    /// commits (re-placing it under the new guard) or aborts (clearing
    /// the mark). The rule's write lock guarantees a single top-level
    /// owner at a time.
    fn note_rule_change(&self, txn: TxnId, rid: RuleId) {
        if self.matching != Matching::Network {
            return;
        }
        let event = match self.catalog.read().get(&rid) {
            Some(entry) => entry.event,
            None => return,
        };
        let top = self.tm.tree().top_ancestor(txn);
        self.network.mark_pending(event, rid, top);
    }

    /// Effective event spec of a rule definition (declared or derived).
    fn effective_spec(def: &RuleDef) -> Option<EventSpec> {
        match &def.event {
            Some(spec) => Some(spec.clone()),
            None => Self::derive_event(def),
        }
    }

    /// Delete a rule (write lock; the event definition is retired when
    /// the deletion commits at top level).
    pub fn drop_rule(&self, txn: TxnId, name: &str) -> Result<()> {
        self.tm.check_operable(txn)?;
        let rid = self.rule_id(txn, name)?;
        self.store
            .locks()
            .acquire(txn, LockKey::Rule(rid.raw()), LockMode::Write)?;
        self.rules.delete(txn, rid);
        self.rule_names.delete(txn, name.to_owned());
        self.note_rule_change(txn, rid);
        Ok(())
    }

    /// Disable automatic firing (§2.2 *disable*; write lock — "we think
    /// of enable and disable as modifying a rule").
    pub fn disable_rule(&self, txn: TxnId, name: &str) -> Result<()> {
        self.set_enabled(txn, name, false)
    }

    /// Re-enable automatic firing (§2.2 *enable*).
    pub fn enable_rule(&self, txn: TxnId, name: &str) -> Result<()> {
        self.set_enabled(txn, name, true)
    }

    fn set_enabled(&self, txn: TxnId, name: &str, enabled: bool) -> Result<()> {
        self.tm.check_operable(txn)?;
        let rid = self.rule_id(txn, name)?;
        self.store
            .locks()
            .acquire(txn, LockKey::Rule(rid.raw()), LockMode::Write)?;
        let mut def = self
            .rules
            .get(txn, &rid)
            .ok_or_else(|| HipacError::UnknownRule(name.to_owned()))?;
        def.enabled = enabled;
        self.rules.put(txn, rid, def);
        self.note_rule_change(txn, rid);
        Ok(())
    }

    /// Manually fire a rule (§2.2 *fire*; read lock), with explicit
    /// parameter bindings, in a subtransaction of `txn`.
    pub fn fire_rule(
        &self,
        txn: TxnId,
        name: &str,
        params: HashMap<String, Value>,
    ) -> Result<()> {
        self.tm.check_operable(txn)?;
        let rid = self.rule_id(txn, name)?;
        let def = self
            .rules
            .get(txn, &rid)
            .ok_or_else(|| HipacError::UnknownRule(name.to_owned()))?;
        let signal = EventSignal {
            time: self.events.clock().now(),
            txn: Some(txn),
            params,
            db: None,
        };
        // Manual fire ignores `enabled` (the paper distinguishes
        // automatic firing, which disable suppresses, from the fire
        // operation).
        self.fire_group(txn, vec![(rid, def, signal)])
    }

    // ------------------------------------------------------------------
    // Signal processing (§6.2)
    // ------------------------------------------------------------------

    /// The Rule Manager's single interface operation: *signal event*.
    fn signal_event(&self, event: EventId, signal: &EventSignal) -> Result<()> {
        self.stats.signals_processed.fetch_add(1, Ordering::Relaxed);
        if !self.firing_gate.load(Ordering::Relaxed) {
            return Ok(());
        }
        let probed;
        let listed;
        let rule_ids: &[RuleId] = match self.matching {
            // O(matches) candidates from the discrimination network;
            // the per-rule visibility/enabled/guard-residual checks
            // below are unchanged, so extra candidates are harmless.
            Matching::Network => match self.network.probe(event, &self.store, signal) {
                Some(ids) => {
                    probed = ids;
                    &probed
                }
                None => return Ok(()), // event defined but no rules attached
            },
            Matching::Naive => {
                let arc = {
                    let map = self.event_map.read();
                    match map.get(&event) {
                        // Clone the Arc, not the list: dispatch cost
                        // under the map lock stays O(1) regardless of
                        // how many rules the event has.
                        Some(ids) => Arc::clone(ids),
                        None => return Ok(()), // event defined but no rules attached
                    }
                };
                listed = arc;
                &listed
            }
        };
        let mut immediate = Vec::new();
        for &rid in rule_ids {
            // Rules are database objects: visibility follows the
            // triggering transaction's view; committed view otherwise.
            let def = match signal.txn {
                Some(t) => self.rules.get(t, &rid),
                None => self.rules.get_committed(&rid),
            };
            let Some(def) = def else { continue };
            if !def.enabled {
                continue;
            }
            self.stats.rules_triggered.fetch_add(1, Ordering::Relaxed);
            match (def.ec_coupling, signal.txn) {
                (CouplingMode::Immediate, Some(t)) => {
                    immediate.push((t, rid, def));
                }
                (CouplingMode::Deferred, Some(t)) => {
                    self.deferred
                        .lock()
                        .entry(t)
                        .or_default()
                        .push((rid, signal.clone()));
                }
                // No triggering transaction (temporal/external events
                // outside any transaction): every mode degrades to a
                // separate top-level firing.
                _ => self.submit_separate(rid, signal.clone()),
            }
        }
        if !immediate.is_empty() {
            // All immediate firings share the triggering transaction.
            let parent = immediate[0].0;
            let group: Vec<(RuleId, RuleDef, EventSignal)> = immediate
                .into_iter()
                .map(|(_, rid, def)| (rid, def, signal.clone()))
                .collect();
            self.fire_group(parent, group)?;
        }
        Ok(())
    }

    /// Fire a group of rules as subtransactions of `parent`: one
    /// condition-evaluation subtransaction for the batch (§5.5), then
    /// one action subtransaction per satisfied rule.
    fn fire_group(
        &self,
        parent: TxnId,
        group: Vec<(RuleId, RuleDef, EventSignal)>,
    ) -> Result<()> {
        if group.is_empty() {
            return Ok(());
        }
        let depth = self.tm.tree().depth(parent).unwrap_or(0);
        if depth >= self.cascade_limit {
            return Err(HipacError::CascadeLimit {
                rule: group[0].0,
                depth,
            });
        }
        let tracing = self.tracer.is_enabled();
        let cond_start = tracing.then(std::time::Instant::now);
        // Condition evaluation subtransaction. Rules triggered by the
        // same signal are evaluated as ONE batch so the condition graph
        // can share structurally identical queries across rules (§5.5).
        let cond_txn = self.tm.begin_child(parent)?;
        let outcomes = (|| -> Result<Vec<crate::condition::ConditionOutcome>> {
            for (rid, _, _) in &group {
                // Firing requires a read lock on the rule (§2.2).
                self.store
                    .locks()
                    .acquire(cond_txn, LockKey::Rule(rid.raw()), LockMode::Read)?;
            }
            let mut all: Vec<Option<crate::condition::ConditionOutcome>> =
                (0..group.len()).map(|_| None).collect();
            let mut done: Vec<bool> = vec![false; group.len()];
            for i in 0..group.len() {
                if done[i] {
                    continue;
                }
                // Collect every not-yet-evaluated firing with the same
                // signal (deferred batches can mix signals; immediate
                // groups share one).
                let signal = &group[i].2;
                let mut indices = Vec::new();
                for (j, (_, _, s)) in group.iter().enumerate() {
                    if !done[j] && s == signal {
                        indices.push(j);
                    }
                }
                let conds: Vec<&[hipac_object::query::Query]> = indices
                    .iter()
                    .map(|&j| group[j].1.condition.as_slice())
                    .collect();
                let (outs, stats) =
                    self.evaluator.evaluate_batch(cond_txn, &conds, signal)?;
                self.stats.absorb(stats);
                for (&j, out) in indices.iter().zip(outs) {
                    all[j] = Some(out);
                    done[j] = true;
                }
            }
            Ok(all
                .into_iter()
                .map(|o| o.expect("every firing evaluated"))
                .collect())
        })();
        let outcomes = match outcomes {
            Ok(o) => {
                self.tm.commit(cond_txn)?;
                o
            }
            Err(e) => {
                let _ = self.tm.abort(cond_txn);
                return Err(e);
            }
        };
        // Ceiling to a whole microsecond so even a sub-µs condition
        // phase is distinguishable from "not measured".
        let cond_us = cond_start
            .map(|s| (s.elapsed().as_nanos() as u64).div_ceil(1000))
            .unwrap_or(0);
        self.dispatch_actions(parent, depth, group, outcomes, cond_us, tracing)
    }

    /// Run the action phase of a fired group: satisfied rules with a
    /// synchronous C-A coupling (immediate/deferred) execute as sibling
    /// subtransactions of `parent` — concurrently, on the firing pool,
    /// when more than one is runnable and parallelism allows — while
    /// separate-coupled actions go to the detached worker pool.
    ///
    /// Error semantics are first-error-wins and deterministic: the
    /// first failing sibling raises a shared cancel flag so siblings
    /// that have not begun never do, and of the errors that did occur
    /// the one with the lowest group index is reported (the same error
    /// the sequential path would surface for a commuting group).
    /// Already-running siblings finish normally; their effects are
    /// discarded when the caller aborts `parent` in response.
    fn dispatch_actions(
        &self,
        parent: TxnId,
        depth: usize,
        group: Vec<(RuleId, RuleDef, EventSignal)>,
        outcomes: Vec<crate::condition::ConditionOutcome>,
        cond_us: u64,
        tracing: bool,
    ) -> Result<()> {
        let mut sync: Vec<(usize, RuleId, RuleDef, EventSignal, Vec<QueryResult>)> =
            Vec::new();
        for (idx, ((rid, def, signal), outcome)) in
            group.into_iter().zip(outcomes).enumerate()
        {
            if !outcome.satisfied {
                if tracing {
                    self.tracer.record(crate::trace::FiringTrace {
                        rule: rid,
                        rule_name: def.name.clone(),
                        event: self.catalog.read().get(&rid).map(|e| e.event),
                        txn: Some(parent),
                        ec_coupling: def.ec_coupling,
                        satisfied: false,
                        action_executed: false,
                        cascade_depth: depth,
                        event_time: signal.time,
                        duration_us: cond_us,
                        retries: 0,
                        dead_letter: false,
                    });
                }
                continue;
            }
            self.stats
                .conditions_satisfied
                .fetch_add(1, Ordering::Relaxed);
            match def.ca_coupling {
                // Both run before the parent resumes; "deferred"
                // relative to the (already committed) condition
                // transaction coincides with immediate here.
                CouplingMode::Immediate | CouplingMode::Deferred => {
                    sync.push((idx, rid, def, signal, outcome.rows));
                }
                CouplingMode::Separate => {
                    if tracing {
                        self.tracer.record(crate::trace::FiringTrace {
                            rule: rid,
                            rule_name: def.name.clone(),
                            event: self.catalog.read().get(&rid).map(|e| e.event),
                            txn: Some(parent),
                            ec_coupling: def.ec_coupling,
                            satisfied: true,
                            action_executed: true, // scheduled on the pool
                            cascade_depth: depth,
                            event_time: signal.time,
                            duration_us: cond_us,
                            retries: 0,
                            dead_letter: false,
                        });
                    }
                    self.submit_separate_action(rid, def, signal, outcome.rows);
                }
            }
        }
        if sync.len() <= 1 || self.firing.parallelism() <= 1 {
            for (_, rid, def, signal, rows) in sync {
                self.run_one_action(parent, depth, rid, def, signal, rows, cond_us, tracing)?;
            }
            return Ok(());
        }
        let mgr = self.me();
        let cancel = Arc::new(AtomicBool::new(false));
        let errors: Arc<Mutex<Vec<(usize, HipacError)>>> =
            Arc::new(Mutex::new(Vec::new()));
        let count = sync.len() as u64;
        let jobs: Vec<crate::pool::Job> = sync
            .into_iter()
            .map(|(idx, rid, def, signal, rows)| {
                let mgr = Arc::clone(&mgr);
                let cancel = Arc::clone(&cancel);
                let errors = Arc::clone(&errors);
                Box::new(move || {
                    if cancel.load(Ordering::SeqCst) {
                        return; // a sibling already failed; never begin
                    }
                    if let Err(e) = mgr.run_one_action(
                        parent, depth, rid, def, signal, rows, cond_us, tracing,
                    ) {
                        cancel.store(true, Ordering::SeqCst);
                        errors.lock().push((idx, e));
                    }
                }) as crate::pool::Job
            })
            .collect();
        if self.firing.run_batch(jobs) {
            self.stats
                .firings_parallel
                .fetch_add(count, Ordering::Relaxed);
        }
        let errs = std::mem::take(&mut *errors.lock());
        match errs.into_iter().min_by_key(|(idx, _)| *idx) {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// One satisfied rule's action, in its own subtransaction of
    /// `parent`. Safe to call from firing-pool workers: it touches only
    /// thread-safe state (transaction manager, stores, atomics, the
    /// tracer ring).
    #[allow(clippy::too_many_arguments)]
    fn run_one_action(
        &self,
        parent: TxnId,
        depth: usize,
        rid: RuleId,
        def: RuleDef,
        signal: EventSignal,
        rows: Vec<QueryResult>,
        cond_us: u64,
        tracing: bool,
    ) -> Result<()> {
        let action_start = tracing.then(std::time::Instant::now);
        let act_txn = self.tm.begin_child(parent)?;
        match self.execute_action(act_txn, &def.action, &signal, &rows) {
            Ok(()) => self.tm.commit(act_txn)?,
            Err(e) => {
                let _ = self.tm.abort(act_txn);
                return Err(e);
            }
        }
        if tracing {
            self.tracer.record(crate::trace::FiringTrace {
                rule: rid,
                rule_name: def.name.clone(),
                event: self.catalog.read().get(&rid).map(|e| e.event),
                txn: Some(parent),
                ec_coupling: def.ec_coupling,
                satisfied: true,
                action_executed: true,
                cascade_depth: depth,
                event_time: signal.time,
                duration_us: cond_us
                    + action_start
                        .map(|s| s.elapsed().as_micros() as u64)
                        .unwrap_or(0),
                retries: 0,
                dead_letter: false,
            });
        }
        Ok(())
    }

    /// §6.2: separate firings run in their own top-level transactions
    /// on the worker pool; failures are collected, not propagated to
    /// the trigger.
    fn submit_separate(&self, rid: RuleId, signal: EventSignal) {
        let time = signal.time;
        let deadline = signal.txn.and_then(|t| self.tm.tree().effective_deadline(t));
        self.submit_separate_job(rid, time, deadline, move |mgr, txn| {
            let Some(def) = mgr.rules.get(txn, &rid) else {
                return Ok(()); // deleted meanwhile
            };
            if !def.enabled {
                return Ok(());
            }
            let sig = EventSignal {
                txn: Some(txn),
                ..signal.clone()
            };
            mgr.fire_group(txn, vec![(rid, def, sig)])
        });
    }

    /// C-A separate: the condition was satisfied in the triggering
    /// context; the action runs in its own top-level transaction.
    fn submit_separate_action(
        &self,
        rid: RuleId,
        def: RuleDef,
        signal: EventSignal,
        rows: Vec<QueryResult>,
    ) {
        let time = signal.time;
        let deadline = signal.txn.and_then(|t| self.tm.tree().effective_deadline(t));
        self.submit_separate_job(rid, time, deadline, move |mgr, txn| {
            let sig = EventSignal {
                txn: Some(txn),
                ..signal.clone()
            };
            mgr.execute_action(txn, &def.action, &sig, &rows)
        });
    }

    /// Run a separate firing body on the worker pool with bounded
    /// retry: an attempt aborted by a transaction-fatal error
    /// (deadlock victim, lock timeout, deadline) is re-run — each
    /// attempt in a fresh top-level transaction, after an exponential
    /// backoff with deterministic per-rule jitter — until it commits
    /// or the retry budget is exhausted. Non-retryable errors and
    /// exhausted budgets dead-letter the firing: a trace entry, a
    /// stat, and an entry in the separate-error buffer.
    ///
    /// The triggering request's `deadline` (if any) propagates into
    /// every attempt: each fresh top-level transaction inherits it via
    /// [`hipac_txn::TxnTree::set_deadline`], an attempt whose deadline
    /// already passed aborts definitely instead of running, and the
    /// retry loop stops backing off once the deadline is behind us —
    /// a separate firing must not outlive the request that asked for
    /// it by more than one attempt.
    fn submit_separate_job<F>(
        &self,
        rid: RuleId,
        event_time: hipac_common::Timestamp,
        deadline: Option<std::time::Instant>,
        body: F,
    ) where
        F: Fn(&RuleManager, TxnId) -> Result<()> + Send + 'static,
    {
        let mgr = self.me();
        self.pool.submit(move || {
            let limit = mgr.separate_retry_limit.load(Ordering::Relaxed) as u64;
            let mut attempt: u64 = 0;
            loop {
                let result = if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                    // Definite abort: the work never starts, so there is
                    // nothing ambiguous to recover later.
                    Err(HipacError::DeadlineExceeded(TxnId(0)))
                } else {
                    mgr.tm.run_top(|txn| {
                        mgr.internal_txns.lock().insert(txn);
                        if deadline.is_some() {
                            mgr.tm.tree().set_deadline(txn, deadline)?;
                        }
                        body(&mgr, txn)
                    })
                };
                match result {
                    Ok(()) => return,
                    Err(e)
                        if e.is_txn_fatal()
                            && attempt < limit
                            && !deadline.is_some_and(|d| std::time::Instant::now() >= d) =>
                    {
                        attempt += 1;
                        mgr.stats.separate_retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(separate_backoff(rid, attempt));
                    }
                    Err(e) => {
                        mgr.separate_dead_letter(rid, attempt, event_time, e);
                        return;
                    }
                }
            }
        });
    }

    /// Terminal failure of a separate firing: account for it and keep a
    /// dead-letter record (the separate transaction has no caller to
    /// report to — the paper leaves disposition open, we keep the
    /// evidence).
    fn separate_dead_letter(
        &self,
        rid: RuleId,
        retries: u64,
        event_time: hipac_common::Timestamp,
        err: HipacError,
    ) {
        self.stats
            .separate_dead_letters
            .fetch_add(1, Ordering::Relaxed);
        let name = self
            .rules
            .get_committed(&rid)
            .map(|d| d.name)
            .unwrap_or_default();
        self.tracer.record(crate::trace::FiringTrace {
            rule: rid,
            rule_name: name,
            event: self.catalog.read().get(&rid).map(|e| e.event),
            txn: None,
            ec_coupling: CouplingMode::Separate,
            satisfied: true,
            action_executed: false,
            cascade_depth: 0,
            event_time,
            duration_us: 0,
            retries,
            dead_letter: true,
        });
        self.separate_errors.lock().push((rid, err));
    }

    // ------------------------------------------------------------------
    // Deferred processing (§6.3)
    // ------------------------------------------------------------------

    /// Run the deferred firings accumulated for `txn` (called by the
    /// Transaction Manager during commit processing, while `txn` is in
    /// the `Committing` state). Loops until the set is empty so that
    /// deferred firings scheduled by deferred firings (in `txn` itself)
    /// also run in this commit.
    fn process_deferred(&self, txn: TxnId) -> Result<()> {
        loop {
            let batch = self.deferred.lock().remove(&txn).unwrap_or_default();
            if batch.is_empty() {
                return Ok(());
            }
            let mut group = Vec::with_capacity(batch.len());
            for (rid, signal) in batch {
                // Re-check visibility and enablement at commit time.
                let Some(def) = self.rules.get(txn, &rid) else {
                    continue;
                };
                if !def.enabled {
                    continue;
                }
                group.push((rid, def, signal));
            }
            self.fire_group(txn, group)?;
        }
    }

    // ------------------------------------------------------------------
    // Action execution
    // ------------------------------------------------------------------

    fn execute_action(
        &self,
        txn: TxnId,
        action: &Action,
        signal: &EventSignal,
        cond_rows: &[QueryResult],
    ) -> Result<()> {
        self.stats.actions_executed.fetch_add(1, Ordering::Relaxed);
        self.exec_ops(txn, &action.ops, signal, cond_rows, None)
    }

    fn exec_ops(
        &self,
        txn: TxnId,
        ops: &[ActionOp],
        signal: &EventSignal,
        cond_rows: &[QueryResult],
        row_ctx: Option<&hipac_object::query::Row>,
    ) -> Result<()> {
        for op in ops {
            match op {
                ActionOp::Db(db) => self.exec_db_action(txn, db, signal, row_ctx)?,
                ActionOp::AppRequest {
                    handler,
                    request,
                    args,
                } => {
                    let handler_arc = self
                        .handlers
                        .read()
                        .get(handler)
                        .cloned()
                        .ok_or_else(|| HipacError::NoApplicationHandler(handler.clone()))?;
                    let bound = self.eval_args(txn, args, signal, row_ctx)?;
                    handler_arc.handle(request, &bound)?;
                }
                ActionOp::SignalEvent { name, args } => {
                    let bound = self.eval_args(txn, args, signal, row_ctx)?;
                    self.events.signal_external(name, bound, Some(txn))?;
                }
                ActionOp::ForEachRow { query_index, ops } => {
                    let rows = cond_rows.get(*query_index).ok_or_else(|| {
                        HipacError::EvalError(format!(
                            "action references condition query {query_index}, \
                             but only {} result sets are available",
                            cond_rows.len()
                        ))
                    })?;
                    for row in rows {
                        self.exec_ops(txn, ops, signal, cond_rows, Some(row))?;
                    }
                }
                ActionOp::AbortWith { message } => {
                    return Err(HipacError::ConstraintViolation(message.clone()));
                }
            }
        }
        Ok(())
    }

    /// Evaluate an action expression in the firing context: event
    /// parameters, the event's old/new images, and (inside
    /// `ForEachRow`) the current row.
    fn eval_expr(
        &self,
        txn: TxnId,
        expr: &hipac_object::expr::Expr,
        signal: &EventSignal,
        row_ctx: Option<&hipac_object::query::Row>,
    ) -> Result<Value> {
        let schema = self.store.schema(txn);
        let row_class = row_ctx.map(|r| r.class);
        let delta_class = signal.db.as_ref().map(|d| d.class);
        let resolved = expr.resolve_split(
            &|name| match row_class {
                Some(c) => schema.resolve_attr(c, name).map(|(s, _)| s),
                None => Err(HipacError::EvalError(format!(
                    "attribute {name} referenced outside a row context"
                ))),
            },
            &|name| match delta_class {
                Some(c) => schema.resolve_attr(c, name).map(|(s, _)| s),
                None => Err(HipacError::EvalError(format!(
                    "old/new.{name} referenced but the event carries no delta"
                ))),
            },
        )?;
        let ctx = Bindings {
            row: row_ctx.map(|r| r.values.as_slice()),
            old: signal.db.as_ref().and_then(|d| d.old.as_deref()),
            new: signal.db.as_ref().and_then(|d| d.new.as_deref()),
            params: Some(&signal.params),
        };
        resolved.eval(&ctx)
    }

    fn eval_args(
        &self,
        txn: TxnId,
        args: &[(String, hipac_object::expr::Expr)],
        signal: &EventSignal,
        row_ctx: Option<&hipac_object::query::Row>,
    ) -> Result<HashMap<String, Value>> {
        let mut out = HashMap::with_capacity(args.len());
        for (name, expr) in args {
            out.insert(name.clone(), self.eval_expr(txn, expr, signal, row_ctx)?);
        }
        Ok(out)
    }

    fn exec_db_action(
        &self,
        txn: TxnId,
        db: &DbAction,
        signal: &EventSignal,
        row_ctx: Option<&hipac_object::query::Row>,
    ) -> Result<()> {
        match db {
            DbAction::Insert { class, values } => {
                let vals: Vec<Value> = values
                    .iter()
                    .map(|e| self.eval_expr(txn, e, signal, row_ctx))
                    .collect::<Result<_>>()?;
                self.store.insert(txn, class, vals)?;
                Ok(())
            }
            DbAction::UpdateWhere { query, assignments } => {
                let query = self.evaluator.fold_delta(txn, query, signal)?;
                let rows = self.store.query(txn, &query, Some(&signal.params))?;
                for row in rows {
                    let mut assigned: Vec<(&str, Value)> =
                        Vec::with_capacity(assignments.len());
                    for (attr, expr) in assignments {
                        // Assignments see the matched row's attributes.
                        let v = self.eval_expr(txn, expr, signal, Some(&row))?;
                        assigned.push((attr.as_str(), v));
                    }
                    self.store.update(txn, row.oid, &assigned)?;
                }
                Ok(())
            }
            DbAction::DeleteWhere { query } => {
                let query = self.evaluator.fold_delta(txn, query, signal)?;
                let rows = self.store.query(txn, &query, Some(&signal.params))?;
                for row in rows {
                    self.store.delete(txn, row.oid)?;
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Abort cleanup
    // ------------------------------------------------------------------

    /// Retract catalog entries created by `txn` (its creation never
    /// committed).
    fn retract_created_by(&self, txn: TxnId) {
        let dead = self.created_index.lock().remove(&txn).unwrap_or_default();
        let mut catalog = self.catalog.write();
        for rid in dead {
            // Only entries still attributed to this transaction: a
            // child commit may have moved attribution to the parent,
            // in which case the index entry moved with it.
            if catalog.get(&rid).is_some_and(|e| e.created_by == Some(txn)) {
                if let Some(entry) = catalog.remove(&rid) {
                    self.unlink_rule_event(entry.event, rid);
                }
            }
        }
        drop(catalog);
        if self.matching == Matching::Network {
            self.network.retract_created(txn);
        }
    }

    /// Add `rid` to the event→rules mapping, keeping the list sorted by
    /// rule id (firing order is rid-ascending in both matching modes).
    fn link_rule_event(&self, event: EventId, rid: RuleId) {
        let mut map = self.event_map.write();
        let rids = map.entry(event).or_default();
        let list = Arc::make_mut(rids);
        if let Err(pos) = list.binary_search(&rid) {
            list.insert(pos, rid);
        }
    }

    /// Remove `rid` from the event→rules mapping; when the event def is
    /// no longer referenced by any rule, delete it and its spec-index
    /// entry.
    fn unlink_rule_event(&self, event: EventId, rid: RuleId) {
        let mut map = self.event_map.write();
        if let Some(rids) = map.get_mut(&event) {
            Arc::make_mut(rids).retain(|r| *r != rid);
            if rids.is_empty() {
                map.remove(&event);
                let _ = self.events.delete_event(event);
                self.spec_index.write().retain(|_, id| *id != event);
            }
        }
    }

    /// Number of rules visible to `txn` (diagnostics).
    pub fn rule_count(&self, txn: TxnId) -> usize {
        self.rules.len_visible(txn)
    }

    /// The candidate-matching mode fixed at construction.
    pub fn matching(&self) -> Matching {
        self.matching
    }

    /// Shared handle to an event's rule list. Repeated calls return
    /// the *same* allocation (`Arc::ptr_eq`) until the list changes —
    /// the dispatch path clones this handle, never the list, so signal
    /// cost under the map lock is independent of rule count.
    pub fn candidate_handle(&self, event: EventId) -> Option<Arc<Vec<RuleId>>> {
        self.event_map.read().get(&event).map(Arc::clone)
    }

    /// The event a rule is wired to.
    pub fn rule_event(&self, txn: TxnId, name: &str) -> Result<EventId> {
        let rid = self.rule_id(txn, name)?;
        self.catalog
            .read()
            .get(&rid)
            .map(|e| e.event)
            .ok_or_else(|| HipacError::UnknownRule(name.to_owned()))
    }

    /// Live discrimination-network node count (0 in naive mode).
    pub fn match_index_nodes(&self) -> u64 {
        self.network.stats().index_nodes.load(Ordering::Relaxed)
    }

    /// Signals resolved through the discrimination network.
    pub fn match_probes(&self) -> u64 {
        self.network.stats().probes.load(Ordering::Relaxed)
    }

    /// Rules excluded from candidate sets across all probes.
    pub fn match_pruned(&self) -> u64 {
        self.network.stats().candidates_pruned.load(Ordering::Relaxed)
    }

    /// Memoized partial-match hits (0 in naive mode).
    pub fn memo_hits(&self) -> u64 {
        self.memo
            .as_ref()
            .map_or(0, |m| m.stats().hits.load(Ordering::Relaxed))
    }

    /// Memo entries invalidated (stale stamp or evicted).
    pub fn memo_invalidations(&self) -> u64 {
        self.memo
            .as_ref()
            .map_or(0, |m| m.stats().invalidations.load(Ordering::Relaxed))
    }

    /// Static analysis of a rule (§7 tooling): its effective event,
    /// how each condition query will be evaluated, and its couplings.
    pub fn explain_rule(&self, txn: TxnId, name: &str) -> Result<crate::trace::RuleExplanation> {
        let rid = self.rule_id(txn, name)?;
        let def = self
            .rules
            .get(txn, &rid)
            .ok_or_else(|| HipacError::UnknownRule(name.to_owned()))?;
        let (event, event_derived) = match &def.event {
            Some(spec) => (spec.clone(), false),
            None => (
                Self::derive_event(&def).ok_or(HipacError::NoDerivableEvent(rid))?,
                true,
            ),
        };
        let schema = self.store.schema(txn);
        let mut condition_strategies = Vec::with_capacity(def.condition.len());
        for q in &def.condition {
            let strategy = if ConditionEvaluator::delta_answerable_shape(q) {
                crate::trace::QueryStrategy::Delta
            } else {
                match self.store.plan(&schema, q)? {
                    hipac_object::query::Plan::IndexEq { attr } => {
                        crate::trace::QueryStrategy::IndexEq { attr }
                    }
                    hipac_object::query::Plan::Scan => crate::trace::QueryStrategy::Scan,
                }
            };
            condition_strategies.push(strategy);
        }
        Ok(crate::trace::RuleExplanation {
            rule: rid,
            name: def.name.clone(),
            enabled: def.enabled,
            event,
            event_derived,
            condition_strategies,
            ec_coupling: def.ec_coupling,
            ca_coupling: def.ca_coupling,
            action_ops: def.action.ops.len(),
        })
    }
}

/// Exponential backoff with deterministic per-(rule, attempt) jitter
/// for separate-firing retries. Deterministic so torture runs replay
/// identically from their seeds; jittered so two victims of the same
/// deadlock do not re-collide in lockstep.
fn separate_backoff(rid: RuleId, attempt: u64) -> std::time::Duration {
    const BASE_US: u64 = 500;
    const CAP_US: u64 = 50_000;
    let exp = BASE_US.saturating_mul(1u64 << attempt.min(6));
    let mut h = rid
        .raw()
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(attempt);
    h ^= h >> 33;
    let jitter = h % BASE_US;
    std::time::Duration::from_micros((exp + jitter).min(CAP_US))
}

/// An [`ApplicationHandler`] backed by a plain closure — convenient for
/// tests, examples and simple applications.
pub struct FnHandler<F>(pub F);

impl<F> ApplicationHandler for FnHandler<F>
where
    F: Fn(&str, &HashMap<String, Value>) -> Result<()> + Send + Sync,
{
    fn handle(&self, request: &str, args: &HashMap<String, Value>) -> Result<()> {
        self.0(request, args)
    }
}

// Placeholder: ObjectId is used by condition.rs via re-export paths.
const _: fn() = || {
    let _ = std::mem::size_of::<ObjectId>();
};
