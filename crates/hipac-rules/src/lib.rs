//! ECA rules for the HiPAC active DBMS: the knowledge model (§2), the
//! execution model (§3) and the Rule Manager / Condition Evaluator
//! components (§5.4, §5.5).
//!
//! A rule has an *event*, a *condition* (a collection of queries — all
//! must return non-empty results), an *action* (a sequence of database
//! operations and requests to application programs) and two *coupling
//! modes*:
//!
//! * **E-C coupling** — when the condition is evaluated relative to the
//!   transaction signalling the event: `Immediate` (subtransaction at
//!   the event point, the triggering operation suspended), `Deferred`
//!   (subtransaction just before the triggering transaction commits) or
//!   `Separate` (concurrent top-level transaction);
//! * **C-A coupling** — ditto for action execution relative to the
//!   condition-evaluation transaction.
//!
//! Rules are first-class database objects: firing takes a read lock on
//! the rule; create / delete / enable / disable take write locks, so
//! rule updates serialize against rule firings (§2.2). Multiple rules
//! triggered by one event fire concurrently as siblings — the paper is
//! explicit that there is *no* conflict-resolution policy; correctness
//! is serializability.
//!
//! Modules:
//!
//! * [`rule`] — rule definitions, actions, coupling modes;
//! * [`condition`] — the Condition Evaluator: per-event condition graph
//!   with common-subexpression sharing and delta-based incremental
//!   evaluation;
//! * [`pool`] — the worker pool running separate-mode firings in
//!   concurrent top-level transactions;
//! * [`manager`] — the Rule Manager: event→rule mapping, coupling-mode
//!   scheduling, deferred sets, cascading firings, rule operations.

pub mod codec;
pub mod condition;
pub mod manager;
pub mod network;
pub mod pool;
pub mod rule;
pub mod trace;

pub use condition::ConditionEvaluator;
pub use manager::{ApplicationHandler, RuleManager};
pub use network::{derive_guard, GuardSpec, MatchNetwork, Matching, MemoTable};
pub use pool::FiringPool;
pub use rule::{Action, ActionOp, CouplingMode, DbAction, RuleDef};
pub use trace::{FiringTrace, QueryStrategy, RuleExplanation, RuleTracer};
