//! Rule definitions: the attributes of rule objects (§2.1).

use hipac_common::Value;
use hipac_event::EventSpec;
use hipac_object::expr::Expr;
use hipac_object::query::Query;
use std::fmt;

/// Coupling modes (§2.1): the transactional relationship between the
/// triggering event and condition evaluation (E-C) and between
/// condition evaluation and action execution (C-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CouplingMode {
    /// Evaluate at the triggering point, in a subtransaction, with the
    /// parent suspended.
    Immediate,
    /// Evaluate in a subtransaction created just before the triggering
    /// transaction commits.
    Deferred,
    /// Evaluate in a separate top-level transaction executing
    /// concurrently with the triggering transaction.
    Separate,
}

/// One step of a rule action: a database operation or a request to an
/// application program (§2.1: "these can be database operations or
/// external requests to application programs").
#[derive(Debug, Clone, PartialEq)]
pub enum ActionOp {
    /// A database operation.
    Db(DbAction),
    /// A request to an application program (§4.1 role reversal: HiPAC
    /// becomes the client). `handler` names a registered
    /// [`crate::manager::ApplicationHandler`]; `request` is passed
    /// through; `args` are evaluated against the firing context.
    AppRequest {
        handler: String,
        request: String,
        args: Vec<(String, Expr)>,
    },
    /// Raise an application-defined event (feeding other rules — the
    /// paper's "one program can send a request to another … indirectly
    /// through a rule firing").
    SignalEvent {
        name: String,
        args: Vec<(String, Expr)>,
    },
    /// Run the nested ops once per row of the `query_index`-th
    /// condition query's result, with the row's attributes in scope.
    ForEachRow {
        query_index: usize,
        ops: Vec<ActionOp>,
    },
    /// Fail the firing (and thereby, for immediate coupling, the
    /// triggering operation) with a constraint violation — the
    /// integrity-enforcement idiom.
    AbortWith { message: String },
}

/// Database operations available to actions. Value expressions are
/// evaluated against the firing context (event parameters, old/new
/// images, and — inside [`ActionOp::ForEachRow`] — the current row).
#[derive(Debug, Clone, PartialEq)]
pub enum DbAction {
    Insert {
        class: String,
        values: Vec<Expr>,
    },
    /// Update every object matching `query` with the assignments.
    UpdateWhere {
        query: Query,
        assignments: Vec<(String, Expr)>,
    },
    /// Delete every object matching `query`.
    DeleteWhere { query: Query },
}

/// A rule action: a sequence of operations (§2.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Action {
    pub ops: Vec<ActionOp>,
}

impl Action {
    /// An empty action (useful for alerter-style rules whose effect is
    /// entirely in the condition side effects or for testing).
    pub fn none() -> Action {
        Action::default()
    }

    /// Action with one step.
    pub fn single(op: ActionOp) -> Action {
        Action { ops: vec![op] }
    }

    /// Append a step.
    pub fn then(mut self, op: ActionOp) -> Action {
        self.ops.push(op);
        self
    }
}

/// A rule definition — the attributes from §2.1. Build with
/// [`RuleDef::new`] and the builder methods:
///
/// ```
/// use hipac_rules::{RuleDef, Action, ActionOp, CouplingMode};
/// use hipac_event::EventSpec;
/// use hipac_object::Query;
///
/// let rule = RuleDef::new("reorder")
///     .on(EventSpec::on_update("item"))
///     .when(Query::parse("from item where new.on_hand <= new.reorder_at").unwrap())
///     .then(Action::single(ActionOp::AbortWith { message: "out of stock".into() }))
///     .ec(CouplingMode::Deferred);
/// assert_eq!(rule.ec_coupling, CouplingMode::Deferred);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDef {
    pub name: String,
    /// Triggering event; `None` means "derive from the condition"
    /// (§2.1: HiPAC derives the event specification from the
    /// condition).
    pub event: Option<EventSpec>,
    /// The condition: a collection of queries, satisfied iff all return
    /// non-empty results. An empty collection is the always-true
    /// condition.
    pub condition: Vec<Query>,
    pub action: Action,
    pub ec_coupling: CouplingMode,
    pub ca_coupling: CouplingMode,
    /// Created enabled unless cleared.
    pub enabled: bool,
}

impl RuleDef {
    /// A rule named `name` with an always-true condition, empty action
    /// and immediate/immediate coupling.
    pub fn new(name: impl Into<String>) -> RuleDef {
        RuleDef {
            name: name.into(),
            event: None,
            condition: Vec::new(),
            action: Action::none(),
            ec_coupling: CouplingMode::Immediate,
            ca_coupling: CouplingMode::Immediate,
            enabled: true,
        }
    }

    /// Set the triggering event.
    pub fn on(mut self, event: EventSpec) -> RuleDef {
        self.event = Some(event);
        self
    }

    /// Add a condition query.
    pub fn when(mut self, query: Query) -> RuleDef {
        self.condition.push(query);
        self
    }

    /// Set the action.
    pub fn then(mut self, action: Action) -> RuleDef {
        self.action = action;
        self
    }

    /// Set the E-C coupling mode.
    pub fn ec(mut self, mode: CouplingMode) -> RuleDef {
        self.ec_coupling = mode;
        self
    }

    /// Set the C-A coupling mode.
    pub fn ca(mut self, mode: CouplingMode) -> RuleDef {
        self.ca_coupling = mode;
        self
    }

    /// Set both couplings to `Separate` — the paper's SAA rules use
    /// "condition and action together in a separate transaction".
    pub fn detached(mut self) -> RuleDef {
        self.ec_coupling = CouplingMode::Separate;
        // Condition and action run together: the action joins the
        // condition's transaction via immediate C-A.
        self.ca_coupling = CouplingMode::Immediate;
        self
    }

    /// Create the rule disabled.
    pub fn disabled(mut self) -> RuleDef {
        self.enabled = false;
        self
    }
}

/// Renders the rule in (approximately) the DSL the property harness
/// prints for counterexamples: name, couplings, and each condition
/// query in `from … where … select …` form.
impl fmt::Display for RuleDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {}", self.name)?;
        if !self.enabled {
            write!(f, " (disabled)")?;
        }
        write!(f, " [ec={:?} ca={:?}]", self.ec_coupling, self.ca_coupling)?;
        if let Some(e) = &self.event {
            write!(f, " on {e:?}")?;
        }
        for q in &self.condition {
            write!(f, " when from {}", q.class)?;
            if q.predicate != Expr::Literal(Value::Bool(true)) {
                write!(f, " where {}", q.predicate)?;
            }
            if let Some(attrs) = &q.projection {
                write!(f, " select {}", attrs.join(", "))?;
            }
        }
        if !self.action.ops.is_empty() {
            write!(f, " then <{} ops>", self.action.ops.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipac_event::EventSpec as E;
    use hipac_object::expr::{BinOp, Expr};

    #[test]
    fn builder_produces_expected_rule() {
        let rule = RuleDef::new("ticker")
            .on(E::on_update("stock"))
            .when(Query::filtered(
                "stock",
                Expr::attr("price").bin(BinOp::Ge, Expr::lit(50.0)),
            ))
            .then(Action::single(ActionOp::AppRequest {
                handler: "display".into(),
                request: "show_quote".into(),
                args: vec![("price".into(), Expr::param("price"))],
            }))
            .detached();
        assert_eq!(rule.name, "ticker");
        assert_eq!(rule.ec_coupling, CouplingMode::Separate);
        assert_eq!(rule.ca_coupling, CouplingMode::Immediate);
        assert!(rule.enabled);
        assert_eq!(rule.condition.len(), 1);
        assert_eq!(rule.action.ops.len(), 1);
    }

    #[test]
    fn action_composition() {
        let a = Action::none()
            .then(ActionOp::AbortWith {
                message: "no".into(),
            })
            .then(ActionOp::SignalEvent {
                name: "e".into(),
                args: vec![],
            });
        assert_eq!(a.ops.len(), 2);
        assert_eq!(Action::none(), Action::default());
    }
}
