//! Discrimination network for event→rule matching (ROADMAP item 2).
//!
//! The Rule Manager's naive trigger path resolves a signal's candidate
//! rules by walking the full event→rules list and evaluating every
//! rule's condition — O(rules) per signal, which collapses at
//! production rule counts. Production ECA engines in the Rete/TREAT
//! lineage share predicate tests across rules in a *discrimination
//! network*; this module implements the variant that fits HiPAC's
//! knowledge model:
//!
//! * **Type nodes** — one per (shared) event definition, mirroring the
//!   event→rules wiring. Event-type discrimination itself is the event
//!   registry's spec sharing; a type node refines *within* one event.
//! * **Attribute discrimination** — rules whose first condition query
//!   is delta-answerable and whose leftmost conjunct compares an
//!   `old.x`/`new.x` attribute against a literal are bucketed by that
//!   guard: equality guards in a hash map keyed by the literal (exact,
//!   because [`Value`]'s `Eq`/`Hash` are consistent with its total
//!   order, Int/Float cross-comparison included), interval guards in
//!   two ordered maps (lower bounds `>=`/`>`, upper bounds `<=`/`<`).
//!   One probe with the event's attribute value then yields exactly
//!   the rules whose guard passes — O(matches), not O(rules).
//! * **Residual set** — rules the network cannot discriminate (store
//!   conditions, disjunctions, `!=`, non-literal comparands, empty
//!   conditions). Always candidates; evaluated exactly as today.
//! * **Unstable set** — rules with *uncommitted* definition changes
//!   (created, altered, dropped, enabled or disabled inside an open
//!   transaction). Such rules are always candidates until the change
//!   resolves: the shared dispatch path re-reads the rule under the
//!   probing transaction's visibility, so the outcome per candidate is
//!   identical to the naive path's, and an aborted definition change
//!   leaves the committed placement untouched.
//!
//! **Prune safety.** A rule may be dropped from the candidate set only
//! when the naive path would *provably* find its condition unsatisfied
//! without error. The guard is the leftmost conjunct, which the
//! evaluator's left-to-right short-circuit evaluates first; comparisons
//! never error (null compares false), so a false guard means the whole
//! predicate is false. Everything uncertain falls back to "keep as
//! candidate": no event delta, the query's class not in the event's
//! lineage (the naive delta path would not apply), any referenced
//! attribute that does not resolve against the event's class (the
//! naive path resolves the whole predicate eagerly and errors), the
//! guard's image missing or the attribute slot out of range (ditto).
//! Candidate sets are therefore a superset of the satisfied rules and
//! a subset of the naive candidate list, and every candidate flows
//! through the unchanged per-rule visibility/enablement/evaluation
//! path — the differential harness in `tests/matching_diff.rs` and the
//! property suite hold both modes to identical outcomes.
//!
//! **Memoized partial matches.** Store-path condition queries (the
//! shared subexpression nodes of the condition graph) are memoized in
//! a [`MemoTable`] validated against the Object Manager's
//! committed-data version stamps. Invalidation is transactional: the
//! stamp counters bump inside the committing transaction's publish
//! window — before its locks release — so no reader can validate a
//! stale entry against already-published data, and a probing
//! transaction whose own family has pending writes on the query's
//! class tree skips the memo entirely (it must see its own writes).
//! Aborted data changes never touch the counters, so they never
//! invalidate (nor pollute) the memo.

use crate::rule::RuleDef;
use hipac_common::{EventId, ObjectId, RuleId, TxnId, Value};
use hipac_event::EventSignal;
use hipac_object::expr::{BinOp, Expr};
use hipac_object::query::{Query, QueryResult};
use hipac_object::ObjectStore;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

/// How the Rule Manager resolves a signal's candidate rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Matching {
    /// Walk the full event→rules list (the differential oracle).
    Naive,
    /// Probe the discrimination network (the default).
    #[default]
    Network,
}

impl Matching {
    /// Resolve the mode from `HIPAC_MATCHING` (`naive` | `network`),
    /// defaulting to [`Matching::Network`].
    pub fn from_env() -> Matching {
        match std::env::var("HIPAC_MATCHING").as_deref() {
            Ok("naive") => Matching::Naive,
            _ => Matching::Network,
        }
    }
}

/// Which event image a guard probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageRef {
    Old,
    New,
}

/// Guard comparison operator (`!=` is not discriminable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardOp {
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

/// The index metadata of one rule: how the network discriminates it.
/// Derived deterministically from the rule definition; persisted
/// alongside the rule (codec `g` records) so a reopened database
/// rebuilds the same network without re-deriving.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardSpec {
    /// Not discriminable: always a candidate within its type node.
    Residual,
    /// First-conjunct attribute guard.
    Guarded {
        /// Class of the rule's first condition query.
        class: String,
        image: ImageRef,
        attr: String,
        op: GuardOp,
        value: Value,
        /// Union of `old.*`/`new.*` attribute names referenced by the
        /// whole first-query predicate: the naive delta path resolves
        /// them all eagerly, so if any fails to resolve against the
        /// event's class the rule must stay a candidate (to reproduce
        /// the naive error).
        ref_attrs: Vec<String>,
    },
}

/// Derive a rule's guard spec from its definition. The guard comes
/// from the first condition query when it (a) has the delta-answerable
/// shape, and (b) opens with `old.x ⟨cmp⟩ literal` / `new.x ⟨cmp⟩
/// literal` (either orientation). Pre-resolved slot forms are *not*
/// guarded: their stored index could disagree with name resolution at
/// evaluation time.
pub fn derive_guard(def: &RuleDef) -> GuardSpec {
    let Some(q0) = def.condition.first() else {
        return GuardSpec::Residual;
    };
    if !crate::condition::ConditionEvaluator::delta_answerable_shape(q0) {
        return GuardSpec::Residual;
    }
    let conjuncts = q0.predicate.conjuncts();
    let Some(Expr::Binary(op, l, r)) = conjuncts.first().copied() else {
        return GuardSpec::Residual;
    };
    let attr_side = |e: &Expr| -> Option<(ImageRef, String)> {
        match e {
            Expr::OldAttr(n) => Some((ImageRef::Old, n.clone())),
            Expr::NewAttr(n) => Some((ImageRef::New, n.clone())),
            _ => None,
        }
    };
    let direct = match (attr_side(l), r.as_ref()) {
        (Some(side), Expr::Literal(v)) => Some((side, *op, v.clone())),
        _ => None,
    };
    let flipped = match (attr_side(r), l.as_ref()) {
        // `literal ⟨op⟩ attr` reads as `attr ⟨flipped op⟩ literal`.
        (Some(side), Expr::Literal(v)) => Some((side, flip(*op), v.clone())),
        _ => None,
    };
    let Some(((image, attr), op, value)) = direct.or(flipped) else {
        return GuardSpec::Residual;
    };
    let op = match op {
        BinOp::Eq => GuardOp::Eq,
        BinOp::Lt => GuardOp::Lt,
        BinOp::Le => GuardOp::Le,
        BinOp::Gt => GuardOp::Gt,
        BinOp::Ge => GuardOp::Ge,
        _ => return GuardSpec::Residual,
    };
    let mut ref_attrs = Vec::new();
    collect_attr_names(&q0.predicate, &mut ref_attrs);
    ref_attrs.sort();
    ref_attrs.dedup();
    GuardSpec::Guarded {
        class: q0.class.clone(),
        image,
        attr,
        op,
        value,
        ref_attrs,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn collect_attr_names(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::OldAttr(n) | Expr::NewAttr(n) => out.push(n.clone()),
        Expr::Unary(_, x) => collect_attr_names(x, out),
        Expr::Binary(_, l, r) => {
            collect_attr_names(l, out);
            collect_attr_names(r, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_attr_names(a, out);
            }
        }
        _ => {}
    }
}

/// Why a rule sits in the unstable set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mark {
    /// Created by this (possibly nested) transaction; retracted if it
    /// aborts, promoted on child commit, placed on top commit.
    Created(TxnId),
    /// Existing rule with a pending definition change owned by this
    /// *top* transaction (the rule's write lock guarantees one owner).
    Pending(TxnId),
}

type GroupKey = (String, ImageRef, String);

#[derive(Default)]
struct Bounds {
    /// Rules matching inclusively at this key (`>=` / `<=`).
    inclusive: Vec<RuleId>,
    /// Rules matching strictly (`>` / `<`).
    strict: Vec<RuleId>,
}

impl Bounds {
    fn is_empty(&self) -> bool {
        self.inclusive.is_empty() && self.strict.is_empty()
    }
}

/// Shared discrimination node for one (class, image, attribute).
#[derive(Default)]
struct AttrDisc {
    eq: HashMap<Value, Vec<RuleId>>,
    /// Lower bounds: guards `attr >= key` / `attr > key`.
    lower: BTreeMap<Value, Bounds>,
    /// Upper bounds: guards `attr <= key` / `attr < key`.
    upper: BTreeMap<Value, Bounds>,
    /// Refcounted union of referenced attribute names across member
    /// rules. If any fails to resolve at probe time, the whole group
    /// stays candidates (conservative, see module docs).
    ref_attrs: HashMap<String, usize>,
    rules: usize,
}

/// One event definition's node.
#[derive(Default)]
struct TypeNode {
    groups: HashMap<GroupKey, AttrDisc>,
    residual: BTreeSet<RuleId>,
    /// Always-candidates with uncommitted definition changes.
    unstable: HashMap<RuleId, Mark>,
    /// Committed placement of every placed rule, for O(1) removal.
    placed: HashMap<RuleId, GuardSpec>,
}

impl TypeNode {
    fn is_empty(&self) -> bool {
        self.placed.is_empty() && self.unstable.is_empty()
    }

    /// All rules wired to this node, ascending (the full-candidate
    /// fallback; equals the naive list's sorted order).
    fn all_rules(&self) -> Vec<RuleId> {
        let mut out: Vec<RuleId> = self.placed.keys().copied().collect();
        out.extend(self.unstable.keys().copied());
        out.sort_unstable();
        out.dedup();
        out
    }

    fn size(&self) -> usize {
        let extra = self
            .unstable
            .keys()
            .filter(|rid| !self.placed.contains_key(rid))
            .count();
        self.placed.len() + extra
    }
}

/// Network-wide counters (surface through `EngineStats`).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Live discrimination nodes: type nodes + attribute groups +
    /// distinct equality buckets + distinct bound keys.
    pub index_nodes: AtomicU64,
    /// Signals resolved through the network.
    pub probes: AtomicU64,
    /// Rules excluded from candidate sets across all probes.
    pub candidates_pruned: AtomicU64,
}

#[derive(Default)]
struct Inner {
    nodes: HashMap<EventId, TypeNode>,
    /// txn → rules it created (for promotion/retraction).
    created: HashMap<TxnId, Vec<(EventId, RuleId)>>,
    /// top txn → rules it has pending definition changes on.
    pending: HashMap<TxnId, Vec<(EventId, RuleId)>>,
}

/// The discrimination network.
pub struct MatchNetwork {
    inner: RwLock<Inner>,
    stats: NetStats,
}

impl Default for MatchNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl MatchNetwork {
    pub fn new() -> MatchNetwork {
        MatchNetwork {
            inner: RwLock::new(Inner::default()),
            stats: NetStats::default(),
        }
    }

    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mirror of `create_rule`'s eager event wiring: the new rule is
    /// unstable until its creating transaction resolves.
    pub fn link_created(&self, event: EventId, rid: RuleId, txn: TxnId) {
        let mut inner = self.inner.write();
        let node = self.node_mut(&mut inner.nodes, event);
        node.unstable.insert(rid, Mark::Created(txn));
        inner.created.entry(txn).or_default().push((event, rid));
    }

    /// Creation attribution moves up on child commit (mirrors the
    /// catalog's `created_by` promotion).
    pub fn promote_created(&self, child: TxnId, parent: TxnId) {
        let mut inner = self.inner.write();
        let Some(entries) = inner.created.remove(&child) else {
            return;
        };
        for (event, rid) in &entries {
            if let Some(node) = inner.nodes.get_mut(event) {
                if let Some(mark) = node.unstable.get_mut(rid) {
                    if *mark == Mark::Created(child) {
                        *mark = Mark::Created(parent);
                    }
                }
            }
        }
        inner.created.entry(parent).or_default().extend(entries);
    }

    /// Unlink rules created by an aborted transaction (mirrors
    /// `retract_created_by`).
    pub fn retract_created(&self, txn: TxnId) {
        let mut inner = self.inner.write();
        let Some(entries) = inner.created.remove(&txn) else {
            return;
        };
        for (event, rid) in entries {
            let remove_node = match inner.nodes.get_mut(&event) {
                Some(node) => {
                    if node.unstable.get(&rid) == Some(&Mark::Created(txn)) {
                        node.unstable.remove(&rid);
                    }
                    node.is_empty()
                }
                None => false,
            };
            if remove_node {
                inner.nodes.remove(&event);
                self.stats.index_nodes.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// An existing rule gained a pending definition change (alter /
    /// drop / enable / disable): always-candidate until `top` ends.
    pub fn mark_pending(&self, event: EventId, rid: RuleId, top: TxnId) {
        let mut inner = self.inner.write();
        let node = self.node_mut(&mut inner.nodes, event);
        // A rule created by this very family keeps its Created mark
        // (retraction must still unlink it entirely).
        node.unstable.entry(rid).or_insert(Mark::Pending(top));
        inner.pending.entry(top).or_default().push((event, rid));
    }

    /// A definition change committed at top level: re-place the rule
    /// per its committed definition (`None` = deleted). `old_event` /
    /// `new_event` come from the catalog rewiring.
    pub fn commit_change(
        &self,
        old_event: EventId,
        new_event: EventId,
        rid: RuleId,
        def: Option<&RuleDef>,
    ) {
        let mut inner = self.inner.write();
        self.remove_rule(&mut inner.nodes, old_event, rid);
        if let Some(def) = def {
            let guard = derive_guard(def);
            self.place_rule(&mut inner.nodes, new_event, rid, guard);
        }
    }

    /// Drop the unstable marks owned by a finished top transaction
    /// whose rules were *not* re-placed (child-aborted changes, or a
    /// top abort): their committed placement is already correct.
    pub fn clear_top(&self, top: TxnId) {
        let mut inner = self.inner.write();
        for (event, rid) in inner.pending.remove(&top).unwrap_or_default() {
            let remove_node = match inner.nodes.get_mut(&event) {
                Some(node) => {
                    if node.unstable.get(&rid) == Some(&Mark::Pending(top)) {
                        node.unstable.remove(&rid);
                    }
                    node.is_empty()
                }
                None => false,
            };
            if remove_node {
                inner.nodes.remove(&event);
                self.stats.index_nodes.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Place a committed rule (durable reload and commit-time
    /// placement share this path).
    pub fn place_committed(&self, event: EventId, rid: RuleId, guard: GuardSpec) {
        let mut inner = self.inner.write();
        self.place_rule(&mut inner.nodes, event, rid, guard);
    }

    /// Resolve the candidate set for one signal: residual ∪ unstable ∪
    /// guard matches, ascending by rule id (the naive list's order).
    /// Returns `None` when no rules are wired to the event.
    pub fn probe(
        &self,
        event: EventId,
        store: &ObjectStore,
        signal: &EventSignal,
    ) -> Option<Vec<RuleId>> {
        let inner = self.inner.read();
        let node = inner.nodes.get(&event)?;
        self.stats.probes.fetch_add(1, Ordering::Relaxed);
        let full_size = node.size();
        // No delta, or no transaction to resolve the schema under:
        // nothing to discriminate on — everything is a candidate.
        let (Some(db), Some(txn)) = (&signal.db, signal.txn) else {
            return Some(node.all_rules());
        };
        if node.groups.is_empty() {
            return Some(node.all_rules());
        }
        let schema = store.schema(txn);
        let mut out: Vec<RuleId> = node.residual.iter().copied().collect();
        out.extend(node.unstable.keys().copied());
        for ((class, image, attr), group) in &node.groups {
            // The naive delta path applies only when the query's class
            // is in the event's lineage; otherwise the store path's
            // eager delta folding errors — keep the group.
            if !db.class_lineage.contains(class) {
                all_of(group, &mut out);
                continue;
            }
            // Every referenced attribute must resolve against the
            // event's class, or naive's eager resolve errors.
            if group
                .ref_attrs
                .keys()
                .any(|n| schema.resolve_attr(db.class, n).is_err())
            {
                all_of(group, &mut out);
                continue;
            }
            let img = match image {
                ImageRef::Old => db.old.as_deref(),
                ImageRef::New => db.new.as_deref(),
            };
            // Missing image or out-of-range slot: naive errors — keep.
            let Some(img) = img else {
                all_of(group, &mut out);
                continue;
            };
            let slot = schema
                .resolve_attr(db.class, attr)
                .map(|(s, _)| s)
                .expect("checked by the ref_attrs union");
            let Some(v) = img.get(slot) else {
                all_of(group, &mut out);
                continue;
            };
            if v.is_null() {
                // Null compares false against everything: the guard is
                // false for every rule in the group — prune them all.
                continue;
            }
            if let Some(rules) = group.eq.get(v) {
                out.extend_from_slice(rules);
            }
            for (key, b) in group.lower.range::<Value, _>((Bound::Unbounded, Bound::Included(v)))
            {
                out.extend_from_slice(&b.inclusive);
                if key != v {
                    out.extend_from_slice(&b.strict);
                }
            }
            for (key, b) in group.upper.range::<Value, _>((Bound::Included(v), Bound::Unbounded))
            {
                out.extend_from_slice(&b.inclusive);
                if key != v {
                    out.extend_from_slice(&b.strict);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        self.stats
            .candidates_pruned
            .fetch_add(full_size.saturating_sub(out.len()) as u64, Ordering::Relaxed);
        Some(out)
    }

    /// Rules currently wired to `event` (diagnostics/tests).
    pub fn node_size(&self, event: EventId) -> usize {
        self.inner
            .read()
            .nodes
            .get(&event)
            .map_or(0, TypeNode::size)
    }

    // ---- internal placement plumbing ---------------------------------

    fn node_mut<'a>(
        &self,
        nodes: &'a mut HashMap<EventId, TypeNode>,
        event: EventId,
    ) -> &'a mut TypeNode {
        nodes.entry(event).or_insert_with(|| {
            self.stats.index_nodes.fetch_add(1, Ordering::Relaxed);
            TypeNode::default()
        })
    }

    fn place_rule(
        &self,
        nodes: &mut HashMap<EventId, TypeNode>,
        event: EventId,
        rid: RuleId,
        guard: GuardSpec,
    ) {
        let mut delta: i64 = 0;
        let node = self.node_mut(nodes, event);
        node.unstable.remove(&rid);
        match &guard {
            GuardSpec::Residual => {
                node.residual.insert(rid);
            }
            GuardSpec::Guarded {
                class,
                image,
                attr,
                op,
                value,
                ref_attrs,
            } => {
                let key = (class.clone(), *image, attr.clone());
                let group = node.groups.entry(key).or_insert_with(|| {
                    delta += 1;
                    AttrDisc::default()
                });
                for a in ref_attrs {
                    *group.ref_attrs.entry(a.clone()).or_insert(0) += 1;
                }
                group.rules += 1;
                match op {
                    GuardOp::Eq => {
                        let bucket = group.eq.entry(value.clone()).or_insert_with(|| {
                            delta += 1;
                            Vec::new()
                        });
                        insert_sorted(bucket, rid);
                    }
                    GuardOp::Ge | GuardOp::Gt => {
                        let b = group.lower.entry(value.clone()).or_insert_with(|| {
                            delta += 1;
                            Bounds::default()
                        });
                        let list = if *op == GuardOp::Ge {
                            &mut b.inclusive
                        } else {
                            &mut b.strict
                        };
                        insert_sorted(list, rid);
                    }
                    GuardOp::Le | GuardOp::Lt => {
                        let b = group.upper.entry(value.clone()).or_insert_with(|| {
                            delta += 1;
                            Bounds::default()
                        });
                        let list = if *op == GuardOp::Le {
                            &mut b.inclusive
                        } else {
                            &mut b.strict
                        };
                        insert_sorted(list, rid);
                    }
                }
            }
        }
        node.placed.insert(rid, guard);
        if delta != 0 {
            self.stats
                .index_nodes
                .fetch_add(delta as u64, Ordering::Relaxed);
        }
    }

    fn remove_rule(
        &self,
        nodes: &mut HashMap<EventId, TypeNode>,
        event: EventId,
        rid: RuleId,
    ) {
        let Some(node) = nodes.get_mut(&event) else {
            return;
        };
        let mut delta: u64 = 0;
        node.unstable.remove(&rid);
        match node.placed.remove(&rid) {
            None => {}
            Some(GuardSpec::Residual) => {
                node.residual.remove(&rid);
            }
            Some(GuardSpec::Guarded {
                class,
                image,
                attr,
                op,
                value,
                ref_attrs,
            }) => {
                let key = (class, image, attr);
                if let Some(group) = node.groups.get_mut(&key) {
                    for a in &ref_attrs {
                        if let Some(c) = group.ref_attrs.get_mut(a) {
                            *c -= 1;
                            if *c == 0 {
                                group.ref_attrs.remove(a);
                            }
                        }
                    }
                    group.rules = group.rules.saturating_sub(1);
                    match op {
                        GuardOp::Eq => {
                            if let Some(bucket) = group.eq.get_mut(&value) {
                                bucket.retain(|r| *r != rid);
                                if bucket.is_empty() {
                                    group.eq.remove(&value);
                                    delta += 1;
                                }
                            }
                        }
                        GuardOp::Ge | GuardOp::Gt => {
                            if let Some(b) = group.lower.get_mut(&value) {
                                let list = if op == GuardOp::Ge {
                                    &mut b.inclusive
                                } else {
                                    &mut b.strict
                                };
                                list.retain(|r| *r != rid);
                                if b.is_empty() {
                                    group.lower.remove(&value);
                                    delta += 1;
                                }
                            }
                        }
                        GuardOp::Le | GuardOp::Lt => {
                            if let Some(b) = group.upper.get_mut(&value) {
                                let list = if op == GuardOp::Le {
                                    &mut b.inclusive
                                } else {
                                    &mut b.strict
                                };
                                list.retain(|r| *r != rid);
                                if b.is_empty() {
                                    group.upper.remove(&value);
                                    delta += 1;
                                }
                            }
                        }
                    }
                    if group.rules == 0 {
                        node.groups.remove(&key);
                        delta += 1;
                    }
                }
            }
        }
        if node.is_empty() {
            nodes.remove(&event);
            delta += 1;
        }
        if delta != 0 {
            self.stats.index_nodes.fetch_sub(delta, Ordering::Relaxed);
        }
    }
}

fn all_of(group: &AttrDisc, out: &mut Vec<RuleId>) {
    for rules in group.eq.values() {
        out.extend_from_slice(rules);
    }
    for b in group.lower.values().chain(group.upper.values()) {
        out.extend_from_slice(&b.inclusive);
        out.extend_from_slice(&b.strict);
    }
}

fn insert_sorted(list: &mut Vec<RuleId>, rid: RuleId) {
    if let Err(pos) = list.binary_search(&rid) {
        list.insert(pos, rid);
    }
}

// ---------------------------------------------------------------------
// Memoized partial matches
// ---------------------------------------------------------------------

/// One memoized store-path query result.
struct MemoEntry {
    /// The Object Manager's committed-data stamp of the query's class
    /// at fill time.
    stamp: (u64, u64),
    oids: Vec<ObjectId>,
    rows: QueryResult,
}

/// Memo counters.
#[derive(Debug, Default)]
pub struct MemoStats {
    pub hits: AtomicU64,
    pub fills: AtomicU64,
    /// Entries found stale (stamp mismatch) or evicted.
    pub invalidations: AtomicU64,
}

/// Committed-data query memo: the network's shared subexpression
/// nodes. Entries validate against [`ObjectStore::data_stamp`]; a hit
/// re-acquires the query's locking footprint (class + row read locks)
/// and re-validates, so a hit is indistinguishable — locks included —
/// from re-running the query.
pub struct MemoTable {
    entries: Mutex<HashMap<Query, MemoEntry>>,
    capacity: usize,
    stats: MemoStats,
}

impl MemoTable {
    pub fn new(capacity: usize) -> MemoTable {
        MemoTable {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            stats: MemoStats::default(),
        }
    }

    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    /// Number of live entries (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is `query` memoizable? Only pure committed-data queries: no
    /// delta references (the caller memoizes *folded* queries, where
    /// deltas became literals) and no parameters (results would depend
    /// on bindings outside the key).
    pub fn eligible(query: &Query) -> bool {
        fn pure(e: &Expr) -> bool {
            match e {
                Expr::Literal(_) | Expr::Attr(_) | Expr::Slot(..) => true,
                Expr::Param(_)
                | Expr::OldAttr(_)
                | Expr::OldSlot(..)
                | Expr::NewAttr(_)
                | Expr::NewSlot(..) => false,
                Expr::Unary(_, x) => pure(x),
                Expr::Binary(_, l, r) => pure(l) && pure(r),
                Expr::Call(_, args) => args.iter().all(pure),
            }
        }
        pure(&query.predicate)
    }

    /// Try to answer `query` from the memo. `Ok(None)` means "run the
    /// real query" (no entry, stale entry, unstable stamp, or the
    /// probing family has pending writes on the class tree).
    pub fn lookup(
        &self,
        store: &ObjectStore,
        txn: TxnId,
        query: &Query,
    ) -> hipac_common::Result<Option<QueryResult>> {
        if store.family_dirty(txn, &query.class) {
            return Ok(None);
        }
        let Some(stamp) = store.data_stamp(&query.class) else {
            return Ok(None);
        };
        let (entry_stamp, oids, rows) = {
            let mut entries = self.entries.lock();
            let Some(entry) = entries.get(query) else {
                return Ok(None);
            };
            if entry.stamp != stamp {
                entries.remove(query);
                self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            (entry.stamp, entry.oids.clone(), entry.rows.clone())
        };
        // Same locking footprint as the query itself; may block on a
        // concurrent writer — in which case the re-validation below
        // catches whatever it published.
        store.lock_rows_read(txn, &query.class, &oids)?;
        if store.data_stamp(&query.class) != Some(entry_stamp) {
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            self.entries.lock().remove(query);
            return Ok(None);
        }
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        Ok(Some(rows))
    }

    /// Record a query result computed against a stable committed
    /// stamp. `stamp_before` is the class stamp taken *before* the
    /// query ran; the entry is kept only if the stamp still holds (no
    /// commit published meanwhile) and the family is clean (the result
    /// reflects committed data only).
    pub fn fill(
        &self,
        store: &ObjectStore,
        txn: TxnId,
        query: &Query,
        stamp_before: Option<(u64, u64)>,
        rows: &QueryResult,
    ) {
        let Some(stamp) = stamp_before else { return };
        if store.family_dirty(txn, &query.class) {
            return;
        }
        if store.data_stamp(&query.class) != Some(stamp) {
            return;
        }
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity && !entries.contains_key(query) {
            // Evict stale entries first; if none, drop an arbitrary one.
            let stale: Vec<Query> = entries
                .iter()
                .filter(|(q, e)| store.data_stamp(&q.class) != Some(e.stamp))
                .map(|(q, _)| q.clone())
                .take(16)
                .collect();
            let evicted = stale.len().max(1);
            if stale.is_empty() {
                if let Some(q) = entries.keys().next().cloned() {
                    entries.remove(&q);
                }
            } else {
                for q in stale {
                    entries.remove(&q);
                }
            }
            self.stats
                .invalidations
                .fetch_add(evicted as u64, Ordering::Relaxed);
        }
        self.stats.fills.fetch_add(1, Ordering::Relaxed);
        entries.insert(
            query.clone(),
            MemoEntry {
                stamp,
                oids: rows.iter().map(|r| r.oid).collect(),
                rows: rows.clone(),
            },
        );
    }
}
