//! Multi-tenant hardening (protocol v8): authenticated sessions,
//! per-tenant admission control, and the slow-subscriber eviction
//! policy — including the durable garbage collection of a
//! dead-lettered subscription's outbox state and its resurrection on
//! an authorized re-subscribe.

use hipac::ActiveDatabase;
use hipac_common::{Value, ValueType};
use hipac_event::EventSpec;
use hipac_net::proto::{Command, Frame, Reply, RequestMeta};
use hipac_net::{ClientConfig, HipacClient, HipacServer, ServerConfig, WireError};
use hipac_object::{AttrDef, Expr, Query};
use hipac_rules::{Action, ActionOp, DbAction, RuleDef};
use hipac_storage::journal;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SECRET: &[u8] = b"tenant-test-secret";

fn fresh_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hipac-tenants-{tag}-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn auth_server() -> HipacServer {
    let db = Arc::new(
        ActiveDatabase::builder()
            .lock_timeout(Duration::from_secs(3))
            .build()
            .unwrap(),
    );
    HipacServer::bind_with(
        db,
        "127.0.0.1:0",
        ServerConfig {
            auth_secret: Some(SECRET.to_vec()),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn setup_int_class(db: &Arc<ActiveDatabase>) {
    db.run_top(|t| {
        db.store()
            .create_class(t, "t", None, vec![AttrDef::new("n", ValueType::Int)])?;
        Ok(())
    })
    .unwrap();
}

fn raw_roundtrip(stream: &mut TcpStream, id: u64, meta: RequestMeta, command: Command) -> Reply {
    stream
        .write_all(&Frame::Request { id, meta, command }.encode())
        .unwrap();
    loop {
        match Frame::read_from(stream).unwrap().expect("reply") {
            Frame::Response { id: rid, reply } if rid == id => return reply,
            Frame::Response { .. } | Frame::Push(_) => continue,
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

/// The happy path: a client configured with the shared secret proves
/// its identity during the handshake and its keyed traffic round-trips
/// exactly as before — auth is additive for well-behaved tenants.
#[test]
fn authenticated_client_round_trips() {
    let server = auth_server();
    setup_int_class(server.db());
    let client = HipacClient::connect_with(
        server.local_addr().to_string(),
        ClientConfig {
            client_id: 7001,
            auth_secret: Some(SECRET.to_vec()),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let txn = client.begin().unwrap();
    client.insert(txn, "t", vec![Value::from(1)]).unwrap();
    client.commit(txn).unwrap();
    assert_eq!(server.auth_failures(), 0);
}

/// A wrong secret fails the handshake outright; a client with no
/// secret connects (the `Auth` step is skipped) but its keyed requests
/// are refused `AuthFailed` by the identity gate.
#[test]
fn wrong_or_missing_secret_is_refused() {
    let server = auth_server();
    setup_int_class(server.db());

    let wrong = HipacClient::connect_with(
        server.local_addr().to_string(),
        ClientConfig {
            client_id: 7002,
            auth_secret: Some(b"not-the-secret".to_vec()),
            max_retries: 1,
            backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        },
    );
    assert!(wrong.is_err(), "handshake with a bad token must fail");
    assert!(server.auth_failures() >= 1);

    let unauthed = HipacClient::connect_with(
        server.local_addr().to_string(),
        ClientConfig {
            client_id: 7003,
            max_retries: 1,
            backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    match unauthed.begin() {
        Err(WireError::Remote { kind, message }) => {
            assert_eq!(kind, "AuthFailed", "{message}")
        }
        other => panic!("unauthenticated keyed begin produced {other:?}"),
    }
}

/// The satellite-6 regression: a hostile session asserting a victim's
/// `client_id` must not poison the victim's dedup window. The hostile
/// keyed request is refused *before* the dedup probe or any window
/// insert, so when the victim later uses the same `(client_id, seq)`
/// the request actually executes instead of replaying the refusal.
#[test]
fn hostile_peer_cannot_poison_foreign_dedup_state() {
    let server = auth_server();
    setup_int_class(server.db());
    let victim_id = 7100u64;

    // Hostile: authenticates as itself, then asserts the victim's
    // client_id on a keyed request with a sequence the victim has not
    // used yet.
    let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
    match raw_roundtrip(&mut hostile, 1, RequestMeta::default(), Command::Ping { version: 8 }) {
        Reply::Pong { version } => assert_eq!(version, 8),
        other => panic!("ping produced {other:?}"),
    }
    let token = hipac_net::auth::session_token(SECRET, 6666).to_vec();
    assert_eq!(
        raw_roundtrip(
            &mut hostile,
            2,
            RequestMeta::default(),
            Command::Auth { client_id: 6666, token }
        ),
        Reply::Ok
    );
    let spoofed = RequestMeta {
        client_id: victim_id,
        seq: 1,
        deadline_ms: 0,
    };
    match raw_roundtrip(&mut hostile, 3, spoofed, Command::Begin) {
        Reply::Err { kind, message } => assert_eq!(kind, "AuthFailed", "{message}"),
        other => panic!("spoofed keyed begin produced {other:?}"),
    }

    // Victim: the same (client_id, seq) now executes for real — a Txn
    // reply, not a cached AuthFailed refusal.
    let mut victim = TcpStream::connect(server.local_addr()).unwrap();
    match raw_roundtrip(&mut victim, 1, RequestMeta::default(), Command::Ping { version: 8 }) {
        Reply::Pong { version } => assert_eq!(version, 8),
        other => panic!("ping produced {other:?}"),
    }
    let token = hipac_net::auth::session_token(SECRET, victim_id).to_vec();
    assert_eq!(
        raw_roundtrip(
            &mut victim,
            2,
            RequestMeta::default(),
            Command::Auth { client_id: victim_id, token }
        ),
        Reply::Ok
    );
    let meta = RequestMeta {
        client_id: victim_id,
        seq: 1,
        deadline_ms: 0,
    };
    match raw_roundtrip(&mut victim, 3, meta, Command::Begin) {
        Reply::Txn(_) => {}
        other => panic!("victim's first keyed request produced {other:?}"),
    }
}

/// Per-tenant inflight cap: with `tenant_max_inflight = 1`, a tenant
/// with one request stuck in dispatch has its next request shed — but
/// a different tenant's request is admitted through the same window.
#[test]
fn tenant_inflight_cap_sheds_only_the_noisy_tenant() {
    let db = Arc::new(
        ActiveDatabase::builder()
            .lock_timeout(Duration::from_secs(3))
            .build()
            .unwrap(),
    );
    let server = HipacServer::bind_with(
        db,
        "127.0.0.1:0",
        ServerConfig {
            tenant_max_inflight: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    setup_int_class(server.db());
    let addr = server.local_addr().to_string();

    // A holds a row lock; B's update blocks in dispatch.
    let a = HipacClient::connect(&*addr).unwrap();
    let ta = a.begin().unwrap();
    let oid = a.insert(ta, "t", vec![Value::from(1)]).unwrap();
    a.commit(ta).unwrap();
    let ta = a.begin().unwrap();
    a.update(ta, oid, vec![("n".into(), Value::from(2))]).unwrap();

    let b = HipacClient::connect_with(
        &*addr,
        ClientConfig {
            client_id: 0xB0B,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let tb = b.begin().unwrap();
    let b_thread = std::thread::spawn(move || {
        let _ = b.request_with_deadline(
            Command::Update {
                txn: tb,
                oid,
                assignments: vec![("n".into(), Value::from(3))],
            },
            Some(Duration::from_millis(600)),
        );
        let _ = b.abort(tb);
    });
    std::thread::sleep(Duration::from_millis(150));

    // Same tenant, second request: over the per-tenant cap.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let meta = RequestMeta {
        client_id: 0xB0B,
        seq: 5000,
        deadline_ms: 0,
    };
    match raw_roundtrip(&mut raw, 1, meta, Command::Begin) {
        Reply::Err { kind, message } => {
            assert_eq!(kind, "Overloaded", "{message}");
            assert!(message.contains("tenant admission"), "{message}");
        }
        other => panic!("expected tenant-cap Overloaded, got {other:?}"),
    }
    assert!(server.tenant_shed_requests() >= 1);

    // A different tenant is admitted while B is still stuck.
    let c = HipacClient::connect(&*addr).unwrap();
    let tc = c.begin().expect("quiet tenant starved by noisy tenant");
    c.abort(tc).unwrap();

    b_thread.join().unwrap();
    a.abort(ta).unwrap();
}

/// Count keys under a reserved journal prefix on the durable store.
fn prefix_count(db: &Arc<ActiveDatabase>, prefix: u8) -> usize {
    db.durable_store()
        .expect("durable store")
        .scan_prefix(&[prefix])
        .expect("scan")
        .len()
}

/// Schema + rules for the eviction tests: inserts into `p` push to
/// handler `slow`; the `SubscriberEvicted` engine event (defined by
/// the server at bind) fires a user rule inserting the evicted
/// handler's name into `evlog`.
fn setup_evict_schema(db: &Arc<ActiveDatabase>) {
    db.run_top(|t| {
        db.store()
            .create_class(t, "p", None, vec![AttrDef::new("n", ValueType::Int)])?;
        db.store()
            .create_class(t, "evlog", None, vec![AttrDef::new("h", ValueType::Str)])?;
        db.rules().create_rule(
            t,
            RuleDef::new("push-p")
                .on(EventSpec::db(hipac_event::spec::DbEventKind::Insert, Some("p")))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "slow".into(),
                    request: "audit".into(),
                    args: vec![("sev".into(), Expr::lit(1))],
                })),
        )?;
        db.rules().create_rule(
            t,
            RuleDef::new("log-eviction")
                .on(EventSpec::external("SubscriberEvicted"))
                .then(Action::single(ActionOp::Db(DbAction::Insert {
                    class: "evlog".into(),
                    values: vec![Expr::param("handler")],
                }))),
        )?;
        Ok(())
    })
    .expect("setup evict schema");
}

fn evlog_rows(db: &Arc<ActiveDatabase>) -> Vec<String> {
    db.run_top(|t| {
        let rows = db.store().query(t, &Query::all("evlog"), None)?;
        Ok(rows
            .iter()
            .filter_map(|r| match &r.values[0] {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect())
    })
    .expect("read evlog")
}

fn open_durable(dir: &PathBuf) -> Arc<ActiveDatabase> {
    Arc::new(
        ActiveDatabase::builder()
            .durable(dir)
            .lock_timeout(Duration::from_secs(3))
            .build()
            .unwrap(),
    )
}

fn evict_config() -> ServerConfig {
    ServerConfig {
        // A couple of push frames blow the budget.
        outbox_evict_bytes: 200,
        ..ServerConfig::default()
    }
}

/// Tolerant insert into `p`: the push rule makes inserts fail typed
/// errors once the handler is dead-lettered; callers count successes.
fn try_insert_p(client: &HipacClient, v: i64) -> bool {
    let Ok(txn) = client.begin() else {
        return false;
    };
    if client.insert(txn, "p", vec![Value::from(v)]).is_err() {
        let _ = client.abort(txn);
        return false;
    }
    client.commit(txn).is_ok()
}

/// The slow-subscriber policy end to end, with durable garbage
/// collection proven across a reopen:
///
/// 1. a subscriber that never acks blows the outbox byte budget —
///    the subscription is dead-lettered, its `'q'`/`'k'` state is
///    garbage-collected, a `'v'` tombstone appears, and the
///    `SubscriberEvicted` rule logs exactly one row;
/// 2. a reopen of the same directory keeps the space reclaimed and
///    does *not* re-fire the signal (the done-marker is durable);
/// 3. a fresh subscribe resurrects the handler: tombstone gone,
///    counter restored, pushes flow again without reusing sequences.
#[test]
fn eviction_garbage_collects_outbox_and_survives_reopen() {
    let dir = fresh_dir("evict");
    let db1 = open_durable(&dir);
    // Bind first: the server defines the `SubscriberEvicted` event the
    // user rule below fires on.
    let server1 =
        HipacServer::bind_with(Arc::clone(&db1), "127.0.0.1:0", evict_config()).unwrap();
    setup_evict_schema(&db1);

    // A subscriber that subscribes and then never acks anything.
    let mut lazy = TcpStream::connect(server1.local_addr()).unwrap();
    assert_eq!(
        raw_roundtrip(
            &mut lazy,
            1,
            RequestMeta::default(),
            Command::Subscribe { handler: "slow".into() }
        ),
        Reply::Ok
    );

    let writer = HipacClient::connect(server1.local_addr().to_string()).unwrap();
    let mut landed = 0u64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while server1.subscribers_evicted() == 0 && Instant::now() < deadline {
        if try_insert_p(&writer, landed as i64) {
            landed += 1;
        }
    }
    assert_eq!(server1.subscribers_evicted(), 1, "eviction never fired");
    assert!(landed >= 1, "no push ever enqueued");
    db1.quiesce();

    // Satellite 1: the dead-lettered subscription's durable state is
    // garbage-collected — outbox frames and counter gone, tombstone
    // present — and the rule saw the event exactly once.
    assert_eq!(prefix_count(&db1, journal::OUTBOX_PREFIX), 0, "'q' reclaimed");
    assert_eq!(prefix_count(&db1, journal::PUSH_SEQ_PREFIX), 0, "'k' reclaimed");
    assert_eq!(prefix_count(&db1, journal::EVICT_PREFIX), 1, "'v' tombstone");
    assert_eq!(evlog_rows(&db1), vec!["slow".to_string()]);

    // The detecting delivery itself was shed, and once the handler is
    // torn down further push-firing inserts fail typed errors.
    assert!(server1.pushes_shed() >= 1);
    assert!(!try_insert_p(&writer, 10_000), "push to a dead-lettered handler must fail");

    let mut server1 = server1;
    server1.shutdown();
    drop(server1);
    drop(writer);
    drop(lazy);
    drop(db1);

    // Reopen: space stays reclaimed, the signal does not re-fire.
    let db2 = open_durable(&dir);
    let server2 =
        HipacServer::bind_with(Arc::clone(&db2), "127.0.0.1:0", evict_config()).unwrap();
    db2.quiesce();
    assert_eq!(prefix_count(&db2, journal::OUTBOX_PREFIX), 0);
    assert_eq!(prefix_count(&db2, journal::PUSH_SEQ_PREFIX), 0);
    assert_eq!(prefix_count(&db2, journal::EVICT_PREFIX), 1);
    assert_eq!(evlog_rows(&db2), vec!["slow".to_string()], "eviction signal re-fired");

    // The eviction outlives the restart: pushes are still shed...
    let writer2 = HipacClient::connect(server2.local_addr().to_string()).unwrap();
    let mut lazy2 = TcpStream::connect(server2.local_addr()).unwrap();
    // (a live subscriber, so delivery reaches the outbox check at all)
    assert_eq!(
        raw_roundtrip(
            &mut lazy2,
            1,
            RequestMeta::default(),
            Command::Subscribe { handler: "slow".into() }
        ),
        Reply::Ok
    );
    // ...until the subscribe above resurrected it: tombstone cleared,
    // counter restored with the preserved next sequence.
    assert_eq!(prefix_count(&db2, journal::EVICT_PREFIX), 0, "tombstone cleared");
    assert_eq!(prefix_count(&db2, journal::PUSH_SEQ_PREFIX), 1, "'k' restored");
    assert!(try_insert_p(&writer2, 20_000), "resurrected handler must deliver");
    // The redelivered stream continues the preserved sequence: the
    // first post-resurrection push uses a sequence past every one the
    // evicted incarnation handed out.
    let pushed = loop {
        match Frame::read_from(&mut lazy2).unwrap().expect("push") {
            Frame::Push(p) => break p,
            _ => continue,
        }
    };
    assert_eq!(pushed.handler, "slow");
    assert!(
        pushed.seq > landed,
        "sequence reuse after resurrection: got {} after {} pre-eviction pushes",
        pushed.seq,
        landed
    );

    drop(server2);
    drop(db2);
    let _ = std::fs::remove_dir_all(&dir);
}
