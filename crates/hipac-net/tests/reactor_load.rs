//! Reactor-server load coverage: connection scale is paid in file
//! descriptors, not threads or stacks; a slow subscriber cannot stall
//! the batched push fan-out; and the dedup window keeps exactly-once
//! across reactor shards when a client reconnects onto a different
//! shard.
//!
//! The thousands-of-subscribers test uses raw `TcpStream` frames
//! rather than `HipacClient` — the client spawns a reader thread per
//! connection, which would turn a server-scalability test into a
//! client-thread test.

use hipac::ActiveDatabase;
use hipac_common::{Value, ValueType};
use hipac_event::EventSpec;
use hipac_net::proto::{Command, Frame, Reply, RequestMeta};
use hipac_net::{HipacClient, HipacServer, ServerConfig};
use hipac_object::AttrDef;
use hipac_rules::{Action, ActionOp, RuleDef};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn server_with(config: ServerConfig) -> HipacServer {
    let db = Arc::new(
        ActiveDatabase::builder()
            .lock_timeout(Duration::from_secs(3))
            .build()
            .unwrap(),
    );
    HipacServer::bind_with(db, "127.0.0.1:0", config).unwrap()
}

/// Create class `p(n: Int)` and a rule pushing every insert to
/// `handler` with the given request payload.
fn setup_push_schema(server: &HipacServer, handler: &str, request: &str) {
    let db = server.db();
    db.run_top(|t| {
        db.store()
            .create_class(t, "p", None, vec![AttrDef::new("n", ValueType::Int)])?;
        db.rules().create_rule(
            t,
            RuleDef::new("push-insert")
                .on(EventSpec::db(
                    hipac_event::spec::DbEventKind::Insert,
                    Some("p"),
                ))
                .then(Action::single(ActionOp::AppRequest {
                    handler: handler.into(),
                    request: request.into(),
                    args: vec![],
                })),
        )?;
        Ok(())
    })
    .unwrap();
}

fn roundtrip(stream: &mut TcpStream, id: u64, meta: RequestMeta, command: Command) -> Reply {
    stream
        .write_all(&Frame::Request { id, meta, command }.encode())
        .unwrap();
    loop {
        match Frame::read_from(stream).unwrap().expect("reply") {
            Frame::Response { id: rid, reply } if rid == id => return reply,
            Frame::Response { .. } | Frame::Push(_) => continue,
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

/// Threads of this process, from /proc (Linux; the reactor design
/// this asserts on is only syscall-backed there anyway).
fn process_threads() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count() as u64)
        .unwrap_or(0)
}

/// Soft RLIMIT_NOFILE, from /proc.
fn fd_soft_limit() -> u64 {
    let limits = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3)?.parse().ok())
        .unwrap_or(1024)
}

/// Thousands of idle subscribers cost this process file descriptors,
/// not threads: the reactor multiplexes them onto a fixed shard/worker
/// pool, and one committed insert still fans out to every socket.
///
/// Both connection ends live in this process, so each subscriber costs
/// three fds (client end, server end, and the server's cloned push
/// writer); the count targets 10k and degrades to what the rlimit
/// allows. `HORDE_N` overrides the target for quick local runs.
#[test]
fn idle_subscriber_horde_costs_fds_not_threads() {
    let budget = fd_soft_limit().saturating_sub(1000) / 3;
    let target = std::env::var("HORDE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let n = budget.min(target) as usize;
    assert!(
        n >= 1000,
        "fd limit too low to say anything about connection scale"
    );

    let server = server_with(ServerConfig {
        max_pending: n + 64,
        idle_timeout: Duration::from_secs(600),
        ..ServerConfig::default()
    });
    setup_push_schema(&server, "wave", "wave");

    let threads_before = process_threads();
    let fds_before = open_fds();
    let mut horde = Vec::with_capacity(n);
    for i in 0..n {
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reply = roundtrip(
            &mut conn,
            i as u64,
            RequestMeta::default(),
            Command::Subscribe {
                handler: "wave".into(),
            },
        );
        assert_eq!(reply, Reply::Ok, "subscriber {i} refused");
        horde.push(conn);
    }
    let threads_after = process_threads();
    let fds_after = open_fds();

    assert_eq!(
        server.active_connections(),
        n as u64,
        "every subscriber is a live session"
    );
    assert!(
        fds_after - fds_before >= 2 * n as u64,
        "subscribers must be held open as fds ({fds_before} -> {fds_after})"
    );
    // The whole point: session count must not leak into thread count.
    // (A thread-per-session design would add ~n threads here.)
    assert!(
        threads_after.saturating_sub(threads_before) <= 4,
        "thread explosion: {threads_before} -> {threads_after} threads for {n} conns"
    );

    // One committed insert fans out to the entire horde: spot-check a
    // spread of subscribers, including both ends of the accept order.
    let committer = HipacClient::connect(server.local_addr().to_string()).unwrap();
    let t = committer.begin().unwrap();
    committer.insert(t, "p", vec![Value::from(1i64)]).unwrap();
    committer.commit(t).unwrap();
    for idx in [0, 1, n / 2, n - 2, n - 1] {
        let conn = &mut horde[idx];
        loop {
            match Frame::read_from(conn).unwrap().expect("push") {
                Frame::Push(p) => {
                    assert_eq!(p.handler, "wave");
                    break;
                }
                _ => continue,
            }
        }
    }
    drop(committer);
    drop(horde);
    drop(server);
}

/// A subscriber that stops reading fills its socket and must be cut
/// loose by the bounded phase-2 write, without stalling delivery to
/// healthy subscribers: the fast client sees every push, the slow one
/// misses the tail (writes to it stopped at the cull), and the burst
/// completes in a fraction of `pushes x push_write_timeout`.
#[test]
fn slow_subscriber_is_culled_without_stalling_fanout() {
    const PUSHES: usize = 64;
    let timeout = Duration::from_millis(150);
    let server = server_with(ServerConfig {
        push_write_timeout: timeout,
        idle_timeout: Duration::from_secs(600),
        outbox_cap: PUSHES + 8,
        ..ServerConfig::default()
    });
    // 256 KiB per push: a non-reading subscriber's socket pair soaks
    // up only a few MB before writes stall.
    let blob = "x".repeat(256 * 1024);
    setup_push_schema(&server, "blob", &blob);

    let fast_seen = Arc::new(AtomicU64::new(0));
    let fast = HipacClient::connect(server.local_addr().to_string()).unwrap();
    {
        let fast_seen = Arc::clone(&fast_seen);
        fast.subscribe("blob", move |_| {
            fast_seen.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    }

    let mut slow = TcpStream::connect(server.local_addr()).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(
        roundtrip(
            &mut slow,
            1,
            RequestMeta::default(),
            Command::Subscribe {
                handler: "blob".into(),
            },
        ),
        Reply::Ok
    );
    // From here on the slow subscriber never reads again.

    let committer = HipacClient::connect(server.local_addr().to_string()).unwrap();
    let start = Instant::now();
    for i in 0..PUSHES as i64 {
        let t = committer.begin().unwrap();
        committer.insert(t, "p", vec![Value::from(i)]).unwrap();
        committer.commit(t).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while fast_seen.load(Ordering::SeqCst) < PUSHES as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let elapsed = start.elapsed();
    assert_eq!(
        fast_seen.load(Ordering::SeqCst),
        PUSHES as u64,
        "healthy subscriber missed pushes behind a slow peer"
    );
    // The slow subscriber stalls the burst at most ~once before the
    // cull; a fan-out serialized on it would need PUSHES x timeout.
    assert!(
        elapsed < timeout * (PUSHES as u32) / 4,
        "fan-out appears serialized on the slow subscriber: {elapsed:?}"
    );

    // The cull is real: drain what the socket buffered — it must be a
    // strict prefix of the burst, because deliveries to the slow
    // subscriber stopped when it was cut loose.
    slow.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    let mut slow_got = 0usize;
    loop {
        match Frame::read_from(&mut slow) {
            Ok(Some(Frame::Push(_))) => slow_got += 1,
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => break,
        }
    }
    assert!(
        slow_got < PUSHES,
        "slow subscriber received the whole burst; it was never culled"
    );
    drop(committer);
    drop(fast);
    drop(server);
}

/// Exactly-once across reactor shards: a keyed commit acked on one
/// shard must dedup when the client reconnects — round-robin assigns
/// the new connection to the *other* shard — and retries the same
/// `(client_id, seq)`. The dedup window is striped by client id, not
/// owned by a shard, so the retry replays the cached reply instead of
/// re-executing.
#[test]
fn dedup_survives_reconnect_across_shards() {
    let server = server_with(ServerConfig {
        reactor_shards: 2,
        ..ServerConfig::default()
    });
    let db = server.db();
    db.run_top(|t| {
        db.store()
            .create_class(t, "t", None, vec![AttrDef::new("n", ValueType::Int)])?;
        Ok(())
    })
    .unwrap();

    let meta = |seq: u64| RequestMeta {
        client_id: 0xD00D,
        seq,
        deadline_ms: 0,
    };
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let txn = match roundtrip(&mut conn, 1, meta(1), Command::Begin) {
        Reply::Txn(t) => t,
        other => panic!("{other:?}"),
    };
    roundtrip(
        &mut conn,
        2,
        meta(2),
        Command::Insert {
            txn,
            class: "t".into(),
            values: vec![Value::from(7i64)],
        },
    );
    assert_eq!(roundtrip(&mut conn, 3, meta(3), Command::Commit { txn }), Reply::Ok);
    drop(conn); // the session dies with the shard-homed connection

    // Reconnect: round-robin homes this connection on the other shard.
    // Same idempotency key, same command — must replay, not re-run.
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let before = server.dedup_hits();
    assert_eq!(
        roundtrip(&mut conn, 9, meta(3), Command::Commit { txn }),
        Reply::Ok,
        "cross-shard retry must replay the cached reply"
    );
    assert!(
        server.dedup_hits() > before,
        "retry re-executed instead of hitting the dedup window"
    );

    // Exactly once: the row exists a single time.
    let count = db
        .run_top(|t| {
            Ok(db
                .store()
                .query(t, &hipac_object::Query::all("t"), None)?
                .len())
        })
        .unwrap();
    assert_eq!(count, 1, "keyed commit applied more than once");
    drop(server);
}
