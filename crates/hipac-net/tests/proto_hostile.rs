//! Hostile-input fuzzing of the wire-protocol decoder.
//!
//! A networked server must survive anything a byte stream can carry:
//! truncated frames, oversized length prefixes, garbage opcodes,
//! bit-flipped valid frames, pure noise. Every property here asserts
//! the same contract — `Frame::decode` / `Frame::read_from` return
//! `Err` (or a clean `Ok`) but **never panic, hang, or allocate
//! unboundedly**.

use hipac_common::{TxnId, Value};
use hipac_net::proto::{Command, Frame, PushEvent, Reply, RequestMeta, WireError, MAX_FRAME};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::Cursor;

/// Representative valid frames covering all three frame kinds and a
/// spread of command/reply shapes.
fn sample_frames() -> Vec<Frame> {
    let mut args = HashMap::new();
    args.insert("price".to_string(), Value::from(50.0));
    vec![
        Frame::Request {
            id: 1,
            meta: RequestMeta::default(),
            command: Command::Ping { version: 1 },
        },
        Frame::Request {
            id: u64::MAX,
            meta: RequestMeta {
                client_id: 0xDEAD_BEEF,
                seq: 42,
                deadline_ms: 1_500,
            },
            command: Command::Begin,
        },
        Frame::Request {
            id: 7,
            meta: RequestMeta::default(),
            command: Command::Insert {
                txn: TxnId(3),
                class: "stock".into(),
                values: vec![Value::from("XRX"), Value::from(48.0), Value::Null],
            },
        },
        Frame::Request {
            id: 8,
            meta: RequestMeta {
                client_id: 9,
                seq: u64::MAX,
                deadline_ms: 0,
            },
            command: Command::Query {
                txn: TxnId(3),
                text: "from stock where new.price >= 50.0".into(),
                params: HashMap::from([("p".to_string(), Value::from(1))]),
            },
        },
        Frame::Response {
            id: 7,
            reply: Reply::Object(hipac_common::ObjectId(42)),
        },
        Frame::Response {
            id: 9,
            reply: Reply::Err {
                kind: "Deadlock".into(),
                message: "txn#9 chosen as victim".into(),
            },
        },
        Frame::Push(PushEvent {
            seq: 3,
            handler: "trader".into(),
            request: "buy".into(),
            args,
        }),
    ]
}

/// Strip the 4-byte length prefix off an encoded frame.
fn payload_of(frame: &Frame) -> Vec<u8> {
    frame.encode()[4..].to_vec()
}

#[test]
fn sample_frames_roundtrip() {
    for frame in sample_frames() {
        let payload = payload_of(&frame);
        assert_eq!(Frame::decode(&payload).unwrap(), frame);
        let mut cursor = Cursor::new(frame.encode());
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(frame));
    }
}

/// Every strict prefix of a valid payload must be rejected (the
/// decoder demands exact consumption), and no prefix may panic.
#[test]
fn every_truncation_of_every_sample_frame_errors() {
    for frame in sample_frames() {
        let payload = payload_of(&frame);
        for cut in 0..payload.len() {
            let truncated = &payload[..cut];
            assert!(
                Frame::decode(truncated).is_err(),
                "decode accepted a {cut}-byte prefix of {frame:?}"
            );
        }
        // Stream truncation: cutting anywhere inside the wire bytes is
        // either a clean EOF at the boundary (cut == 0) or an error —
        // never a parsed frame, never a panic.
        let wire = frame.encode();
        for cut in 0..wire.len() {
            let mut cursor = Cursor::new(wire[..cut].to_vec());
            match Frame::read_from(&mut cursor) {
                Ok(None) if cut == 0 => {}
                Ok(other) => panic!("{cut}-byte prefix parsed as {other:?}"),
                Err(_) => {}
            }
        }
    }
}

/// Length prefixes beyond `MAX_FRAME` are rejected before any payload
/// read; the hostile length never drives an allocation.
#[test]
fn oversized_length_prefixes_are_rejected_up_front() {
    for len in [
        MAX_FRAME as u64 + 1,
        u64::from(u32::MAX),
        0x2000_0000,
        0xFFFF_FFF0,
    ] {
        let mut wire = (len as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]); // a few bytes, nowhere near `len`
        let mut cursor = Cursor::new(wire);
        match Frame::read_from(&mut cursor) {
            Err(WireError::Protocol(msg)) => {
                assert!(msg.contains("exceeds cap"), "wrong rejection: {msg}")
            }
            other => panic!("oversized length {len} produced {other:?}"),
        }
    }
}

/// Unknown opcodes (23..=255, past v8's Auth) and unknown frame
/// kinds (4..=255, past v5's repl stream kind) must error cleanly
/// whatever bytes follow them.
#[test]
fn garbage_opcodes_and_kinds_error() {
    for op in 23..=255u8 {
        // kind 0 (request), id 1, zeroed request meta, then the bad
        // opcode and some body.
        let payload = vec![0u8, 1, 0, 0, 0, op, 0xDE, 0xAD, 0xBE, 0xEF];
        match Frame::decode(&payload) {
            Err(WireError::Protocol(_)) => {}
            other => panic!("opcode {op} produced {other:?}"),
        }
    }
    for kind in 4..=255u8 {
        let payload = vec![kind, 1, 2, 3];
        match Frame::decode(&payload) {
            Err(WireError::Protocol(_)) => {}
            other => panic!("frame kind {kind} produced {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure noise: arbitrary payload bytes never panic the decoder.
    #[test]
    fn random_payloads_never_panic(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&payload);
    }

    /// Noise shaped like a frame: a valid kind byte followed by random
    /// bytes still never panics.
    #[test]
    fn random_bodies_under_valid_kinds_never_panic(
        kind in 0u8..3,
        body in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut payload = vec![kind];
        payload.extend_from_slice(&body);
        let _ = Frame::decode(&payload);
    }

    /// Random byte streams through the framed reader: any outcome but a
    /// panic, and the reader never spins forever (Cursor is finite).
    #[test]
    fn random_streams_never_panic(wire in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut cursor = Cursor::new(wire);
        while let Ok(Some(_)) = Frame::read_from(&mut cursor) {}
    }

    /// Bit-flip fuzzing: corrupting one byte of a valid payload either
    /// still decodes (the flip hit a don't-care bit such as a value in
    /// an id) or errors — never a panic.
    #[test]
    fn single_byte_corruption_never_panics(
        which in 0usize..7,
        offset in any::<u16>(),
        flip in 1u8..255,
    ) {
        let frames = sample_frames();
        let mut payload = payload_of(&frames[which % frames.len()]);
        if !payload.is_empty() {
            let at = offset as usize % payload.len();
            payload[at] ^= flip;
            let _ = Frame::decode(&payload);
        }
    }

    /// Truncation fuzzing across random cut points of random sample
    /// frames (denser than the exhaustive loop for wire-level reads).
    #[test]
    fn random_truncations_never_panic(which in 0usize..7, cut in any::<u16>()) {
        let frames = sample_frames();
        let wire = frames[which % frames.len()].encode();
        let cut = cut as usize % wire.len();
        let mut cursor = Cursor::new(wire[..cut].to_vec());
        let _ = Frame::read_from(&mut cursor);
    }
}
