//! End-to-end tests for the network layer: concurrent sessions, the
//! §4.1 role reversal over the wire (rule-action application requests
//! pushed to a *different* subscribed client), disconnect semantics,
//! and the connection-limit/robustness knobs.

use hipac::{ActiveDatabase, EngineStats};
use hipac_common::{Value, ValueType};
use hipac_event::EventSpec;
use hipac_net::proto::{Frame, Reply};
use hipac_net::{HipacClient, HipacServer, ServerConfig};
use hipac_object::{AttrDef, Expr};
use hipac_rules::{Action, ActionOp, RuleDef};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn server() -> HipacServer {
    let db = Arc::new(ActiveDatabase::open_in_memory().unwrap());
    HipacServer::bind(db, "127.0.0.1:0").unwrap()
}

fn addr(server: &HipacServer) -> String {
    server.local_addr().to_string()
}

#[test]
fn remote_dml_triggers_rule_pushed_to_other_client() {
    let server = server();

    // Client A is the application endpoint: it subscribes to the
    // "restocker" handler and forwards pushes into a channel.
    let a = HipacClient::connect(addr(&server)).unwrap();
    let (tx, rx) = crossbeam::channel::unbounded();
    a.subscribe("restocker", move |push| {
        tx.send((push.request.clone(), push.args.clone())).unwrap();
    })
    .unwrap();

    // Client B is an ordinary database client: schema, rule, data.
    let b = HipacClient::connect(addr(&server)).unwrap();
    let t = b.begin().unwrap();
    b.create_class(
        t,
        "item",
        None,
        vec![
            AttrDef::new("name", ValueType::Str),
            AttrDef::new("qty", ValueType::Int),
        ],
    )
    .unwrap();
    b.create_rule(
        t,
        &RuleDef::new("low_stock")
            .on(EventSpec::on_update("item"))
            .then(Action::single(ActionOp::AppRequest {
                handler: "restocker".into(),
                request: "reorder".into(),
                args: vec![("urgency".into(), Expr::lit("high"))],
            })),
    )
    .unwrap();
    let oid = b
        .insert(t, "item", vec![Value::from("bolt"), Value::from(40)])
        .unwrap();
    b.commit(t).unwrap();

    // B's update fires the rule; the action's application request must
    // arrive at A, the subscribed client.
    let t = b.begin().unwrap();
    b.update(t, oid, vec![("qty".into(), Value::from(2))]).unwrap();
    b.commit(t).unwrap();

    let (request, args) = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("push frame reached the other client");
    assert_eq!(request, "reorder");
    assert_eq!(args.get("urgency"), Some(&Value::Str("high".into())));

    // STATS over the wire reflects the firing.
    let stats = b.stats().unwrap();
    assert!(stats.rules_triggered >= 1, "stats: {stats:?}");
    assert!(stats.actions_executed >= 1, "stats: {stats:?}");

    // The facade snapshot agrees with the wire snapshot.
    let local: EngineStats = server.db().stats();
    assert_eq!(local.rules_triggered, stats.rules_triggered);
}

#[test]
fn disconnect_mid_transaction_aborts_open_transactions() {
    let server = server();

    // Set up schema first so the doomed writes have something to lock.
    let setup = HipacClient::connect(addr(&server)).unwrap();
    let t = setup.begin().unwrap();
    setup
        .create_class(t, "acct", None, vec![AttrDef::new("bal", ValueType::Int)])
        .unwrap();
    setup.commit(t).unwrap();

    // A client begins a transaction, writes, and vanishes without
    // committing.
    let doomed = HipacClient::connect(addr(&server)).unwrap();
    let t = doomed.begin().unwrap();
    doomed.insert(t, "acct", vec![Value::from(100)]).unwrap();
    drop(doomed); // connection drops with the transaction open

    // The server must abort the orphaned transaction, releasing its
    // locks and discarding the insert. Poll: teardown is asynchronous.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let t = setup.begin().unwrap();
        let rows = setup.query(t, "from acct", HashMap::new());
        setup.abort(t).ok();
        match rows {
            Ok(rows) if rows.is_empty() => break, // insert rolled back
            _ if std::time::Instant::now() > deadline => {
                panic!("orphaned transaction still holds its effects: {rows:?}")
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }

    // And the class is writable again (no stranded locks).
    let t = setup.begin().unwrap();
    setup.insert(t, "acct", vec![Value::from(1)]).unwrap();
    setup.commit(t).unwrap();
}

#[test]
fn many_concurrent_clients_serialize_correctly() {
    let server = server();
    let setup = HipacClient::connect(addr(&server)).unwrap();
    let t = setup.begin().unwrap();
    setup
        .create_class(t, "evt", None, vec![AttrDef::new("src", ValueType::Int)])
        .unwrap();
    setup.commit(t).unwrap();

    let address = addr(&server);
    let threads: Vec<_> = (0..6)
        .map(|n| {
            let address = address.clone();
            std::thread::spawn(move || {
                let c = HipacClient::connect(&address).unwrap();
                for _ in 0..5 {
                    let t = c.begin().unwrap();
                    c.insert(t, "evt", vec![Value::from(n as i64)]).unwrap();
                    c.commit(t).unwrap();
                }
            })
        })
        .collect();
    for th in threads {
        th.join().unwrap();
    }

    let t = setup.begin().unwrap();
    let rows = setup.query(t, "from evt", HashMap::new()).unwrap();
    setup.commit(t).unwrap();
    assert_eq!(rows.len(), 30, "every committed insert visible");
}

#[test]
fn connection_limit_refuses_with_error_frame() {
    let db = Arc::new(ActiveDatabase::open_in_memory().unwrap());
    let server = HipacServer::bind_with(
        db,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            max_pending: 1,
            idle_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // First client occupies the single session worker (connect() pings,
    // so the session is live once it returns).
    let held = HipacClient::connect(addr(&server)).unwrap();
    // Second connection parks in the pending queue.
    let _queued = TcpStream::connect(addr(&server)).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let it enqueue
    // Third must be refused with a ServerBusy frame.
    let mut refused = TcpStream::connect(addr(&server)).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match Frame::read_from(&mut refused).unwrap() {
        Some(Frame::Response {
            reply: Reply::Err { kind, .. },
            ..
        }) => assert_eq!(kind, "ServerBusy"),
        other => panic!("expected refusal, got {other:?}"),
    }
    assert_eq!(server.refused_connections(), 1);
    drop(held);
}

#[test]
fn garbage_and_oversized_frames_drop_session_not_server() {
    let server = server();

    // Send a hostile length prefix: the session must close without
    // taking the server down.
    let mut evil = TcpStream::connect(addr(&server)).unwrap();
    evil.write_all(&u32::MAX.to_be_bytes()).unwrap();
    evil.write_all(&[0u8; 16]).unwrap();

    // And garbage that parses as a small frame with a bad opcode.
    let mut junk = TcpStream::connect(addr(&server)).unwrap();
    junk.write_all(&3u32.to_be_bytes()).unwrap();
    junk.write_all(&[0xff, 0xff, 0xff]).unwrap();

    // A well-behaved client still gets service.
    let c = HipacClient::connect(addr(&server)).unwrap();
    let t = c.begin().unwrap();
    c.create_class(t, "ok", None, vec![AttrDef::new("x", ValueType::Int)])
        .unwrap();
    c.commit(t).unwrap();

    // The hostile sessions were closed by the server (clean FIN, or
    // RST when the kernel still held unread bytes — both mean closed).
    for mut s in [evil, junk] {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        use std::io::Read;
        loop {
            match s.read(&mut buf) {
                Ok(0) => break, // EOF: session dropped
                Ok(_) => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::BrokenPipe
                    ) =>
                {
                    break
                }
                Err(e) => panic!("expected closed connection, got {e}"),
            }
        }
    }
}

#[test]
fn idle_sessions_are_reaped() {
    let db = Arc::new(ActiveDatabase::open_in_memory().unwrap());
    let server = HipacServer::bind_with(
        db,
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut idle = TcpStream::connect(addr(&server)).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 1];
    use std::io::Read;
    match idle.read(&mut buf) {
        Ok(0) => {} // server closed the idle session
        other => panic!("expected idle reap (EOF), got {other:?}"),
    }
}

#[test]
fn remote_errors_carry_kind_and_message() {
    let server = server();
    let c = HipacClient::connect(addr(&server)).unwrap();
    let t = c.begin().unwrap();
    let err = c
        .insert(t, "no_such_class", vec![Value::from(1)])
        .unwrap_err();
    match err {
        hipac_net::WireError::Remote { ref kind, ref message } => {
            assert_eq!(kind, "UnknownClass");
            assert!(message.contains("no_such_class"), "{message}");
        }
        other => panic!("expected remote error, got {other:?}"),
    }
    assert!(!err.is_txn_fatal());
    c.abort(t).unwrap();
}

#[test]
fn graceful_shutdown_joins_and_closes_clients() {
    let mut server = server();
    let c = HipacClient::connect(addr(&server)).unwrap();
    let t = c.begin().unwrap();
    server.shutdown();
    // After shutdown the connection is gone; requests fail rather than
    // hang.
    let result = c.commit(t);
    assert!(result.is_err(), "request after shutdown: {result:?}");
}
