//! End-to-end failure resilience: exactly-once retries through a
//! deterministic chaos proxy, server-side idempotency replay, load
//! shedding and deadline propagation, graceful drain, and push-frame
//! behavior across reconnects.

use hipac::ActiveDatabase;
use hipac_check::{ChaosConfig, ChaosProxy};
use hipac_common::{TxnId, Value, ValueType};
use hipac_event::EventSpec;
use hipac_net::proto::{Command, Frame, Reply, RequestMeta};
use hipac_net::{ClientConfig, HipacClient, HipacServer, ServerConfig, WireError};
use hipac_object::{AttrDef, Expr};
use hipac_rules::{Action, ActionOp, RuleDef};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn server_with(config: ServerConfig) -> HipacServer {
    let db = Arc::new(
        ActiveDatabase::builder()
            .lock_timeout(Duration::from_secs(3))
            .build()
            .unwrap(),
    );
    HipacServer::bind_with(db, "127.0.0.1:0", config).unwrap()
}

fn server() -> HipacServer {
    server_with(ServerConfig::default())
}

/// Create class `t(n: Int)` directly on the served engine.
fn setup_int_class(server: &HipacServer) {
    let db = server.db();
    db.run_top(|t| {
        db.store()
            .create_class(t, "t", None, vec![AttrDef::new("n", ValueType::Int)])?;
        Ok(())
    })
    .unwrap();
}

/// Count committed rows of class `t` per value of `n`.
fn committed_counts(server: &HipacServer) -> HashMap<i64, usize> {
    let db = server.db();
    db.run_top(|t| {
        let rows = db
            .store()
            .query(t, &hipac_object::Query::all("t"), None)?;
        let mut counts = HashMap::new();
        for r in rows {
            if let Value::Int(n) = r.values[0] {
                *counts.entry(n).or_insert(0usize) += 1;
            }
        }
        Ok(counts)
    })
    .unwrap()
}

/// The tentpole torture test: a client performing sequential
/// begin/insert/commit transactions through a faulty network must end
/// with every *acked* commit applied exactly once and every unacked
/// one at most once, across multiple chaos seeds.
#[test]
fn exactly_once_commits_through_chaos_across_seeds() {
    for seed in [11u64, 22, 33] {
        let server = server();
        setup_int_class(&server);
        let proxy = ChaosProxy::spawn(server.local_addr(), ChaosConfig::percent(seed, 5)).unwrap();
        let client = HipacClient::connect_with(
            proxy.local_addr().to_string(),
            ClientConfig {
                max_retries: 8,
                backoff: Duration::from_millis(2),
                ..ClientConfig::default()
            },
        )
        .unwrap();

        let mut acked = Vec::new(); // commit returned Ok
        let mut indefinite = Vec::new(); // transport/timeout: at most once
        for i in 0..30i64 {
            let txn = match client.begin() {
                Ok(t) => t,
                Err(_) => continue, // no txn, nothing could commit
            };
            if client.insert(txn, "t", vec![Value::from(i)]).is_err() {
                let _ = client.abort(txn);
                continue;
            }
            match client.commit(txn) {
                Ok(()) => acked.push(i),
                Err(e) if e.is_indefinite() => indefinite.push(i),
                Err(_) => {} // definite rejection
            }
        }

        let counts = committed_counts(&server);
        for i in &acked {
            assert_eq!(
                counts.get(i),
                Some(&1),
                "seed {seed}: acked commit of {i} must be applied exactly once; counts: {counts:?}"
            );
        }
        for (n, c) in &counts {
            assert_eq!(*c, 1, "seed {seed}: value {n} applied {c} times");
            assert!(
                (0..30).contains(n),
                "seed {seed}: foreign value {n} appeared"
            );
        }
        for i in &indefinite {
            assert!(
                counts.get(i).copied().unwrap_or(0) <= 1,
                "seed {seed}: indefinite commit of {i} applied more than once"
            );
        }
        assert!(
            !acked.is_empty(),
            "seed {seed}: the client must make progress under 5% faults"
        );
        let chaos = proxy.stats();
        assert!(
            chaos.total() > 0,
            "seed {seed}: the proxy must actually have injected faults: {chaos:?}"
        );
    }
}

/// A forced partition mid-session must not poison the client: the next
/// request reconnects (with backoff) and succeeds on the same client
/// value.
#[test]
fn client_reusable_after_forced_partition() {
    let server = server();
    setup_int_class(&server);
    let proxy = ChaosProxy::spawn(server.local_addr(), ChaosConfig::clean()).unwrap();
    let client = HipacClient::connect_with(
        proxy.local_addr().to_string(),
        ClientConfig {
            max_retries: 5,
            backoff: Duration::from_millis(2),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    let t = client.begin().unwrap();
    client.insert(t, "t", vec![Value::from(1)]).unwrap();
    client.commit(t).unwrap();

    proxy.break_connections();

    // Same client object, next transaction: transparently redials.
    let t = client.begin().unwrap();
    client.insert(t, "t", vec![Value::from(2)]).unwrap();
    client.commit(t).unwrap();

    let counts = committed_counts(&server);
    assert_eq!(counts.get(&1), Some(&1));
    assert_eq!(counts.get(&2), Some(&1));
}

/// Deterministic server-side idempotency: re-sending a committed
/// request's `(client_id, seq)` — even from a brand-new connection, as
/// a reconnecting client would — replays the cached reply instead of
/// re-executing.
#[test]
fn duplicate_request_id_replays_cached_reply() {
    let server = server();
    setup_int_class(&server);
    let addr = server.local_addr();

    let roundtrip = |stream: &mut TcpStream, id: u64, meta: RequestMeta, command: Command| {
        stream
            .write_all(&Frame::Request { id, meta, command }.encode())
            .unwrap();
        loop {
            match Frame::read_from(stream).unwrap().expect("reply") {
                Frame::Response { id: rid, reply } if rid == id => return reply,
                Frame::Response { .. } | Frame::Push(_) => continue,
                other => panic!("unexpected frame {other:?}"),
            }
        }
    };
    let meta = |seq: u64| RequestMeta {
        client_id: 77,
        seq,
        deadline_ms: 0,
    };

    let mut conn1 = TcpStream::connect(addr).unwrap();
    let txn = match roundtrip(&mut conn1, 1, meta(1), Command::Begin) {
        Reply::Txn(t) => t,
        other => panic!("{other:?}"),
    };
    roundtrip(
        &mut conn1,
        2,
        meta(2),
        Command::Insert {
            txn,
            class: "t".into(),
            values: vec![Value::from(9)],
        },
    );
    assert_eq!(
        roundtrip(&mut conn1, 3, meta(3), Command::Commit { txn }),
        Reply::Ok
    );
    drop(conn1);

    // "Reconnect" and retry the commit with the same idempotency key:
    // the engine must not re-execute (the txn is long gone — a real
    // re-execution would error), and the row must exist exactly once.
    let mut conn2 = TcpStream::connect(addr).unwrap();
    assert_eq!(
        roundtrip(&mut conn2, 50, meta(3), Command::Commit { txn }),
        Reply::Ok,
        "retried commit must replay the cached ack"
    );
    // An unkeyed duplicate (seq 0) is not deduplicated and surfaces
    // the real engine error, proving the replay above came from the
    // window.
    match roundtrip(&mut conn2, 51, RequestMeta::default(), Command::Commit { txn }) {
        Reply::Err { .. } => {}
        other => panic!("unkeyed duplicate commit produced {other:?}"),
    }
    assert_eq!(committed_counts(&server).get(&9), Some(&1));
    assert_eq!(server.dedup_hits(), 1);
}

/// Load shedding and deadline propagation, both typed: with an
/// admission budget of one, a second concurrent request is refused
/// with `Overloaded`; the request occupying the budget is cut short by
/// its own deadline inside the engine's lock wait, surfacing the
/// definite `DeadlineExceeded`.
#[test]
fn overload_sheds_and_deadlines_cut_lock_waits() {
    let server = server_with(ServerConfig {
        max_inflight: 1,
        ..ServerConfig::default()
    });
    setup_int_class(&server);
    let addr = server.local_addr().to_string();

    let a = HipacClient::connect(&*addr).unwrap();
    let ta = a.begin().unwrap();
    let oid = a.insert(ta, "t", vec![Value::from(1)]).unwrap();
    a.commit(ta).unwrap();

    // A holds the row's write lock in an open transaction.
    let ta = a.begin().unwrap();
    a.update(ta, oid, vec![("n".into(), Value::from(2))]).unwrap();

    // B and C connect while the admission budget is still free (the
    // connect handshake itself is a request and would be shed).
    let b = HipacClient::connect(&*addr).unwrap();
    let c = HipacClient::connect(&*addr).unwrap();
    let tb = b.begin().unwrap();
    let b_thread = std::thread::spawn(move || {
        let err = b
            .request_with_deadline(
                Command::Update {
                    txn: tb,
                    oid,
                    assignments: vec![("n".into(), Value::from(3))],
                },
                Some(Duration::from_millis(400)),
            )
            .unwrap_err();
        let _ = b.abort(tb);
        err
    });
    std::thread::sleep(Duration::from_millis(150));

    // C's request arrives while B occupies the whole admission budget.
    let c_err = c.begin().unwrap_err();
    match &c_err {
        WireError::Remote { kind, .. } => assert_eq!(kind, "Overloaded", "{c_err:?}"),
        other => panic!("expected typed Overloaded, got {other:?}"),
    }
    assert!(server.shed_requests() >= 1);

    let b_err = b_thread.join().unwrap();
    match &b_err {
        WireError::Remote { kind, .. } => {
            assert_eq!(kind, "DeadlineExceeded", "{b_err:?}");
            assert!(b_err.is_txn_fatal());
        }
        other => panic!("expected remote DeadlineExceeded, got {other:?}"),
    }
    a.abort(ta).unwrap();
}

/// Graceful drain under active traffic: every writer gets a definite
/// reply or a typed transport error, the server quiesces and joins,
/// and the store holds exactly the acked values — no duplicates, no
/// lost committed transactions.
#[test]
fn drain_keeps_store_consistent_under_traffic() {
    let mut server = server();
    setup_int_class(&server);
    let addr = server.local_addr().to_string();

    let acked = Arc::new(parking_lot::Mutex::new(Vec::<i64>::new()));
    let mut writers = Vec::new();
    for w in 0..3i64 {
        let addr = addr.clone();
        let acked = Arc::clone(&acked);
        writers.push(std::thread::spawn(move || {
            let client = match HipacClient::connect_with(
                &*addr,
                ClientConfig {
                    max_retries: 1,
                    backoff: Duration::from_millis(1),
                    ..ClientConfig::default()
                },
            ) {
                Ok(c) => c,
                Err(_) => return,
            };
            for i in 0..200i64 {
                let v = w * 1000 + i;
                let txn = match client.begin() {
                    Ok(t) => t,
                    Err(_) => return,
                };
                if client.insert(txn, "t", vec![Value::from(v)]).is_err() {
                    return;
                }
                match client.commit(txn) {
                    Ok(()) => acked.lock().push(v),
                    Err(_) => return,
                }
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(100));
    server.drain();
    for t in writers {
        t.join().unwrap();
    }

    let counts = committed_counts(&server);
    let acked = acked.lock();
    assert!(!acked.is_empty(), "writers made progress before the drain");
    for v in acked.iter() {
        assert_eq!(
            counts.get(v),
            Some(&1),
            "acked {v} must survive the drain exactly once"
        );
    }
    for (v, c) in &counts {
        assert_eq!(*c, 1, "value {v} committed {c} times");
    }
}

/// §4.1 push subscriptions must survive a reconnect: after a forced
/// partition, the next request re-subscribes every tracked handler and
/// later rule firings reach the same client again.
#[test]
fn push_subscription_survives_reconnect() {
    let server = server();
    let proxy = ChaosProxy::spawn(server.local_addr(), ChaosConfig::clean()).unwrap();

    let subscriber = HipacClient::connect_with(
        proxy.local_addr().to_string(),
        ClientConfig {
            max_retries: 5,
            backoff: Duration::from_millis(2),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let (tx, rx) = crossbeam::channel::unbounded();
    subscriber
        .subscribe("alert", move |push| {
            tx.send(push.request.clone()).unwrap();
        })
        .unwrap();

    // An ordinary client (direct, unaffected by the partition) sets up
    // schema + rule and triggers firings.
    let trigger = HipacClient::connect(server.local_addr().to_string()).unwrap();
    let t = trigger.begin().unwrap();
    trigger
        .create_class(t, "item", None, vec![AttrDef::new("qty", ValueType::Int)])
        .unwrap();
    trigger
        .create_rule(
            t,
            &RuleDef::new("watch")
                .on(EventSpec::on_update("item"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "alert".into(),
                    request: "notify".into(),
                    args: vec![("sev".into(), Expr::lit(1))],
                })),
        )
        .unwrap();
    let oid = trigger.insert(t, "item", vec![Value::from(10)]).unwrap();
    trigger.commit(t).unwrap();

    let fire = |n: i64| {
        let t = trigger.begin().unwrap();
        trigger
            .update(t, oid, vec![("qty".into(), Value::from(n))])
            .unwrap();
        trigger.commit(t).unwrap();
    };
    fire(1);
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "notify");

    proxy.break_connections();
    // Any request forces the reconnect + re-subscription. The dead
    // session's teardown races this; poll until the new subscription
    // is live and receives a push.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        subscriber.stats().unwrap();
        fire(2);
        match rx.recv_timeout(Duration::from_millis(500)) {
            Ok(req) => {
                assert_eq!(req, "notify");
                break;
            }
            Err(_) if std::time::Instant::now() < deadline => continue,
            Err(e) => panic!("push never reached the resubscribed client: {e:?}"),
        }
    }
}

/// A rule action pushed to a handler nobody serves anymore must fail
/// the triggering request with the typed `NoApplicationHandler`
/// remote error (not hang, not silently drop).
#[test]
fn push_to_unsubscribed_handler_is_typed_remote_error() {
    let server = server();
    let client = HipacClient::connect(server.local_addr().to_string()).unwrap();

    let t = client.begin().unwrap();
    client
        .create_class(t, "item", None, vec![AttrDef::new("qty", ValueType::Int)])
        .unwrap();
    client
        .create_rule(
            t,
            &RuleDef::new("orphan")
                .on(EventSpec::on_update("item"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "nobody-home".into(),
                    request: "ping".into(),
                    args: vec![],
                })),
        )
        .unwrap();
    let oid = client.insert(t, "item", vec![Value::from(1)]).unwrap();
    client.commit(t).unwrap();

    // Subscribe then unsubscribe, so the server once knew the handler.
    client.subscribe("nobody-home", |_| {}).unwrap();
    client.unsubscribe("nobody-home").unwrap();

    let t = client.begin().unwrap();
    let err = client
        .update(t, oid, vec![("qty".into(), Value::from(2))])
        .unwrap_err();
    match &err {
        WireError::Remote { kind, .. } => {
            assert_eq!(kind, "NoApplicationHandler", "{err:?}")
        }
        other => panic!("expected typed remote error, got {other:?}"),
    }
    client.abort(t).ok();
}

/// An error response racing a push frame on the same connection: the
/// reader must route both — the push to its (slow) handler, the error
/// reply to its caller — without deadlock or cross-routing.
#[test]
fn error_reply_routes_while_push_handler_is_busy() {
    let server = server();
    let client = Arc::new(HipacClient::connect(server.local_addr().to_string()).unwrap());

    let t = client.begin().unwrap();
    client
        .create_class(t, "item", None, vec![AttrDef::new("qty", ValueType::Int)])
        .unwrap();
    client
        .create_rule(
            t,
            &RuleDef::new("slowpoke")
                .on(EventSpec::on_update("item"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "slow".into(),
                    request: "work".into(),
                    args: vec![],
                })),
        )
        .unwrap();
    let oid = client.insert(t, "item", vec![Value::from(1)]).unwrap();
    client.commit(t).unwrap();

    let (started_tx, started_rx) = crossbeam::channel::bounded::<()>(1);
    client
        .subscribe("slow", move |_| {
            let _ = started_tx.try_send(());
            std::thread::sleep(Duration::from_millis(300));
        })
        .unwrap();

    // Thread 1: triggers the rule; its dispatch blocks until the push
    // is delivered (immediate coupling writes the push synchronously).
    let c1 = Arc::clone(&client);
    let updater = std::thread::spawn(move || {
        let t = c1.begin().unwrap();
        c1.update(t, oid, vec![("qty".into(), Value::from(2))])
            .unwrap();
        c1.commit(t).unwrap();
    });

    // Thread 2: as soon as the slow handler is running on the reader
    // thread, issue a failing request. Its error frame queues behind
    // the handler but must still reach this caller.
    started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    let err = client.commit(TxnId(999_999)).unwrap_err();
    assert!(
        matches!(err, WireError::Remote { .. }),
        "error reply must route through a busy reader: {err:?}"
    );
    updater.join().unwrap();
}

/// The reply journal keeps exactly-once across a full restart: a
/// committed keyed commit is re-sent — same `(client_id, seq)`, brand
/// new process, brand new connection — against a server rebooted on
/// the same data directory, and must come back `Ok` from the recovered
/// journal instead of re-executing (the transaction is long gone; a
/// real re-execution would be a definite error, as the unkeyed
/// duplicate proves).
#[test]
fn reply_journal_replays_across_restart() {
    let dir = std::env::temp_dir().join(format!(
        "hipac-net-journal-restart-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let durable_server = || {
        let db = Arc::new(
            ActiveDatabase::builder()
                .durable(&dir)
                .lock_timeout(Duration::from_secs(3))
                .build()
                .unwrap(),
        );
        HipacServer::bind(db, "127.0.0.1:0").unwrap()
    };
    let roundtrip = |stream: &mut TcpStream, id: u64, meta: RequestMeta, command: Command| {
        stream
            .write_all(&Frame::Request { id, meta, command }.encode())
            .unwrap();
        loop {
            match Frame::read_from(stream).unwrap().expect("reply") {
                Frame::Response { id: rid, reply } if rid == id => return reply,
                Frame::Response { .. } | Frame::Push(_) => continue,
                other => panic!("unexpected frame {other:?}"),
            }
        }
    };
    let meta = |seq: u64| RequestMeta {
        client_id: 555,
        seq,
        deadline_ms: 0,
    };

    let mut server1 = durable_server();
    setup_int_class(&server1);
    let mut conn = TcpStream::connect(server1.local_addr()).unwrap();
    let txn = match roundtrip(&mut conn, 1, meta(1), Command::Begin) {
        Reply::Txn(t) => t,
        other => panic!("{other:?}"),
    };
    roundtrip(
        &mut conn,
        2,
        meta(2),
        Command::Insert {
            txn,
            class: "t".into(),
            values: vec![Value::from(7)],
        },
    );
    assert_eq!(roundtrip(&mut conn, 3, meta(3), Command::Commit { txn }), Reply::Ok);
    drop(conn);
    server1.shutdown();
    drop(server1);

    let server2 = durable_server();
    assert_eq!(
        committed_counts(&server2).get(&7),
        Some(&1),
        "committed row recovered from the WAL"
    );
    let mut conn = TcpStream::connect(server2.local_addr()).unwrap();
    // Same idempotency key, dead session, long-gone transaction: only
    // the recovered journal can say Ok here.
    assert_eq!(
        roundtrip(&mut conn, 10, meta(3), Command::Commit { txn }),
        Reply::Ok,
        "pre-restart commit must replay from the durable journal"
    );
    assert_eq!(server2.journal_replays(), 1);
    // The unkeyed duplicate bypasses the journal and surfaces the
    // definite verdict: this session does not own that transaction.
    match roundtrip(&mut conn, 11, RequestMeta::default(), Command::Commit { txn }) {
        Reply::Err { kind, .. } => assert_eq!(kind, "UnknownTxn"),
        other => panic!("unkeyed duplicate produced {other:?}"),
    }
    assert_eq!(committed_counts(&server2).get(&7), Some(&1));
    drop(server2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client whose dedup entry aged out of the window must get the
/// typed `ReplyEvicted` refusal — outcome unknown, permanently — not a
/// silent re-execution and not a fake replay.
#[test]
fn evicted_dedup_entry_gets_typed_refusal() {
    let server = server_with(ServerConfig {
        dedup_window: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let roundtrip = |stream: &mut TcpStream, id: u64, meta: RequestMeta, command: Command| {
        stream
            .write_all(&Frame::Request { id, meta, command }.encode())
            .unwrap();
        loop {
            match Frame::read_from(stream).unwrap().expect("reply") {
                Frame::Response { id: rid, reply } if rid == id => return reply,
                Frame::Response { .. } | Frame::Push(_) => continue,
                other => panic!("unexpected frame {other:?}"),
            }
        }
    };
    let meta = |seq: u64| RequestMeta {
        client_id: 88,
        seq,
        deadline_ms: 0,
    };
    let mut conn = TcpStream::connect(addr).unwrap();
    // Three keyed requests through a window of two: seq 1 ages out.
    for seq in 1..=3u64 {
        match roundtrip(&mut conn, seq, meta(seq), Command::Begin) {
            Reply::Txn(_) => {}
            other => panic!("begin produced {other:?}"),
        }
    }
    match roundtrip(&mut conn, 10, meta(1), Command::Begin) {
        Reply::Err { kind, message } => {
            assert_eq!(kind, "ReplyEvicted", "{message}");
        }
        other => panic!("evicted key must be refused, got {other:?}"),
    }
    // A still-windowed key replays instead.
    let replayed = roundtrip(&mut conn, 11, meta(3), Command::Begin);
    assert!(matches!(replayed, Reply::Txn(_)), "{replayed:?}");
    assert!(server.dedup_hits() >= 1);
}

/// Adaptive shedding, tenant-weighted: with a queueing-delay budget
/// configured, slow dispatches push the EWMA over it and a request
/// arriving while *its own tenant* already has one in flight is
/// refused `Overloaded` (counted separately in `shed_adaptive`) — but
/// a quiet tenant's lone request is still admitted through the same
/// overloaded window, so one noisy tenant cannot starve the rest. No
/// static `max_inflight` cap is set.
#[test]
fn adaptive_shed_refuses_when_queueing_delay_over_budget() {
    let server = server_with(ServerConfig {
        shed_queue_delay: Some(Duration::from_millis(40)),
        ..ServerConfig::default()
    });
    setup_int_class(&server);
    let addr = server.local_addr().to_string();

    let a = HipacClient::connect(&*addr).unwrap();
    let ta = a.begin().unwrap();
    let oid = a.insert(ta, "t", vec![Value::from(1)]).unwrap();
    a.commit(ta).unwrap();
    // A holds the row's write lock in an open transaction.
    let ta = a.begin().unwrap();
    a.update(ta, oid, vec![("n".into(), Value::from(2))]).unwrap();

    // B is the noisy tenant: a fixed client_id so a raw probe below
    // can arrive under the *same* tenant with a non-colliding seq.
    let b = HipacClient::connect_with(
        &*addr,
        ClientConfig {
            client_id: 0xB0B,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let c = HipacClient::connect(&*addr).unwrap();
    let tb = b.begin().unwrap();
    // B: two deadline-bound updates against the held lock. The first
    // (~400ms) drives the dispatch EWMA to ~50ms > 40ms; the second
    // keeps one of B's requests in flight while the probes arrive.
    let b_thread = std::thread::spawn(move || {
        for _ in 0..2 {
            let _ = b.request_with_deadline(
                Command::Update {
                    txn: tb,
                    oid,
                    assignments: vec![("n".into(), Value::from(3))],
                },
                Some(Duration::from_millis(400)),
            );
        }
        let _ = b.abort(tb);
    });
    std::thread::sleep(Duration::from_millis(550));

    // A second request from B's tenant (same client_id, fresh seq so
    // the dedup window stays out of the way) is shed.
    let probe = |stream: &mut TcpStream, id: u64, seq: u64| {
        let meta = RequestMeta {
            client_id: 0xB0B,
            seq,
            deadline_ms: 0,
        };
        stream
            .write_all(&Frame::Request { id, meta, command: Command::Begin }.encode())
            .unwrap();
        loop {
            match Frame::read_from(stream).unwrap().expect("reply") {
                Frame::Response { id: rid, reply } if rid == id => return reply,
                Frame::Response { .. } | Frame::Push(_) => continue,
                other => panic!("unexpected frame {other:?}"),
            }
        }
    };
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    match probe(&mut raw, 1, 5000) {
        Reply::Err { kind, message } => {
            assert_eq!(kind, "Overloaded", "{message}");
            assert!(message.contains("queueing delay"), "{message}");
        }
        other => panic!("expected adaptive Overloaded, got {other:?}"),
    }
    assert!(server.shed_adaptive() >= 1, "shed_adaptive gauge counted");

    // C is a different tenant with nothing in flight: admitted through
    // the very same overloaded window.
    let tc = c.begin().expect("quiet tenant starved by noisy tenant");
    c.abort(tc).unwrap();

    b_thread.join().unwrap();
    a.abort(ta).unwrap();
    // With the contention gone and traffic sparse, even the noisy
    // tenant's lone request is admitted again: the signal can decay
    // instead of latching shut.
    match probe(&mut raw, 2, 5001) {
        Reply::Txn(_) => {}
        other => panic!("lone request after drain produced {other:?}"),
    }
}

/// Raw request/response roundtrip helper for version-negotiation
/// tests: one frame out, matching response back, pushes skipped.
fn raw_roundtrip(stream: &mut TcpStream, id: u64, meta: RequestMeta, command: Command) -> Reply {
    stream
        .write_all(&Frame::Request { id, meta, command }.encode())
        .unwrap();
    loop {
        match Frame::read_from(stream).unwrap().expect("reply") {
            Frame::Response { id: rid, reply } if rid == id => return reply,
            Frame::Response { .. } | Frame::Push(_) => continue,
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

/// Version negotiation is a clamp to the server's supported range:
/// in-range offers echo back, newer offers settle on v9, ancient
/// offers are clamped up to v4 (the client refuses on its side).
#[test]
fn ping_negotiation_clamps_to_supported_range() {
    let server = server();
    for (offered, want) in [(1u32, 4u32), (4, 4), (5, 5), (6, 6), (7, 7), (8, 8), (9, 9), (99, 9)] {
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        match raw_roundtrip(
            &mut conn,
            1,
            RequestMeta::default(),
            Command::Ping { version: offered },
        ) {
            Reply::Pong { version } => {
                assert_eq!(version, want, "offer {offered} negotiated {version}")
            }
            other => panic!("ping {offered} produced {other:?}"),
        }
    }
}

/// A pre-v8 peer against an auth-enabled server: `Auth` is refused
/// `Unsupported`, keyed requests are refused `AuthFailed`, but unkeyed
/// traffic still works — the session is confined to the
/// unauthenticated tenant class instead of being cut off.
#[test]
fn pre_v8_peer_lands_in_unauthenticated_class() {
    let server = server_with(ServerConfig {
        auth_secret: Some(b"mixed-version-secret".to_vec()),
        ..ServerConfig::default()
    });
    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    match raw_roundtrip(&mut conn, 1, RequestMeta::default(), Command::Ping { version: 7 }) {
        Reply::Pong { version } => assert_eq!(version, 7),
        other => panic!("ping produced {other:?}"),
    }
    // The v7 session cannot even present a token...
    let token = hipac_net::auth::session_token(b"mixed-version-secret", 42).to_vec();
    match raw_roundtrip(
        &mut conn,
        2,
        RequestMeta::default(),
        Command::Auth { client_id: 42, token },
    ) {
        Reply::Err { kind, message } => {
            assert_eq!(kind, "Unsupported", "{message}");
            assert!(message.contains("v8"), "{message}");
        }
        other => panic!("pre-v8 auth produced {other:?}"),
    }
    // ...so its keyed requests are refused per the identity gate...
    let keyed = RequestMeta {
        client_id: 42,
        seq: 1,
        deadline_ms: 0,
    };
    match raw_roundtrip(&mut conn, 3, keyed, Command::Begin) {
        Reply::Err { kind, message } => assert_eq!(kind, "AuthFailed", "{message}"),
        other => panic!("keyed pre-v8 begin produced {other:?}"),
    }
    // ...but unkeyed traffic is served from the unauthenticated class.
    match raw_roundtrip(&mut conn, 4, RequestMeta::default(), Command::Begin) {
        Reply::Txn(t) => {
            assert_eq!(raw_roundtrip(&mut conn, 5, RequestMeta::default(), Command::Abort { txn: t }), Reply::Ok)
        }
        other => panic!("unkeyed pre-v8 begin produced {other:?}"),
    }
}

/// An old peer must never see v8-only material: with nonzero v8
/// counters on the server, a v4 session's `Stats` reply decodes with
/// those fields absent (zero) while a v8 session sees them.
#[test]
fn old_peer_stats_carry_no_v8_fields() {
    let server = server_with(ServerConfig {
        auth_secret: Some(b"mixed-version-secret".to_vec()),
        ..ServerConfig::default()
    });
    // Drive auth_failures nonzero from a v8 session with a bad token.
    let mut v8 = TcpStream::connect(server.local_addr()).unwrap();
    match raw_roundtrip(&mut v8, 1, RequestMeta::default(), Command::Ping { version: 8 }) {
        Reply::Pong { version } => assert_eq!(version, 8),
        other => panic!("ping produced {other:?}"),
    }
    match raw_roundtrip(
        &mut v8,
        2,
        RequestMeta::default(),
        Command::Auth { client_id: 42, token: vec![0u8; 32] },
    ) {
        Reply::Err { kind, .. } => assert_eq!(kind, "AuthFailed"),
        other => panic!("bad token produced {other:?}"),
    }
    match raw_roundtrip(&mut v8, 3, RequestMeta::default(), Command::Stats) {
        Reply::Stats(s) => assert!(s.auth_failures >= 1, "v8 peer sees live counter"),
        other => panic!("stats produced {other:?}"),
    }

    let mut v4 = TcpStream::connect(server.local_addr()).unwrap();
    match raw_roundtrip(&mut v4, 1, RequestMeta::default(), Command::Ping { version: 4 }) {
        Reply::Pong { version } => assert_eq!(version, 4),
        other => panic!("ping produced {other:?}"),
    }
    match raw_roundtrip(&mut v4, 2, RequestMeta::default(), Command::Stats) {
        Reply::Stats(s) => {
            assert_eq!(s.auth_failures, 0, "v8 field leaked into a v4 reply");
            assert_eq!(s.tenants_active, 0);
            assert_eq!(s.tenant_shed_requests, 0);
        }
        other => panic!("stats produced {other:?}"),
    }
}

/// The shared per-address circuit breaker: repeated dial failures trip
/// it open (fast typed refusal instead of a connect timeout per call),
/// and after the cooldown a half-open probe against a revived server
/// closes it again, counting one trip and one reset.
#[test]
fn circuit_breaker_trips_and_recovers() {
    // Reserve a port that never accepted a connection, so it can be
    // rebound later without TIME_WAIT interference.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let config = ClientConfig {
        max_retries: 0,
        backoff: Duration::from_millis(1),
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_millis(100),
        ..ClientConfig::default()
    };

    // Nothing listens: the dial fails and trips the breaker...
    let e1 = match HipacClient::connect_with(&*addr, config.clone()) {
        Err(e) => e,
        Ok(_) => panic!("dial against an empty port succeeded"),
    };
    assert!(matches!(e1, WireError::Io(_) | WireError::Transport(_)), "{e1:?}");
    // ...so the next attempt inside the cooldown is refused fast.
    let e2 = match HipacClient::connect_with(&*addr, config.clone()) {
        Err(e) => e,
        Ok(_) => panic!("open breaker admitted a dial"),
    };
    match &e2 {
        WireError::Transport(msg) => assert!(msg.contains("circuit open"), "{msg}"),
        other => panic!("expected fast circuit-open refusal, got {other:?}"),
    }

    // Revive the address and let the cooldown lapse: the half-open
    // probe succeeds and the breaker closes.
    let db = Arc::new(ActiveDatabase::open_in_memory().unwrap());
    let _server = HipacServer::bind(db, &*addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let client = HipacClient::connect_with(&*addr, config).unwrap();
    client.stats().unwrap();
    assert!(client.breaker_trips() >= 1, "breaker tripped at least once");
    assert!(client.breaker_resets() >= 1, "breaker reset after the probe");
}
