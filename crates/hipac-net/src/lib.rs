//! hipac-net: the network service layer of the HiPAC active DBMS.
//!
//! HiPAC's architecture (Figure 4.1 of the paper) exposes four groups
//! of operations to applications — transaction control, data
//! operations, event operations, and application requests flowing
//! *back* from the DBMS to the application (the §4.1 "role reversal").
//! This crate puts that surface on a socket:
//!
//! * [`proto`] — a length-prefixed binary wire protocol encoding
//!   requests, responses, and server-push frames, built on the
//!   self-describing value codec from `hipac-common`.
//! * [`server`] — [`server::HipacServer`]: a concurrent TCP server
//!   wrapping an `ActiveDatabase`, session-per-connection on a bounded
//!   worker pool, per-session transaction tables, and delivery of
//!   rule-action application requests as push frames to subscribed
//!   clients.
//! * [`client`] — [`client::HipacClient`]: a blocking request/response
//!   client with push-frame handler registration.
//!
//! Protocol v3 adds end-to-end failure resilience: every request
//! carries an idempotency key (stable client id + monotonic sequence)
//! and an optional deadline. The server deduplicates retries through a
//! bounded reply window, propagates deadlines into engine lock waits,
//! sheds work past an admission budget with a typed `Overloaded`
//! error, and drains gracefully; the client reconnects with backoff,
//! re-subscribes its handlers, and retries transport failures
//! exactly-once.
//!
//! Protocol v4 makes that contract survive a server crash: on a
//! durable store, cached replies ride the WAL batch of the commit they
//! acknowledge (the reply journal, reloaded on recovery, with evicted
//! keys refused via a typed `ReplyEvicted`), and push frames carry a
//! per-subscription sequence number backed by a durable outbox — the
//! client acks each push after its handler runs ([`Command::AckPush`]),
//! unacked frames are redelivered on resubscribe, and the client
//! dedups redeliveries by sequence. v4 also adds adaptive shedding on
//! a dispatch-delay EWMA and a client-side per-address circuit
//! breaker. See DESIGN.md §7 and the `hipac-check::restart` torture
//! for the proof obligations.

pub mod client;
pub mod proto;
pub mod reactor;
pub mod server;

pub use client::{ClientConfig, FleetClient, HipacClient};
pub use proto::{Command, Frame, PushEvent, Reply, ReplMsg, RequestMeta, WireError};
pub use server::{HipacServer, ServerConfig};
