//! hipac-net: the network service layer of the HiPAC active DBMS.
//!
//! HiPAC's architecture (Figure 4.1 of the paper) exposes four groups
//! of operations to applications — transaction control, data
//! operations, event operations, and application requests flowing
//! *back* from the DBMS to the application (the §4.1 "role reversal").
//! This crate puts that surface on a socket:
//!
//! * [`proto`] — a length-prefixed binary wire protocol encoding
//!   requests, responses, and server-push frames, built on the
//!   self-describing value codec from `hipac-common`.
//! * [`server`] — [`server::HipacServer`]: a concurrent TCP server
//!   wrapping an `ActiveDatabase`, session-per-connection on a bounded
//!   worker pool, per-session transaction tables, and delivery of
//!   rule-action application requests as push frames to subscribed
//!   clients.
//! * [`client`] — [`client::HipacClient`]: a blocking request/response
//!   client with push-frame handler registration.
//!
//! Protocol v3 adds end-to-end failure resilience: every request
//! carries an idempotency key (stable client id + monotonic sequence)
//! and an optional deadline. The server deduplicates retries through a
//! bounded reply window, propagates deadlines into engine lock waits,
//! sheds work past an admission budget with a typed `Overloaded`
//! error, and drains gracefully; the client reconnects with backoff,
//! re-subscribes its handlers, and retries transport failures
//! exactly-once.
//!
//! Protocol v4 makes that contract survive a server crash: on a
//! durable store, cached replies ride the WAL batch of the commit they
//! acknowledge (the reply journal, reloaded on recovery, with evicted
//! keys refused via a typed `ReplyEvicted`), and push frames carry a
//! per-subscription sequence number backed by a durable outbox — the
//! client acks each push after its handler runs ([`Command::AckPush`]),
//! unacked frames are redelivered on resubscribe, and the client
//! dedups redeliveries by sequence. v4 also adds adaptive shedding on
//! a dispatch-delay EWMA and a client-side per-address circuit
//! breaker. See DESIGN.md §7 and the `hipac-check::restart` torture
//! for the proof obligations.
//!
//! Protocol v8 hardens the server for multiple tenants: sessions
//! authenticate with an HMAC token over a shared server secret
//! ([`auth`], [`Command::Auth`]) binding the connection to its
//! `client_id`, so journal replays, push redelivery, and acks are only
//! honored for the proven identity; admission control is hung off the
//! tenant (per-tenant inflight caps and dispatch-delay EWMAs replace
//! the single global gate); and a slow subscriber whose durable outbox
//! exceeds a byte/age budget is dead-lettered with a typed
//! `SubscriberEvicted` engine event that user rules can fire on. See
//! DESIGN.md §9.

pub mod auth;
pub mod client;
pub mod proto;
pub mod reactor;
pub mod server;

pub use client::{ClientConfig, FleetClient, FleetMember, HipacClient};
pub use proto::{Command, Frame, PushEvent, Reply, ReplMsg, RequestMeta, WireError};
pub use server::{HipacServer, ServerConfig};
