//! The hipac-net wire protocol.
//!
//! Every frame on the wire is a 4-byte big-endian length followed by
//! that many payload bytes. The first payload byte is the frame kind:
//!
//! ```text
//! [u32 len] [kind u8] [body ...]
//!
//! kind 0  Request   uvarint id, meta (client_id, seq, deadline_ms
//!                   uvarints, 0 = absent), opcode u8, command body
//! kind 1  Response  uvarint id, status u8, reply body
//! kind 2  Push      push body (server -> client, unsolicited)
//! kind 3  Repl      replication stream message (v5, primary -> replica,
//!                   unsolicited after ReplSubscribe)
//! ```
//!
//! Bodies reuse the `hipac-common` codec: LEB128 varints, length-
//! prefixed strings, tag-byte self-describing [`Value`]s. The command
//! set is the application interface of the paper's Figure 4.1 — data
//! operations, transaction operations, event operations — plus
//! `Subscribe`, which enables the §4.1 role reversal over the network:
//! rule actions of the form *application request* are pushed to
//! subscribed clients as [`PushEvent`] frames.
//!
//! Frames are capped at [`MAX_FRAME`] bytes; both ends reject larger
//! lengths before allocating.

use hipac_common::codec::{
    get_bytes, get_kv_map, get_str, get_uvarint, get_value, put_bytes, put_kv_map, put_str,
    put_uvarint, put_value,
};
use hipac_common::{HipacError, ObjectId, TxnId, Value};
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};

/// Upper bound on a frame payload. Large enough for bulk query
/// results, small enough that a hostile length prefix cannot drive an
/// allocation storm.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Protocol version carried in `Hello`. Bump on incompatible change.
/// v2: Stats gained firings_parallel + pool_queue_depth.
/// v3: Request frames carry idempotency metadata (client id, sequence,
/// deadline); Stats gained the resilience counters.
/// v4: Push frames carry a per-subscription sequence number, clients
/// acknowledge them with `AckPush`, unacked pushes are redelivered on
/// re-subscribe; Stats gained shed_adaptive, journal_replays and
/// pushes_redelivered.
/// v5: replication — the `Repl` frame kind (WAL batch / snapshot /
/// heartbeat stream), `ReplSubscribe` + `ReplProgress` opcodes, and six
/// replication gauges appended to Stats. Negotiated additively: both
/// ends answer a `Ping { version: v }` with `min(v, own)` and speak the
/// agreed version, so a v4 peer never sees a v5-only construct.
/// v6: rule-matching gauges — five discrimination-network / memo
/// counters appended to Stats (same additive presence-based decoding
/// as the v5 block).
/// v7: hot-path gauges — group-commit cohort counters and the reactor
/// shard count appended to Stats (additive, presence-decoded).
/// v8: multi-tenant hardening — the `Auth` opcode (HMAC session token
/// binding the connection to its `client_id`), and seven tenancy /
/// breaker gauges appended to Stats (additive, presence-decoded).
/// v≤7 peers negotiate down, never see the new constructs, and are
/// confined to the server's `unauthenticated` tenant class.
/// v9: epoch-fenced replication — `ReplSubscribe` carries the
/// subscriber's epoch, `ReplProgress` carries epoch + anti-entropy
/// stream digest, `Batch`/`Heartbeat`/`SnapshotEnd` carry the
/// primary's epoch, and nine fencing/quorum/digest gauges are appended
/// to Stats. All fields are appended in terminal positions and decoded
/// by presence, so v≤8 peers interoperate (they simply ride epoch 0,
/// which never fences).
pub const PROTOCOL_VERSION: u32 = 9;

/// Oldest protocol version this build still speaks (the v5–v9
/// additions are gated on the negotiated version, everything else is
/// unchanged since v4).
pub const MIN_PROTOCOL_VERSION: u32 = 4;

// Frame kinds.
const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;
const KIND_PUSH: u8 = 2;
const KIND_REPL: u8 = 3;

/// Errors surfaced by the protocol layer and the client.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The server executed the command and the engine returned an
    /// error. `kind` is the `HipacError` variant name; `message` its
    /// display text.
    Remote { kind: String, message: String },
    /// Transport failure (connection reset, timeout, ...).
    Io(String),
    /// Malformed or unexpected frame.
    Protocol(String),
    /// The connection failed while a request was in flight and the
    /// retry budget (if any) was exhausted before a definite reply
    /// arrived. The request may or may not have been applied — it is
    /// *at most once*; the client remains usable and reconnects on
    /// the next request.
    Transport(String),
    /// The request's deadline expired on the client before a definite
    /// reply arrived.
    Timeout(String),
}

impl WireError {
    /// True when the remote error means the enclosing transaction is
    /// dead (mirrors `HipacError::is_txn_fatal`).
    pub fn is_txn_fatal(&self) -> bool {
        matches!(
            self,
            WireError::Remote { kind, .. }
                if kind == "Deadlock"
                    || kind == "TxnAborted"
                    || kind == "LockTimeout"
                    || kind == "DeadlineExceeded"
        )
    }

    /// True when the error leaves the request outcome unknown
    /// (transport failure or client-side timeout): the command was
    /// applied *at most once*, and only a reply (or server-side state)
    /// can say which.
    pub fn is_indefinite(&self) -> bool {
        matches!(self, WireError::Transport(_) | WireError::Timeout(_))
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Remote { kind, message } => write!(f, "remote {kind}: {message}"),
            WireError::Io(msg) => write!(f, "connection error: {msg}"),
            WireError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            WireError::Transport(msg) => write!(f, "transport failure (outcome unknown): {msg}"),
            WireError::Timeout(msg) => write!(f, "request deadline expired: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

impl From<HipacError> for WireError {
    fn from(e: HipacError) -> Self {
        WireError::Remote {
            kind: variant_name(&e).to_owned(),
            message: e.to_string(),
        }
    }
}

/// The `HipacError` variant name, used as the wire error kind so the
/// client can classify without shipping the whole enum.
fn variant_name(e: &HipacError) -> &'static str {
    use HipacError::*;
    match e {
        UnknownClass(_) => "UnknownClass",
        UnknownAttribute(_) => "UnknownAttribute",
        UnknownObject(_) => "UnknownObject",
        DuplicateName(_) => "DuplicateName",
        TypeError(_) => "TypeError",
        ConstraintViolation(_) => "ConstraintViolation",
        InUse(_) => "InUse",
        UnknownTxn(_) => "UnknownTxn",
        InvalidTxnState { .. } => "InvalidTxnState",
        Deadlock(_) => "Deadlock",
        LockTimeout(_) => "LockTimeout",
        TxnAborted(_) => "TxnAborted",
        ParentNotActive(_) => "ParentNotActive",
        DeadlineExceeded(_) => "DeadlineExceeded",
        UnknownEvent(_) => "UnknownEvent",
        UnknownRule(_) => "UnknownRule",
        DuplicateRule(_) => "DuplicateRule",
        EventParamMismatch(_) => "EventParamMismatch",
        NoDerivableEvent(_) => "NoDerivableEvent",
        CascadeLimit { .. } => "CascadeLimit",
        NoApplicationHandler(_) => "NoApplicationHandler",
        UnboundParameter(_) => "UnboundParameter",
        ParseError { .. } => "ParseError",
        EvalError(_) => "EvalError",
        Io(_) => "Io",
        Corruption(_) => "Corruption",
        StorageNotFound(_) => "StorageNotFound",
        RecordTooLarge { .. } => "RecordTooLarge",
        WalCorrupt(_) => "WalCorrupt",
        ReplGap { .. } => "ReplGap",
        StaleEpoch { .. } => "StaleEpoch",
        Internal(_) => "Internal",
    }
}

/// An attribute definition as carried by `CreateClass`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAttr {
    pub name: String,
    /// `ValueType` discriminant, see [`type_code`].
    pub ty: u8,
    pub nullable: bool,
    pub indexed: bool,
}

/// Encode a `ValueType` as a stable wire byte.
pub fn type_code(ty: hipac_common::ValueType) -> u8 {
    use hipac_common::ValueType::*;
    match ty {
        Null => 0,
        Bool => 1,
        Int => 2,
        Float => 3,
        Str => 4,
        Bytes => 5,
        Ref => 6,
        Timestamp => 7,
        List => 8,
    }
}

/// Inverse of [`type_code`].
pub fn code_type(code: u8) -> Result<hipac_common::ValueType, WireError> {
    use hipac_common::ValueType::*;
    Ok(match code {
        0 => Null,
        1 => Bool,
        2 => Int,
        3 => Float,
        4 => Str,
        5 => Bytes,
        6 => Ref,
        7 => Timestamp,
        8 => List,
        other => return Err(WireError::Protocol(format!("bad type code {other}"))),
    })
}

/// A query result row on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    pub oid: u64,
    pub class: u64,
    pub values: Vec<Value>,
}

/// Engine statistics snapshot carried by the `Stats` reply. Mirrors
/// `hipac::EngineStats`; kept as a separate wire struct so the protocol
/// stays source-stable if the facade grows fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    pub signals_processed: u64,
    pub rules_triggered: u64,
    pub conditions_satisfied: u64,
    pub actions_executed: u64,
    pub store_evaluations: u64,
    pub delta_evaluations: u64,
    pub cache_hits: u64,
    pub deferred_txns: u64,
    pub deferred_firings: u64,
    pub pool_outstanding: u64,
    pub separate_errors: u64,
    pub firings_parallel: u64,
    pub pool_queue_depth: u64,
    // ---- v3 resilience counters ----
    pub active_connections: u64,
    pub shed_requests: u64,
    pub dedup_hits: u64,
    pub separate_retries: u64,
    pub separate_dead_letters: u64,
    // ---- v4 durable exactly-once counters ----
    pub shed_adaptive: u64,
    pub journal_replays: u64,
    pub pushes_redelivered: u64,
    // ---- v5 replication gauges (encoded only to v5 peers; decoded
    // by presence, so a v4 stats body reads them as zero) ----
    pub repl_role: u64,
    pub last_shipped_lsn: u64,
    pub last_applied_lsn: u64,
    pub repl_lag_bytes: u64,
    pub replica_pushes: u64,
    pub promotions: u64,
    // ---- v6 rule-matching gauges (encoded only to v6 peers; decoded
    // by presence like the v5 block) ----
    pub match_index_nodes: u64,
    pub match_probes: u64,
    pub match_pruned: u64,
    pub memo_hits: u64,
    pub memo_invalidations: u64,
    // ---- v7 hot-path gauges (encoded only to v7 peers; decoded by
    // presence like the v5/v6 blocks) ----
    pub group_commits: u64,
    pub group_commit_txns: u64,
    pub group_commit_largest: u64,
    pub reactor_shards: u64,
    // ---- v8 tenancy / breaker gauges (encoded only to v8 peers;
    // decoded by presence like the earlier blocks). The server encodes
    // breaker_trips / breaker_resets as zero — the client overlays its
    // process-wide circuit-breaker registry in `HipacClient::stats`. ----
    pub auth_failures: u64,
    pub tenants_active: u64,
    pub tenant_shed_requests: u64,
    pub pushes_shed: u64,
    pub subscribers_evicted: u64,
    pub breaker_trips: u64,
    pub breaker_resets: u64,
    // ---- v9 epoch-fencing / quorum / anti-entropy gauges (encoded
    // only to v9 peers; decoded by presence like the earlier blocks) ----
    pub repl_epoch: u64,
    pub repl_fence_prev: u64,
    pub repl_fence_start: u64,
    pub repl_peers: u64,
    pub repl_min_peer_applied: u64,
    pub repl_digest_ok_peers: u64,
    pub repl_digest_mismatches: u64,
    pub repl_quorum: u64,
    pub repl_quorum_ok: u64,
}

impl WireStats {
    fn encode(&self, buf: &mut Vec<u8>, version: u32) {
        for v in [
            self.signals_processed,
            self.rules_triggered,
            self.conditions_satisfied,
            self.actions_executed,
            self.store_evaluations,
            self.delta_evaluations,
            self.cache_hits,
            self.deferred_txns,
            self.deferred_firings,
            self.pool_outstanding,
            self.separate_errors,
            self.firings_parallel,
            self.pool_queue_depth,
            self.active_connections,
            self.shed_requests,
            self.dedup_hits,
            self.separate_retries,
            self.separate_dead_letters,
            self.shed_adaptive,
            self.journal_replays,
            self.pushes_redelivered,
        ] {
            put_uvarint(buf, v);
        }
        if version >= 5 {
            for v in [
                self.repl_role,
                self.last_shipped_lsn,
                self.last_applied_lsn,
                self.repl_lag_bytes,
                self.replica_pushes,
                self.promotions,
            ] {
                put_uvarint(buf, v);
            }
        }
        if version >= 6 {
            for v in [
                self.match_index_nodes,
                self.match_probes,
                self.match_pruned,
                self.memo_hits,
                self.memo_invalidations,
            ] {
                put_uvarint(buf, v);
            }
        }
        if version >= 7 {
            for v in [
                self.group_commits,
                self.group_commit_txns,
                self.group_commit_largest,
                self.reactor_shards,
            ] {
                put_uvarint(buf, v);
            }
        }
        if version >= 8 {
            for v in [
                self.auth_failures,
                self.tenants_active,
                self.tenant_shed_requests,
                self.pushes_shed,
                self.subscribers_evicted,
                self.breaker_trips,
                self.breaker_resets,
            ] {
                put_uvarint(buf, v);
            }
        }
        if version >= 9 {
            for v in [
                self.repl_epoch,
                self.repl_fence_prev,
                self.repl_fence_start,
                self.repl_peers,
                self.repl_min_peer_applied,
                self.repl_digest_ok_peers,
                self.repl_digest_mismatches,
                self.repl_quorum,
                self.repl_quorum_ok,
            ] {
                put_uvarint(buf, v);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<WireStats, WireError> {
        let mut fields = [0u64; 21];
        for f in &mut fields {
            *f = get_uvarint(buf, pos)?;
        }
        // The stats body is terminal in its reply, so the v5 gauges are
        // detected by presence: a v4 peer's 21-field body leaves them
        // zero.
        let mut repl = [0u64; 6];
        if *pos < buf.len() {
            for f in &mut repl {
                *f = get_uvarint(buf, pos)?;
            }
        }
        let [repl_role, last_shipped_lsn, last_applied_lsn, repl_lag_bytes, replica_pushes, promotions] =
            repl;
        let mut matching = [0u64; 5];
        if *pos < buf.len() {
            for f in &mut matching {
                *f = get_uvarint(buf, pos)?;
            }
        }
        let [match_index_nodes, match_probes, match_pruned, memo_hits, memo_invalidations] =
            matching;
        let mut hot = [0u64; 4];
        if *pos < buf.len() {
            for f in &mut hot {
                *f = get_uvarint(buf, pos)?;
            }
        }
        let [group_commits, group_commit_txns, group_commit_largest, reactor_shards] = hot;
        let mut tenancy = [0u64; 7];
        if *pos < buf.len() {
            for f in &mut tenancy {
                *f = get_uvarint(buf, pos)?;
            }
        }
        let [auth_failures, tenants_active, tenant_shed_requests, pushes_shed, subscribers_evicted, breaker_trips, breaker_resets] =
            tenancy;
        let mut fencing = [0u64; 9];
        if *pos < buf.len() {
            for f in &mut fencing {
                *f = get_uvarint(buf, pos)?;
            }
        }
        let [repl_epoch, repl_fence_prev, repl_fence_start, repl_peers, repl_min_peer_applied, repl_digest_ok_peers, repl_digest_mismatches, repl_quorum, repl_quorum_ok] =
            fencing;
        let [signals_processed, rules_triggered, conditions_satisfied, actions_executed, store_evaluations, delta_evaluations, cache_hits, deferred_txns, deferred_firings, pool_outstanding, separate_errors, firings_parallel, pool_queue_depth, active_connections, shed_requests, dedup_hits, separate_retries, separate_dead_letters, shed_adaptive, journal_replays, pushes_redelivered] =
            fields;
        Ok(WireStats {
            signals_processed,
            rules_triggered,
            conditions_satisfied,
            actions_executed,
            store_evaluations,
            delta_evaluations,
            cache_hits,
            deferred_txns,
            deferred_firings,
            pool_outstanding,
            separate_errors,
            firings_parallel,
            pool_queue_depth,
            active_connections,
            shed_requests,
            dedup_hits,
            separate_retries,
            separate_dead_letters,
            shed_adaptive,
            journal_replays,
            pushes_redelivered,
            repl_role,
            last_shipped_lsn,
            last_applied_lsn,
            repl_lag_bytes,
            replica_pushes,
            promotions,
            match_index_nodes,
            match_probes,
            match_pruned,
            memo_hits,
            memo_invalidations,
            group_commits,
            group_commit_txns,
            group_commit_largest,
            reactor_shards,
            auth_failures,
            tenants_active,
            tenant_shed_requests,
            pushes_shed,
            subscribers_evicted,
            breaker_trips,
            breaker_resets,
            repl_epoch,
            repl_fence_prev,
            repl_fence_start,
            repl_peers,
            repl_min_peer_applied,
            repl_digest_ok_peers,
            repl_digest_mismatches,
            repl_quorum,
            repl_quorum_ok,
        })
    }
}

/// Client-to-server commands: the Figure 4.1 operation surface.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness check / version negotiation.
    Ping { version: u32 },
    // ---- transaction operations ----
    Begin,
    BeginChild { parent: TxnId },
    Commit { txn: TxnId },
    Abort { txn: TxnId },
    // ---- data operations ----
    CreateClass {
        txn: TxnId,
        name: String,
        superclass: Option<String>,
        attrs: Vec<WireAttr>,
    },
    Insert {
        txn: TxnId,
        class: String,
        values: Vec<Value>,
    },
    Update {
        txn: TxnId,
        oid: u64,
        assignments: Vec<(String, Value)>,
    },
    Delete { txn: TxnId, oid: u64 },
    /// Query text in the `hipac-object` surface syntax
    /// (`from <class> [where <expr>] [select a, b]`), with optional
    /// named parameters.
    Query {
        txn: TxnId,
        text: String,
        params: HashMap<String, Value>,
    },
    // ---- event operations ----
    DefineEvent { name: String, params: Vec<String> },
    SignalEvent {
        name: String,
        args: HashMap<String, Value>,
        txn: Option<TxnId>,
    },
    // ---- rule operations ----
    /// `hipac-rules` codec bytes of a `RuleDef` (see
    /// `hipac_rules::codec::encode_rule`).
    CreateRule { txn: TxnId, rule: Vec<u8> },
    DropRule { txn: TxnId, name: String },
    EnableRule { txn: TxnId, name: String },
    DisableRule { txn: TxnId, name: String },
    // ---- application operations (§4.1 role reversal) ----
    /// Register this connection as the application server for handler
    /// `name`: rule actions addressed to it are pushed here.
    Subscribe { handler: String },
    Unsubscribe { handler: String },
    /// Acknowledge the push frame with sequence `seq` on subscription
    /// `handler`: the server drops it from the redelivery outbox. Sent
    /// by the client after the push handler returns (frame id 0 —
    /// fire-and-forget, the `Ok` reply is discarded).
    AckPush { handler: String, seq: u64 },
    // ---- observability ----
    Stats,
    // ---- replication (v5) ----
    /// Register this connection as a replication follower. The server
    /// replies `Ok` and then streams [`ReplMsg`] frames on the same
    /// connection: batches from `start_lsn` (or a snapshot when that
    /// LSN is out of range) followed by the live tail.
    ///
    /// `epoch` (v9) is the subscriber's replication epoch. A
    /// subscriber *behind* the primary's epoch gets a snapshot
    /// bootstrap regardless of `start_lsn` — LSN spaces are never
    /// comparable across epochs. A subscriber *ahead* of the primary
    /// proves the primary has been deposed: the request is refused
    /// with a typed `StaleEpoch` error and the ex-primary fences
    /// itself read-only.
    ReplSubscribe { start_lsn: u64, epoch: u64 },
    /// Follower → primary: the follower's store durably reflects the
    /// primary's log up to `applied_lsn`. Drives the primary's
    /// semi-sync commit gate and its lag gauges (frame id 0 —
    /// fire-and-forget).
    ///
    /// `epoch` (v9): the sender's replication epoch — a value newer
    /// than the receiver's fences the receiver (this is also the heal
    /// path's demote signal). `digest` (v9): the sender's anti-entropy
    /// fold over every batch applied this subscription (see
    /// `hipac_storage::fold_digest`); the primary compares it against
    /// its per-peer shipped fold at `applied_lsn`.
    ReplProgress { applied_lsn: u64, epoch: u64, digest: u64 },
    // ---- authentication (v8) ----
    /// Bind this connection to identity `client_id`. `token` is
    /// `HMAC-SHA256(server_secret, client_id.to_be_bytes())` (see
    /// `hipac_net::auth::session_token`). On a server with auth
    /// enabled, keyed requests, push redelivery, and `AckPush` are only
    /// honored once the session has authenticated as the matching
    /// identity; a bad token gets a typed `AuthFailed` refusal.
    Auth { client_id: u64, token: Vec<u8> },
}

// Command opcodes. Stable on the wire: never renumber, only append.
const OP_PING: u8 = 0;
const OP_BEGIN: u8 = 1;
const OP_BEGIN_CHILD: u8 = 2;
const OP_COMMIT: u8 = 3;
const OP_ABORT: u8 = 4;
const OP_CREATE_CLASS: u8 = 5;
const OP_INSERT: u8 = 6;
const OP_UPDATE: u8 = 7;
const OP_DELETE: u8 = 8;
const OP_QUERY: u8 = 9;
const OP_DEFINE_EVENT: u8 = 10;
const OP_SIGNAL_EVENT: u8 = 11;
const OP_CREATE_RULE: u8 = 12;
const OP_DROP_RULE: u8 = 13;
const OP_ENABLE_RULE: u8 = 14;
const OP_DISABLE_RULE: u8 = 15;
const OP_SUBSCRIBE: u8 = 16;
const OP_UNSUBSCRIBE: u8 = 17;
const OP_STATS: u8 = 18;
const OP_ACK_PUSH: u8 = 19;
const OP_REPL_SUBSCRIBE: u8 = 20;
const OP_REPL_PROGRESS: u8 = 21;
const OP_AUTH: u8 = 22;

impl Command {
    fn encode(&self, buf: &mut Vec<u8>, version: u32) {
        match self {
            Command::Ping { version } => {
                buf.push(OP_PING);
                put_uvarint(buf, u64::from(*version));
            }
            Command::Begin => buf.push(OP_BEGIN),
            Command::BeginChild { parent } => {
                buf.push(OP_BEGIN_CHILD);
                put_uvarint(buf, parent.0);
            }
            Command::Commit { txn } => {
                buf.push(OP_COMMIT);
                put_uvarint(buf, txn.0);
            }
            Command::Abort { txn } => {
                buf.push(OP_ABORT);
                put_uvarint(buf, txn.0);
            }
            Command::CreateClass {
                txn,
                name,
                superclass,
                attrs,
            } => {
                buf.push(OP_CREATE_CLASS);
                put_uvarint(buf, txn.0);
                put_str(buf, name);
                match superclass {
                    None => buf.push(0),
                    Some(s) => {
                        buf.push(1);
                        put_str(buf, s);
                    }
                }
                put_uvarint(buf, attrs.len() as u64);
                for a in attrs {
                    put_str(buf, &a.name);
                    buf.push(a.ty);
                    buf.push(u8::from(a.nullable) | (u8::from(a.indexed) << 1));
                }
            }
            Command::Insert { txn, class, values } => {
                buf.push(OP_INSERT);
                put_uvarint(buf, txn.0);
                put_str(buf, class);
                put_uvarint(buf, values.len() as u64);
                for v in values {
                    put_value(buf, v);
                }
            }
            Command::Update {
                txn,
                oid,
                assignments,
            } => {
                buf.push(OP_UPDATE);
                put_uvarint(buf, txn.0);
                put_uvarint(buf, *oid);
                put_uvarint(buf, assignments.len() as u64);
                for (name, v) in assignments {
                    put_str(buf, name);
                    put_value(buf, v);
                }
            }
            Command::Delete { txn, oid } => {
                buf.push(OP_DELETE);
                put_uvarint(buf, txn.0);
                put_uvarint(buf, *oid);
            }
            Command::Query { txn, text, params } => {
                buf.push(OP_QUERY);
                put_uvarint(buf, txn.0);
                put_str(buf, text);
                put_kv_map(buf, params);
            }
            Command::DefineEvent { name, params } => {
                buf.push(OP_DEFINE_EVENT);
                put_str(buf, name);
                put_uvarint(buf, params.len() as u64);
                for p in params {
                    put_str(buf, p);
                }
            }
            Command::SignalEvent { name, args, txn } => {
                buf.push(OP_SIGNAL_EVENT);
                put_str(buf, name);
                put_kv_map(buf, args);
                match txn {
                    None => buf.push(0),
                    Some(t) => {
                        buf.push(1);
                        put_uvarint(buf, t.0);
                    }
                }
            }
            Command::CreateRule { txn, rule } => {
                buf.push(OP_CREATE_RULE);
                put_uvarint(buf, txn.0);
                put_bytes(buf, rule);
            }
            Command::DropRule { txn, name } => {
                buf.push(OP_DROP_RULE);
                put_uvarint(buf, txn.0);
                put_str(buf, name);
            }
            Command::EnableRule { txn, name } => {
                buf.push(OP_ENABLE_RULE);
                put_uvarint(buf, txn.0);
                put_str(buf, name);
            }
            Command::DisableRule { txn, name } => {
                buf.push(OP_DISABLE_RULE);
                put_uvarint(buf, txn.0);
                put_str(buf, name);
            }
            Command::Subscribe { handler } => {
                buf.push(OP_SUBSCRIBE);
                put_str(buf, handler);
            }
            Command::Unsubscribe { handler } => {
                buf.push(OP_UNSUBSCRIBE);
                put_str(buf, handler);
            }
            Command::AckPush { handler, seq } => {
                buf.push(OP_ACK_PUSH);
                put_str(buf, handler);
                put_uvarint(buf, *seq);
            }
            Command::Stats => buf.push(OP_STATS),
            Command::ReplSubscribe { start_lsn, epoch } => {
                buf.push(OP_REPL_SUBSCRIBE);
                put_uvarint(buf, *start_lsn);
                // Terminal in a Request frame, so a v9 peer decodes the
                // epoch by presence; a v8 encoder simply omits it.
                if version >= 9 {
                    put_uvarint(buf, *epoch);
                }
            }
            Command::ReplProgress {
                applied_lsn,
                epoch,
                digest,
            } => {
                buf.push(OP_REPL_PROGRESS);
                put_uvarint(buf, *applied_lsn);
                if version >= 9 {
                    put_uvarint(buf, *epoch);
                    put_uvarint(buf, *digest);
                }
            }
            Command::Auth { client_id, token } => {
                buf.push(OP_AUTH);
                put_uvarint(buf, *client_id);
                put_bytes(buf, token);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<Command, WireError> {
        let op = *buf
            .get(*pos)
            .ok_or_else(|| WireError::Protocol("truncated opcode".into()))?;
        *pos += 1;
        Ok(match op {
            OP_PING => Command::Ping {
                version: get_uvarint(buf, pos)? as u32,
            },
            OP_BEGIN => Command::Begin,
            OP_BEGIN_CHILD => Command::BeginChild {
                parent: TxnId(get_uvarint(buf, pos)?),
            },
            OP_COMMIT => Command::Commit {
                txn: TxnId(get_uvarint(buf, pos)?),
            },
            OP_ABORT => Command::Abort {
                txn: TxnId(get_uvarint(buf, pos)?),
            },
            OP_CREATE_CLASS => {
                let txn = TxnId(get_uvarint(buf, pos)?);
                let name = get_str(buf, pos)?;
                let superclass = match next_byte(buf, pos)? {
                    0 => None,
                    1 => Some(get_str(buf, pos)?),
                    other => {
                        return Err(WireError::Protocol(format!("bad option tag {other}")))
                    }
                };
                let n = get_uvarint(buf, pos)? as usize;
                bounded(n, buf, *pos)?;
                let mut attrs = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(buf, pos)?;
                    let ty = next_byte(buf, pos)?;
                    let flags = next_byte(buf, pos)?;
                    attrs.push(WireAttr {
                        name,
                        ty,
                        nullable: flags & 1 != 0,
                        indexed: flags & 2 != 0,
                    });
                }
                Command::CreateClass {
                    txn,
                    name,
                    superclass,
                    attrs,
                }
            }
            OP_INSERT => {
                let txn = TxnId(get_uvarint(buf, pos)?);
                let class = get_str(buf, pos)?;
                let n = get_uvarint(buf, pos)? as usize;
                bounded(n, buf, *pos)?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(get_value(buf, pos)?);
                }
                Command::Insert { txn, class, values }
            }
            OP_UPDATE => {
                let txn = TxnId(get_uvarint(buf, pos)?);
                let oid = get_uvarint(buf, pos)?;
                let n = get_uvarint(buf, pos)? as usize;
                bounded(n, buf, *pos)?;
                let mut assignments = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(buf, pos)?;
                    let v = get_value(buf, pos)?;
                    assignments.push((name, v));
                }
                Command::Update {
                    txn,
                    oid,
                    assignments,
                }
            }
            OP_DELETE => Command::Delete {
                txn: TxnId(get_uvarint(buf, pos)?),
                oid: get_uvarint(buf, pos)?,
            },
            OP_QUERY => Command::Query {
                txn: TxnId(get_uvarint(buf, pos)?),
                text: get_str(buf, pos)?,
                params: get_kv_map(buf, pos)?,
            },
            OP_DEFINE_EVENT => {
                let name = get_str(buf, pos)?;
                let n = get_uvarint(buf, pos)? as usize;
                bounded(n, buf, *pos)?;
                let mut params = Vec::with_capacity(n);
                for _ in 0..n {
                    params.push(get_str(buf, pos)?);
                }
                Command::DefineEvent { name, params }
            }
            OP_SIGNAL_EVENT => {
                let name = get_str(buf, pos)?;
                let args = get_kv_map(buf, pos)?;
                let txn = match next_byte(buf, pos)? {
                    0 => None,
                    1 => Some(TxnId(get_uvarint(buf, pos)?)),
                    other => {
                        return Err(WireError::Protocol(format!("bad option tag {other}")))
                    }
                };
                Command::SignalEvent { name, args, txn }
            }
            OP_CREATE_RULE => Command::CreateRule {
                txn: TxnId(get_uvarint(buf, pos)?),
                rule: get_bytes(buf, pos)?.to_vec(),
            },
            OP_DROP_RULE => Command::DropRule {
                txn: TxnId(get_uvarint(buf, pos)?),
                name: get_str(buf, pos)?,
            },
            OP_ENABLE_RULE => Command::EnableRule {
                txn: TxnId(get_uvarint(buf, pos)?),
                name: get_str(buf, pos)?,
            },
            OP_DISABLE_RULE => Command::DisableRule {
                txn: TxnId(get_uvarint(buf, pos)?),
                name: get_str(buf, pos)?,
            },
            OP_SUBSCRIBE => Command::Subscribe {
                handler: get_str(buf, pos)?,
            },
            OP_UNSUBSCRIBE => Command::Unsubscribe {
                handler: get_str(buf, pos)?,
            },
            OP_ACK_PUSH => Command::AckPush {
                handler: get_str(buf, pos)?,
                seq: get_uvarint(buf, pos)?,
            },
            OP_STATS => Command::Stats,
            OP_REPL_SUBSCRIBE => {
                let start_lsn = get_uvarint(buf, pos)?;
                // v9 appends the subscriber epoch; a v8 body ends here
                // and reads as epoch 0 (the never-fenced pre-failover
                // world).
                let epoch = if *pos < buf.len() {
                    get_uvarint(buf, pos)?
                } else {
                    0
                };
                Command::ReplSubscribe { start_lsn, epoch }
            }
            OP_REPL_PROGRESS => {
                let applied_lsn = get_uvarint(buf, pos)?;
                let (epoch, digest) = if *pos < buf.len() {
                    (get_uvarint(buf, pos)?, get_uvarint(buf, pos)?)
                } else {
                    (0, 0)
                };
                Command::ReplProgress {
                    applied_lsn,
                    epoch,
                    digest,
                }
            }
            OP_AUTH => Command::Auth {
                client_id: get_uvarint(buf, pos)?,
                token: get_bytes(buf, pos)?.to_vec(),
            },
            other => return Err(WireError::Protocol(format!("unknown opcode {other}"))),
        })
    }
}

/// Server replies.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Success with no payload.
    Ok,
    /// Pong, echoing the server's protocol version.
    Pong { version: u32 },
    /// A transaction id (`Begin`, `BeginChild`).
    Txn(TxnId),
    /// A newly created object (`Insert`).
    Object(ObjectId),
    /// A catalog id (`CreateClass`, `DefineEvent`, `CreateRule`).
    Id(u64),
    /// Query rows.
    Rows(Vec<WireRow>),
    /// Engine statistics (boxed: the stats block dwarfs every other
    /// variant).
    Stats(Box<WireStats>),
    /// The engine rejected the command.
    Err { kind: String, message: String },
}

const ST_OK: u8 = 0;
const ST_PONG: u8 = 1;
const ST_TXN: u8 = 2;
const ST_OBJECT: u8 = 3;
const ST_ID: u8 = 4;
const ST_ROWS: u8 = 5;
const ST_STATS: u8 = 6;
const ST_ERR: u8 = 7;

impl Reply {
    fn encode(&self, buf: &mut Vec<u8>, version: u32) {
        match self {
            Reply::Ok => buf.push(ST_OK),
            Reply::Pong { version } => {
                buf.push(ST_PONG);
                put_uvarint(buf, u64::from(*version));
            }
            Reply::Txn(t) => {
                buf.push(ST_TXN);
                put_uvarint(buf, t.0);
            }
            Reply::Object(o) => {
                buf.push(ST_OBJECT);
                put_uvarint(buf, o.raw());
            }
            Reply::Id(id) => {
                buf.push(ST_ID);
                put_uvarint(buf, *id);
            }
            Reply::Rows(rows) => {
                buf.push(ST_ROWS);
                put_uvarint(buf, rows.len() as u64);
                for row in rows {
                    put_uvarint(buf, row.oid);
                    put_uvarint(buf, row.class);
                    put_uvarint(buf, row.values.len() as u64);
                    for v in &row.values {
                        put_value(buf, v);
                    }
                }
            }
            Reply::Stats(s) => {
                buf.push(ST_STATS);
                s.encode(buf, version);
            }
            Reply::Err { kind, message } => {
                buf.push(ST_ERR);
                put_str(buf, kind);
                put_str(buf, message);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<Reply, WireError> {
        Ok(match next_byte(buf, pos)? {
            ST_OK => Reply::Ok,
            ST_PONG => Reply::Pong {
                version: get_uvarint(buf, pos)? as u32,
            },
            ST_TXN => Reply::Txn(TxnId(get_uvarint(buf, pos)?)),
            ST_OBJECT => Reply::Object(ObjectId(get_uvarint(buf, pos)?)),
            ST_ID => Reply::Id(get_uvarint(buf, pos)?),
            ST_ROWS => {
                let n = get_uvarint(buf, pos)? as usize;
                bounded(n, buf, *pos)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let oid = get_uvarint(buf, pos)?;
                    let class = get_uvarint(buf, pos)?;
                    let m = get_uvarint(buf, pos)? as usize;
                    bounded(m, buf, *pos)?;
                    let mut values = Vec::with_capacity(m);
                    for _ in 0..m {
                        values.push(get_value(buf, pos)?);
                    }
                    rows.push(WireRow { oid, class, values });
                }
                Reply::Rows(rows)
            }
            ST_STATS => Reply::Stats(Box::new(WireStats::decode(buf, pos)?)),
            ST_ERR => Reply::Err {
                kind: get_str(buf, pos)?,
                message: get_str(buf, pos)?,
            },
            other => return Err(WireError::Protocol(format!("unknown status {other}"))),
        })
    }

    /// Serialize standalone (no frame envelope). Used by the server's
    /// reply journal, which persists cached replies by value (always in
    /// the full current format — both ends of the journal are the same
    /// disk).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        self.encode(&mut buf, PROTOCOL_VERSION);
        buf
    }

    /// Inverse of [`Reply::to_bytes`]; rejects trailing garbage.
    pub fn from_bytes(buf: &[u8]) -> Result<Reply, WireError> {
        let mut pos = 0;
        let reply = Reply::decode(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(WireError::Protocol(format!(
                "trailing {} bytes after reply",
                buf.len() - pos
            )));
        }
        Ok(reply)
    }
}

/// Server-push payload: a rule action requested service from the
/// application (§4.1 role reversal).
#[derive(Debug, Clone, PartialEq)]
pub struct PushEvent {
    /// Per-subscription sequence number (v4). Starts at 1 and is
    /// monotonic per handler; the client acks it with
    /// [`Command::AckPush`] and dedups redeliveries by it. `0` means
    /// "unsequenced" (pre-v4 producer) and is neither acked nor
    /// deduplicated.
    pub seq: u64,
    /// The handler name the rule action addressed.
    pub handler: String,
    /// The request string from the rule action.
    pub request: String,
    /// Event parameter bindings of the triggering signal.
    pub args: HashMap<String, Value>,
}

/// Request metadata introduced in protocol v3: an idempotency key and
/// a deadline. `0` means "absent" for every field, so plain fire-once
/// requests pay three zero bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestMeta {
    /// Stable identity of the sending client, surviving reconnects.
    /// Together with `seq` it forms the idempotency key for the
    /// server's dedup window.
    pub client_id: u64,
    /// Client-monotonic request sequence number. A retry re-sends the
    /// *same* `(client_id, seq)`, so the server can replay the cached
    /// reply instead of re-executing.
    pub seq: u64,
    /// Relative deadline in milliseconds from server receipt. The
    /// server propagates it into lock waits; past-deadline requests
    /// abort with `DeadlineExceeded` instead of waiting on.
    pub deadline_ms: u64,
}

/// One message on the v5 replication stream (frame kind 3, primary →
/// replica, unsolicited after `ReplSubscribe`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// One committed WAL batch. Applying it and recording `next_lsn`
    /// as the follower's watermark must be atomic (see
    /// `DurableStore::apply_replicated`).
    ///
    /// `prev_lsn` is the shipper's stream-chain position before this
    /// batch — exactly the watermark the follower must hold for the
    /// batch to apply (it can exceed `start_lsn` only by skipped
    /// checkpoint/abort markers, never by data). A mismatch means the
    /// stream dropped or replayed a batch; the follower treats it as
    /// fatal and resubscribes from its durable watermark instead of
    /// silently diverging.
    /// `epoch` (v9): the shipping primary's replication epoch. A
    /// follower that has observed a newer epoch refuses the batch
    /// (`StaleEpoch`) instead of absorbing writes from a deposed
    /// primary; a follower on an older epoch adopts this one.
    Batch {
        prev_lsn: u64,
        start_lsn: u64,
        next_lsn: u64,
        txn: TxnId,
        ops: Vec<hipac_storage::StoreOp>,
        epoch: u64,
    },
    /// The follower's resume LSN fell out of the primary's retained
    /// log: a full state transfer follows as chunks, then an end
    /// marker. The follower buffers chunks and installs them
    /// atomically on `SnapshotEnd` (whose `epoch` — v9 — the follower
    /// adopts at the same instant).
    SnapshotBegin { snapshot_lsn: u64 },
    SnapshotChunk { pairs: Vec<(Vec<u8>, Vec<u8>)> },
    SnapshotEnd { snapshot_lsn: u64, epoch: u64 },
    /// Idle keep-alive carrying the primary's durable frontier so the
    /// follower can compute byte lag even when nothing ships, plus
    /// (v9) the primary's epoch — the anti-entropy exchange rides the
    /// progress replies these provoke.
    Heartbeat { durable_lsn: u64, epoch: u64 },
}

const RM_BATCH: u8 = 0;
const RM_SNAP_BEGIN: u8 = 1;
const RM_SNAP_CHUNK: u8 = 2;
const RM_SNAP_END: u8 = 3;
const RM_HEARTBEAT: u8 = 4;

impl ReplMsg {
    fn encode(&self, buf: &mut Vec<u8>, version: u32) {
        match self {
            ReplMsg::Batch {
                prev_lsn,
                start_lsn,
                next_lsn,
                txn,
                ops,
                epoch,
            } => {
                buf.push(RM_BATCH);
                put_uvarint(buf, *prev_lsn);
                put_uvarint(buf, *start_lsn);
                put_uvarint(buf, *next_lsn);
                put_uvarint(buf, txn.0);
                put_uvarint(buf, ops.len() as u64);
                for op in ops {
                    match op {
                        hipac_storage::StoreOp::Put { key, value } => {
                            buf.push(0);
                            put_bytes(buf, key);
                            put_bytes(buf, value);
                        }
                        hipac_storage::StoreOp::Delete { key } => {
                            buf.push(1);
                            put_bytes(buf, key);
                        }
                    }
                }
                // Terminal in a Repl frame: v9 peers decode the epoch
                // by presence, v8 encoders never emit it.
                if version >= 9 {
                    put_uvarint(buf, *epoch);
                }
            }
            ReplMsg::SnapshotBegin { snapshot_lsn } => {
                buf.push(RM_SNAP_BEGIN);
                put_uvarint(buf, *snapshot_lsn);
            }
            ReplMsg::SnapshotChunk { pairs } => {
                buf.push(RM_SNAP_CHUNK);
                put_uvarint(buf, pairs.len() as u64);
                for (k, v) in pairs {
                    put_bytes(buf, k);
                    put_bytes(buf, v);
                }
            }
            ReplMsg::SnapshotEnd { snapshot_lsn, epoch } => {
                buf.push(RM_SNAP_END);
                put_uvarint(buf, *snapshot_lsn);
                if version >= 9 {
                    put_uvarint(buf, *epoch);
                }
            }
            ReplMsg::Heartbeat { durable_lsn, epoch } => {
                buf.push(RM_HEARTBEAT);
                put_uvarint(buf, *durable_lsn);
                if version >= 9 {
                    put_uvarint(buf, *epoch);
                }
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<ReplMsg, WireError> {
        Ok(match next_byte(buf, pos)? {
            RM_BATCH => {
                let prev_lsn = get_uvarint(buf, pos)?;
                let start_lsn = get_uvarint(buf, pos)?;
                let next_lsn = get_uvarint(buf, pos)?;
                let txn = TxnId(get_uvarint(buf, pos)?);
                let n = get_uvarint(buf, pos)? as usize;
                bounded(n, buf, *pos)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(match next_byte(buf, pos)? {
                        0 => hipac_storage::StoreOp::Put {
                            key: get_bytes(buf, pos)?.to_vec(),
                            value: get_bytes(buf, pos)?.to_vec(),
                        },
                        1 => hipac_storage::StoreOp::Delete {
                            key: get_bytes(buf, pos)?.to_vec(),
                        },
                        other => {
                            return Err(WireError::Protocol(format!("bad op tag {other}")))
                        }
                    });
                }
                let epoch = if *pos < buf.len() {
                    get_uvarint(buf, pos)?
                } else {
                    0
                };
                ReplMsg::Batch {
                    prev_lsn,
                    start_lsn,
                    next_lsn,
                    txn,
                    ops,
                    epoch,
                }
            }
            RM_SNAP_BEGIN => ReplMsg::SnapshotBegin {
                snapshot_lsn: get_uvarint(buf, pos)?,
            },
            RM_SNAP_CHUNK => {
                let n = get_uvarint(buf, pos)? as usize;
                bounded(n, buf, *pos)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = get_bytes(buf, pos)?.to_vec();
                    let v = get_bytes(buf, pos)?.to_vec();
                    pairs.push((k, v));
                }
                ReplMsg::SnapshotChunk { pairs }
            }
            RM_SNAP_END => {
                let snapshot_lsn = get_uvarint(buf, pos)?;
                let epoch = if *pos < buf.len() {
                    get_uvarint(buf, pos)?
                } else {
                    0
                };
                ReplMsg::SnapshotEnd { snapshot_lsn, epoch }
            }
            RM_HEARTBEAT => {
                let durable_lsn = get_uvarint(buf, pos)?;
                let epoch = if *pos < buf.len() {
                    get_uvarint(buf, pos)?
                } else {
                    0
                };
                ReplMsg::Heartbeat { durable_lsn, epoch }
            }
            other => return Err(WireError::Protocol(format!("unknown repl msg {other}"))),
        })
    }
}

/// A complete protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Request {
        id: u64,
        meta: RequestMeta,
        command: Command,
    },
    Response { id: u64, reply: Reply },
    Push(PushEvent),
    /// v5 replication stream message; never sent to a v4 peer.
    Repl(ReplMsg),
}

impl Frame {
    /// Serialize including the length prefix, in the current protocol
    /// version's format.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(PROTOCOL_VERSION)
    }

    /// Serialize for a peer speaking `version` (the negotiated minimum
    /// of both ends). Only the Stats reply body differs between v4 and
    /// v5; `Repl` frames must not be sent to a v4 peer at all.
    pub fn encode_versioned(&self, version: u32) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        match self {
            Frame::Request { id, meta, command } => {
                payload.push(KIND_REQUEST);
                put_uvarint(&mut payload, *id);
                put_uvarint(&mut payload, meta.client_id);
                put_uvarint(&mut payload, meta.seq);
                put_uvarint(&mut payload, meta.deadline_ms);
                command.encode(&mut payload, version);
            }
            Frame::Response { id, reply } => {
                payload.push(KIND_RESPONSE);
                put_uvarint(&mut payload, *id);
                reply.encode(&mut payload, version);
            }
            Frame::Push(p) => {
                payload.push(KIND_PUSH);
                put_uvarint(&mut payload, p.seq);
                put_str(&mut payload, &p.handler);
                put_str(&mut payload, &p.request);
                put_kv_map(&mut payload, &p.args);
            }
            Frame::Repl(m) => {
                debug_assert!(version >= 5, "Repl frames are v5-only");
                payload.push(KIND_REPL);
                m.encode(&mut payload, version);
            }
        }
        debug_assert!(payload.len() <= MAX_FRAME);
        let mut out = Vec::with_capacity(payload.len() + 4);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserialize a payload (length prefix already stripped). Fails on
    /// trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        let mut pos = 0;
        let frame = match next_byte(payload, &mut pos)? {
            KIND_REQUEST => {
                let id = get_uvarint(payload, &mut pos)?;
                let meta = RequestMeta {
                    client_id: get_uvarint(payload, &mut pos)?,
                    seq: get_uvarint(payload, &mut pos)?,
                    deadline_ms: get_uvarint(payload, &mut pos)?,
                };
                let command = Command::decode(payload, &mut pos)?;
                Frame::Request { id, meta, command }
            }
            KIND_RESPONSE => {
                let id = get_uvarint(payload, &mut pos)?;
                let reply = Reply::decode(payload, &mut pos)?;
                Frame::Response { id, reply }
            }
            KIND_PUSH => Frame::Push(PushEvent {
                seq: get_uvarint(payload, &mut pos)?,
                handler: get_str(payload, &mut pos)?,
                request: get_str(payload, &mut pos)?,
                args: get_kv_map(payload, &mut pos)?,
            }),
            KIND_REPL => Frame::Repl(ReplMsg::decode(payload, &mut pos)?),
            other => return Err(WireError::Protocol(format!("unknown frame kind {other}"))),
        };
        if pos != payload.len() {
            return Err(WireError::Protocol(format!(
                "trailing {} bytes after frame",
                payload.len() - pos
            )));
        }
        Ok(frame)
    }

    /// Write this frame to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        w.write_all(&self.encode())?;
        Ok(())
    }

    /// Read one frame from a stream. `Ok(None)` on clean EOF at a
    /// frame boundary; EOF *inside* the length prefix or payload is an
    /// error (a `read_exact`-based reader would silently conflate the
    /// two and report a connection torn mid-prefix as a clean close).
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
        let mut len_buf = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            match r.read(&mut len_buf[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(WireError::Protocol(format!(
                        "eof inside frame length prefix ({filled}/4 bytes)"
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Protocol(format!(
                "frame of {len} bytes exceeds cap {MAX_FRAME}"
            )));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        Frame::decode(&payload).map(Some)
    }
}

fn next_byte(buf: &[u8], pos: &mut usize) -> Result<u8, WireError> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| WireError::Protocol("truncated frame".into()))?;
    *pos += 1;
    Ok(b)
}

/// Reject hostile element counts before allocating: each element needs
/// at least one byte of remaining input.
fn bounded(n: usize, buf: &[u8], pos: usize) -> Result<(), WireError> {
    if n > buf.len().saturating_sub(pos) {
        return Err(WireError::Protocol("count exceeds input".into()));
    }
    Ok(())
}

impl From<HipacError> for Reply {
    fn from(e: HipacError) -> Reply {
        Reply::Err {
            kind: variant_name(&e).to_owned(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.encode();
        let mut cursor = std::io::Cursor::new(&bytes);
        let back = Frame::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(f, back);
        assert_eq!(cursor.position() as usize, bytes.len());
    }

    #[test]
    fn all_commands_roundtrip() {
        let mut args = HashMap::new();
        args.insert("qty".to_owned(), Value::Int(7));
        args.insert("item".to_owned(), Value::Str("bolt".into()));
        let commands = vec![
            Command::Ping {
                version: PROTOCOL_VERSION,
            },
            Command::Begin,
            Command::BeginChild { parent: TxnId(4) },
            Command::Commit { txn: TxnId(4) },
            Command::Abort { txn: TxnId(9) },
            Command::CreateClass {
                txn: TxnId(1),
                name: "item".into(),
                superclass: Some("thing".into()),
                attrs: vec![
                    WireAttr {
                        name: "qty".into(),
                        ty: 2,
                        nullable: false,
                        indexed: true,
                    },
                    WireAttr {
                        name: "note".into(),
                        ty: 4,
                        nullable: true,
                        indexed: false,
                    },
                ],
            },
            Command::Insert {
                txn: TxnId(1),
                class: "item".into(),
                values: vec![Value::Int(3), Value::Null],
            },
            Command::Update {
                txn: TxnId(1),
                oid: 12,
                assignments: vec![("qty".into(), Value::Int(5))],
            },
            Command::Delete {
                txn: TxnId(1),
                oid: 12,
            },
            Command::Query {
                txn: TxnId(2),
                text: "from item where qty < 5".into(),
                params: args.clone(),
            },
            Command::DefineEvent {
                name: "reorder".into(),
                params: vec!["item".into(), "qty".into()],
            },
            Command::SignalEvent {
                name: "reorder".into(),
                args: args.clone(),
                txn: Some(TxnId(3)),
            },
            Command::SignalEvent {
                name: "reorder".into(),
                args: HashMap::new(),
                txn: None,
            },
            Command::CreateRule {
                txn: TxnId(1),
                rule: vec![1, 2, 3, 255],
            },
            Command::DropRule {
                txn: TxnId(1),
                name: "r".into(),
            },
            Command::EnableRule {
                txn: TxnId(1),
                name: "r".into(),
            },
            Command::DisableRule {
                txn: TxnId(1),
                name: "r".into(),
            },
            Command::Subscribe {
                handler: "reorderer".into(),
            },
            Command::Unsubscribe {
                handler: "reorderer".into(),
            },
            Command::AckPush {
                handler: "reorderer".into(),
                seq: 99,
            },
            Command::Auth {
                client_id: u64::MAX,
                token: vec![0xde, 0xad, 0xbe, 0xef],
            },
            Command::ReplSubscribe {
                start_lsn: 512,
                epoch: 3,
            },
            Command::ReplProgress {
                applied_lsn: 512,
                epoch: 3,
                digest: 0xdead_beef,
            },
            Command::Stats,
        ];
        for (i, command) in commands.into_iter().enumerate() {
            roundtrip(Frame::Request {
                id: i as u64 * 1000,
                meta: RequestMeta::default(),
                command,
            });
        }
    }

    #[test]
    fn request_meta_roundtrips() {
        roundtrip(Frame::Request {
            id: 7,
            meta: RequestMeta {
                client_id: u64::MAX,
                seq: 123_456,
                deadline_ms: 2_500,
            },
            command: Command::Begin,
        });
    }

    #[test]
    fn all_replies_roundtrip() {
        let replies = vec![
            Reply::Ok,
            Reply::Pong {
                version: PROTOCOL_VERSION,
            },
            Reply::Txn(TxnId(42)),
            Reply::Object(ObjectId(7)),
            Reply::Id(3),
            Reply::Rows(vec![
                WireRow {
                    oid: 1,
                    class: 2,
                    values: vec![Value::Int(1), Value::Str("x".into())],
                },
                WireRow {
                    oid: 9,
                    class: 2,
                    values: vec![],
                },
            ]),
            Reply::Stats(Box::new(WireStats {
                signals_processed: 1,
                rules_triggered: 2,
                conditions_satisfied: 3,
                actions_executed: 4,
                store_evaluations: 5,
                delta_evaluations: 6,
                cache_hits: 7,
                deferred_txns: 8,
                deferred_firings: 9,
                pool_outstanding: 10,
                separate_errors: 11,
                firings_parallel: 12,
                pool_queue_depth: 13,
                active_connections: 14,
                shed_requests: 15,
                dedup_hits: 16,
                separate_retries: 17,
                separate_dead_letters: 18,
                shed_adaptive: 19,
                journal_replays: 20,
                pushes_redelivered: 21,
                repl_role: 1,
                last_shipped_lsn: 22,
                last_applied_lsn: 23,
                repl_lag_bytes: 24,
                replica_pushes: 25,
                promotions: 26,
                match_index_nodes: 27,
                match_probes: 28,
                match_pruned: 29,
                memo_hits: 30,
                memo_invalidations: 31,
                group_commits: 32,
                group_commit_txns: 33,
                group_commit_largest: 34,
                reactor_shards: 35,
                auth_failures: 36,
                tenants_active: 37,
                tenant_shed_requests: 38,
                pushes_shed: 39,
                subscribers_evicted: 40,
                breaker_trips: 41,
                breaker_resets: 42,
                repl_epoch: 43,
                repl_fence_prev: 44,
                repl_fence_start: 45,
                repl_peers: 46,
                repl_min_peer_applied: 47,
                repl_digest_ok_peers: 48,
                repl_digest_mismatches: 49,
                repl_quorum: 50,
                repl_quorum_ok: 1,
            })),
            Reply::Err {
                kind: "UnknownClass".into(),
                message: "unknown class: zz".into(),
            },
        ];
        for (i, reply) in replies.into_iter().enumerate() {
            roundtrip(Frame::Response {
                id: i as u64,
                reply,
            });
        }
    }

    #[test]
    fn repl_msgs_roundtrip() {
        use hipac_storage::StoreOp;
        let msgs = vec![
            ReplMsg::Batch {
                prev_lsn: 8,
                start_lsn: 10,
                next_lsn: 99,
                txn: TxnId(7),
                ops: vec![
                    StoreOp::Put {
                        key: b"k".to_vec(),
                        value: b"v".to_vec(),
                    },
                    StoreOp::Delete { key: b"d".to_vec() },
                ],
                epoch: 2,
            },
            ReplMsg::SnapshotBegin { snapshot_lsn: 5 },
            ReplMsg::SnapshotChunk {
                pairs: vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), vec![])],
            },
            ReplMsg::SnapshotEnd {
                snapshot_lsn: 5,
                epoch: 2,
            },
            ReplMsg::Heartbeat {
                durable_lsn: 1234,
                epoch: 2,
            },
        ];
        for m in msgs {
            roundtrip(Frame::Repl(m));
        }
    }

    #[test]
    fn v8_peers_never_see_epoch_fields_and_v9_decodes_them_as_zero() {
        // A v9 node encoding for a v8 peer omits every epoch field; the
        // same bytes decoded by a v9 node read the epochs as zero (the
        // never-fenced world), so mixed fleets interoperate.
        let msgs = [
            Frame::Repl(ReplMsg::Heartbeat {
                durable_lsn: 9,
                epoch: 4,
            }),
            Frame::Repl(ReplMsg::SnapshotEnd {
                snapshot_lsn: 11,
                epoch: 4,
            }),
            Frame::Repl(ReplMsg::Batch {
                prev_lsn: 0,
                start_lsn: 0,
                next_lsn: 30,
                txn: TxnId(1),
                ops: vec![],
                epoch: 4,
            }),
            Frame::Request {
                id: 1,
                meta: RequestMeta::default(),
                command: Command::ReplSubscribe {
                    start_lsn: 7,
                    epoch: 4,
                },
            },
            Frame::Request {
                id: 0,
                meta: RequestMeta::default(),
                command: Command::ReplProgress {
                    applied_lsn: 7,
                    epoch: 4,
                    digest: 99,
                },
            },
        ];
        for frame in msgs {
            let v8_bytes = frame.encode_versioned(8);
            let v9_bytes = frame.encode_versioned(9);
            assert!(v9_bytes.len() > v8_bytes.len(), "epoch fields add bytes");
            // v8 bytes decode cleanly (no trailing-garbage refusal) and
            // every epoch/digest reads back zero.
            let back = Frame::decode(&v8_bytes[4..]).unwrap();
            match back {
                Frame::Repl(ReplMsg::Heartbeat { epoch, .. })
                | Frame::Repl(ReplMsg::SnapshotEnd { epoch, .. })
                | Frame::Repl(ReplMsg::Batch { epoch, .. }) => assert_eq!(epoch, 0),
                Frame::Request {
                    command: Command::ReplSubscribe { start_lsn, epoch },
                    ..
                } => {
                    assert_eq!(start_lsn, 7);
                    assert_eq!(epoch, 0);
                }
                Frame::Request {
                    command:
                        Command::ReplProgress {
                            applied_lsn,
                            epoch,
                            digest,
                        },
                    ..
                } => {
                    assert_eq!((applied_lsn, epoch, digest), (7, 0, 0));
                }
                other => panic!("unexpected frame {other:?}"),
            }
            // v9 bytes roundtrip exactly.
            assert_eq!(Frame::decode(&v9_bytes[4..]).unwrap(), frame);
        }
    }

    #[test]
    fn stats_reply_negotiates_v4_and_v5_formats() {
        let stats = WireStats {
            signals_processed: 1,
            repl_role: 1,
            last_shipped_lsn: 77,
            last_applied_lsn: 70,
            repl_lag_bytes: 7,
            replica_pushes: 3,
            promotions: 1,
            match_index_nodes: 12,
            match_probes: 13,
            match_pruned: 14,
            memo_hits: 15,
            memo_invalidations: 16,
            group_commits: 21,
            reactor_shards: 4,
            auth_failures: 31,
            tenant_shed_requests: 32,
            subscribers_evicted: 33,
            breaker_trips: 34,
            ..WireStats::default()
        };
        let frame = Frame::Response {
            id: 9,
            reply: Reply::Stats(Box::new(stats)),
        };
        // A v4 peer gets the 21-field body and decodes the gauges as
        // zero — exactly what a v4 build of this code would produce.
        let v4_bytes = frame.encode_versioned(4);
        let back = Frame::decode(&v4_bytes[4..]).unwrap();
        let Frame::Response {
            reply: Reply::Stats(s),
            ..
        } = back
        else {
            panic!("expected stats response");
        };
        assert_eq!(s.signals_processed, 1);
        assert_eq!(s.repl_role, 0, "v4 body carries no repl gauges");
        assert_eq!(s.last_shipped_lsn, 0);
        // A v5 peer gets the repl gauges but not the matching gauges.
        let v5_bytes = frame.encode_versioned(5);
        assert!(v5_bytes.len() > v4_bytes.len());
        let back = Frame::decode(&v5_bytes[4..]).unwrap();
        let Frame::Response {
            reply: Reply::Stats(s),
            ..
        } = back
        else {
            panic!("expected stats response");
        };
        assert_eq!(s.promotions, 1);
        assert_eq!(s.match_index_nodes, 0, "v5 body carries no matching gauges");
        assert_eq!(s.memo_hits, 0);
        // A v6 peer gets the matching gauges but not the hot-path ones.
        let v6_bytes = frame.encode_versioned(6);
        assert!(v6_bytes.len() > v5_bytes.len());
        let back = Frame::decode(&v6_bytes[4..]).unwrap();
        let Frame::Response {
            reply: Reply::Stats(s),
            ..
        } = back
        else {
            panic!("expected stats response");
        };
        assert_eq!(s.match_index_nodes, 12);
        assert_eq!(s.group_commits, 0, "v6 body carries no hot-path gauges");
        // A v7 peer gets the hot-path gauges but not the tenancy block.
        let v7_bytes = frame.encode_versioned(7);
        assert!(v7_bytes.len() > v6_bytes.len());
        let back = Frame::decode(&v7_bytes[4..]).unwrap();
        let Frame::Response {
            reply: Reply::Stats(s),
            ..
        } = back
        else {
            panic!("expected stats response");
        };
        assert_eq!(s.group_commits, 21);
        assert_eq!(s.reactor_shards, 4);
        assert_eq!(s.auth_failures, 0, "v7 body carries no tenancy gauges");
        assert_eq!(s.subscribers_evicted, 0);
        // A v8 peer gets the full body.
        let v8_bytes = frame.encode_versioned(8);
        assert!(v8_bytes.len() > v7_bytes.len());
        let back = Frame::decode(&v8_bytes[4..]).unwrap();
        let Frame::Response {
            reply: Reply::Stats(s),
            ..
        } = back
        else {
            panic!("expected stats response");
        };
        assert_eq!(*s, stats);
    }

    #[test]
    fn push_roundtrips() {
        let mut args = HashMap::new();
        args.insert("n".to_owned(), Value::Float(1.5));
        roundtrip(Frame::Push(PushEvent {
            seq: 41,
            handler: "h".into(),
            request: "restock".into(),
            args,
        }));
    }

    #[test]
    fn reply_bytes_roundtrip_and_reject_garbage() {
        for reply in [
            Reply::Ok,
            Reply::Txn(TxnId(9)),
            Reply::Err {
                kind: "UnknownTxn".into(),
                message: "gone".into(),
            },
        ] {
            assert_eq!(Reply::from_bytes(&reply.to_bytes()).unwrap(), reply);
        }
        let mut bytes = Reply::Ok.to_bytes();
        bytes.push(7);
        assert!(Reply::from_bytes(&bytes).is_err());
        assert!(Reply::from_bytes(&[200]).is_err());
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        bytes.push(0);
        let mut cursor = std::io::Cursor::new(&bytes);
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let full = Frame::Request {
            id: 5,
            meta: RequestMeta::default(),
            command: Command::Query {
                txn: TxnId(1),
                text: "from c".into(),
                params: HashMap::new(),
            },
        }
        .encode();
        // Cut inside the payload (keeping a consistent length prefix
        // would mean EOF; corrupt payload bytes instead).
        for cut in 5..full.len() {
            assert!(Frame::decode(&full[4..cut]).is_err());
        }
        // Clean EOF at a frame boundary is None, not an error.
        let mut empty = std::io::Cursor::new(&[][..]);
        assert!(matches!(Frame::read_from(&mut empty), Ok(None)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut payload = Frame::Response {
            id: 1,
            reply: Reply::Ok,
        }
        .encode()[4..]
            .to_vec();
        payload.push(99);
        assert!(Frame::decode(&payload).is_err());
    }

    #[test]
    fn txn_fatal_classification_crosses_the_wire() {
        let e: WireError = HipacError::Deadlock(TxnId(1)).into();
        assert!(e.is_txn_fatal());
        let e: WireError = HipacError::DeadlineExceeded(TxnId(1)).into();
        assert!(e.is_txn_fatal());
        let e: WireError = HipacError::UnknownClass("c".into()).into();
        assert!(!e.is_txn_fatal());
    }

    #[test]
    fn indefinite_outcome_classification() {
        assert!(WireError::Transport("reset".into()).is_indefinite());
        assert!(WireError::Timeout("2s elapsed".into()).is_indefinite());
        assert!(!WireError::Io("refused".into()).is_indefinite());
        let remote = WireError::Remote {
            kind: "Overloaded".into(),
            message: "shed".into(),
        };
        // A definite server refusal: the command was NOT applied.
        assert!(!remote.is_indefinite());
    }
}
