//! Reactor plumbing for the sharded server: a minimal epoll facade and
//! a bounded non-blocking write helper.
//!
//! The offline toolchain has no `mio`/`libc`, so on Linux/x86_64 the
//! [`Poller`] drives `epoll` through raw syscalls (the same shim
//! approach the workspace uses for third-party crates). Elsewhere it
//! degrades to a level-triggered scan: `wait` sleeps one tick and
//! reports every registered token as readable, and the shard's
//! non-blocking reads turn the over-approximation into correctness
//! (they simply observe `WouldBlock`). The facade is deliberately tiny
//! — readable-interest only, one `u64` token per fd — because that is
//! all the shard loop needs: writes go through [`write_all_timeout`]
//! from whatever thread produced them.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

/// Readable event bit (matches `EPOLLIN`).
pub const EV_IN: u32 = 0x1;
/// Peer hung up / error bits folded into readability by the shard (a
/// read on such an fd returns EOF or the error).
pub const EV_CLOSED: u32 = 0x8 | 0x10 | 0x2000; // ERR | HUP | RDHUP

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use super::*;
    use std::arch::asm;

    const SYS_CLOSE: usize = 3;
    const SYS_EPOLL_WAIT: usize = 232;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EPOLL_CREATE1: usize = 291;

    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLL_CLOEXEC: usize = 0o2000000;

    /// x86_64 `struct epoll_event` is packed to 12 bytes.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// Readable-interest epoll instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let fd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Poller { epfd: fd as RawFd })
        }

        fn ctl(&self, op: usize, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let ev = EpollEvent {
                events,
                data: token,
            };
            let ptr = if op == EPOLL_CTL_DEL {
                0
            } else {
                &ev as *const EpollEvent as usize
            };
            check(unsafe { syscall4(SYS_EPOLL_CTL, self.epfd as usize, op, fd as usize, ptr) })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, EV_IN | EV_CLOSED)
        }

        /// Re-arm or disarm readable interest (used to pause a
        /// connection whose dispatch queue is full, without the
        /// level-triggered instance spinning on its unread bytes).
        pub fn set_readable(&self, fd: RawFd, token: u64, armed: bool) -> io::Result<()> {
            let events = if armed { EV_IN | EV_CLOSED } else { EV_CLOSED };
            self.ctl(EPOLL_CTL_MOD, fd, token, events)
        }

        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait up to `timeout` for events, appending `(token, events)`
        /// pairs to `out`. Returns the number of events delivered.
        pub fn wait(&self, out: &mut Vec<(u64, u32)>, timeout: Duration) -> io::Result<usize> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
            let n = check(unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    self.epfd as usize,
                    buf.as_mut_ptr() as usize,
                    buf.len(),
                    timeout.as_millis().min(i32::MAX as u128) as usize,
                )
            })?;
            for ev in buf.iter().take(n) {
                let events = ev.events;
                let data = ev.data;
                out.push((data, events));
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            let _ = unsafe { syscall4(SYS_CLOSE, self.epfd as usize, 0, 0, 0) };
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// Portable fallback: no kernel poller, so `wait` sleeps one short
    /// tick and reports every registered token as readable. The shard's
    /// non-blocking reads absorb the over-approximation.
    pub struct Poller {
        tokens: Mutex<HashMap<RawFd, (u64, bool)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                tokens: Mutex::new(HashMap::new()),
            })
        }

        pub fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.tokens.lock().unwrap().insert(fd, (token, true));
            Ok(())
        }

        pub fn set_readable(&self, fd: RawFd, token: u64, armed: bool) -> io::Result<()> {
            self.tokens.lock().unwrap().insert(fd, (token, armed));
            Ok(())
        }

        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            self.tokens.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<(u64, u32)>, timeout: Duration) -> io::Result<usize> {
            std::thread::sleep(timeout.min(Duration::from_millis(5)));
            let tokens = self.tokens.lock().unwrap();
            for (token, armed) in tokens.values() {
                if *armed {
                    out.push((*token, EV_IN));
                }
            }
            Ok(out.len())
        }
    }
}

pub use sys::Poller;

/// A loopback socket pair for waking a shard out of `Poller::wait`
/// (the self-pipe pattern, built on TCP so it needs no platform
/// surface beyond what the server already uses). Returns
/// `(read_end, write_end)`: register the read end with the poller,
/// hand the write end to whoever needs to wake the shard. Both ends
/// are non-blocking.
pub fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let write_end = TcpStream::connect(listener.local_addr()?)?;
    let (read_end, _) = listener.accept()?;
    read_end.set_nonblocking(true)?;
    write_end.set_nonblocking(true)?;
    write_end.set_nodelay(true)?;
    Ok((read_end, write_end))
}

/// Drain every readable byte from a wake socket (self-pipe pattern).
pub fn drain_wake(stream: &mut impl Read) {
    let mut buf = [0u8; 64];
    while matches!(stream.read(&mut buf), Ok(n) if n > 0) {}
}

/// Signal a wake socket; failures are ignored (a full pipe already
/// guarantees a pending wakeup).
pub fn signal_wake(stream: &mut impl Write) {
    let _ = stream.write(&[1]);
}

/// `write_all` for non-blocking sockets: retries `WouldBlock` with a
/// short backoff until `timeout` elapses. Partial progress extends the
/// deadline only in the sense that the clock keeps running — a peer
/// draining slowly but steadily still completes, a wedged one fails
/// with `TimedOut`.
pub fn write_all_timeout(
    stream: &mut TcpStream,
    buf: &[u8],
    timeout: Duration,
) -> io::Result<()> {
    let mut off = 0usize;
    let deadline = Instant::now() + timeout;
    while off < buf.len() {
        match stream.write(&buf[off..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return Err(io::ErrorKind::TimedOut.into());
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Write as much of `buf` as the socket accepts without waiting.
/// Returns the bytes written (`== buf.len()` on a full write); the
/// caller must finish any remainder with [`write_all_timeout`] on
/// `&buf[n..]` — a half-written frame left dangling would desynchronize
/// the stream. Used by the batched push fan-out so one slow subscriber
/// cannot delay its peers' first-pass writes.
pub fn try_write_prefix(stream: &mut TcpStream, buf: &[u8]) -> io::Result<usize> {
    let mut off = 0usize;
    while off < buf.len() {
        match stream.write(&buf[off..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(off);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty() || cfg!(not(all(target_os = "linux", target_arch = "x86_64"))));

        client.write_all(b"x").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            events.clear();
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|(t, ev)| *t == 7 && ev & EV_IN != 0) {
                break;
            }
            assert!(Instant::now() < deadline, "no readable event within 2s");
        }
        poller.del(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn pause_suppresses_readable() {
        if cfg!(not(all(target_os = "linux", target_arch = "x86_64"))) {
            return; // the fallback poller is advisory-only
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 9).unwrap();
        client.write_all(b"pending").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        poller.set_readable(server.as_raw_fd(), 9, false).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(30)).unwrap();
        assert!(
            !events.iter().any(|(_, ev)| ev & EV_IN != 0),
            "disarmed fd must not report readable"
        );
        poller.set_readable(server.as_raw_fd(), 9, true).unwrap();
        events.clear();
        poller.wait(&mut events, Duration::from_millis(100)).unwrap();
        assert!(events.iter().any(|(t, ev)| *t == 9 && ev & EV_IN != 0));
    }

    #[test]
    fn write_all_timeout_times_out_on_full_buffer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        // Nobody reads `client`; keep writing until the kernel buffers
        // fill, then expect TimedOut rather than a hang.
        let chunk = vec![0u8; 1 << 20];
        let start = Instant::now();
        let mut saw_timeout = false;
        for _ in 0..64 {
            match write_all_timeout(&mut server, &chunk, Duration::from_millis(50)) {
                Ok(()) => continue,
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    saw_timeout = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_timeout, "blocked write never timed out");
        assert!(start.elapsed() < Duration::from_secs(30));
        drop(client);
    }
}
