//! [`HipacServer`]: the active DBMS behind a TCP listener.
//!
//! Connections are served by a sharded reactor: `reactor_shards`
//! event-loop threads multiplex all sockets (non-blocking, via the
//! [`crate::reactor`] epoll facade), so an idle connection costs one
//! registered fd — no thread, no stack. Complete frames dispatch onto
//! a pool of `workers` threads; a per-connection queue keeps each
//! session's requests strictly ordered, and a full queue pauses that
//! connection's reads (per-connection backpressure) until the worker
//! drains it. The server admits at most `workers + max_pending`
//! concurrent connections; beyond that it refuses with an error frame
//! instead of queueing unboundedly.
//!
//! The paper's §4.1 role reversal — the DBMS calling the application —
//! crosses the network through subscriptions: a client that sends
//! `Subscribe { handler }` becomes the application server for that
//! handler name, and every rule action addressed to it is delivered to
//! the client as a push frame, synchronously from the firing's thread
//! (immediate/deferred firings block the triggering transaction on the
//! socket write; separate firings block a pool worker).
//!
//! Sessions own the transactions they begin: a connection that drops —
//! idle timeout, protocol error, or plain disconnect — has its open
//! transactions aborted, so a crashed client cannot strand locks.

use crate::proto::{
    code_type, Command, Frame, PushEvent, Reply, ReplMsg, RequestMeta, WireError, WireStats,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use hipac::{ActiveDatabase, EngineStats};
use hipac_common::{HipacError, ObjectId, ReplCounters, Result as HipacResult, TxnId, Value};
use hipac_object::{AttrDef, Query};
use hipac_storage::journal;
use hipac_storage::{DurableStore, StoreOp, TailRead};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`HipacServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent session threads (the hard concurrency cap).
    pub workers: usize,
    /// Accepted connections allowed to wait for a free session thread.
    /// Beyond this the server refuses with an error frame.
    pub max_pending: usize,
    /// A session with no complete request for this long is closed (its
    /// open transactions abort). This is the backpressure backstop: a
    /// stalled client cannot pin a session thread forever.
    pub idle_timeout: Duration,
    /// Admission budget: requests allowed in dispatch concurrently
    /// across all sessions. Beyond this the server sheds the request
    /// with an `Overloaded` error instead of queueing it behind slow
    /// work. `0` disables shedding (dispatch concurrency is then
    /// bounded only by `workers`).
    pub max_inflight: usize,
    /// Replies remembered per client for idempotent retries: a request
    /// re-sent with an already-seen `(client_id, seq)` is answered from
    /// this window without re-executing. `0` disables deduplication.
    pub dedup_window: usize,
    /// Persist the dedup window for keyed commits as a crash-safe
    /// reply journal when the served database is durable: the cached
    /// ack becomes durable in the same WAL batch as the commit it
    /// acknowledges, and a restart rebuilds the window from the
    /// journal, so a retry across the restart replays instead of
    /// re-executing. No effect on in-memory databases.
    pub reply_journal: bool,
    /// Unacked push frames retained per handler for redelivery.
    /// Delivery to a full outbox fails the triggering rule action
    /// (backpressure into the transaction) rather than dropping the
    /// frame silently.
    pub outbox_cap: usize,
    /// Adaptive admission signal: when the EWMA of dispatch time
    /// exceeds this, new requests are shed with `Overloaded` (counted
    /// in `shed_adaptive`) while at least one other request is in
    /// flight. `None` disables it; `max_inflight` remains the hard
    /// cap.
    pub shed_queue_delay: Option<Duration>,
    /// Reactor shards: event-loop threads multiplexing all connections
    /// over non-blocking sockets. Each connection is owned by exactly
    /// one shard for reading; complete frames dispatch onto the
    /// `workers` pool. `0` picks a default from the machine's
    /// parallelism. Idle connections cost one registered fd each — no
    /// stack, no thread.
    pub reactor_shards: usize,
    /// Bound on one push-frame write to a slow subscriber before it is
    /// culled (its unacked pushes stay in the outbox for redelivery).
    /// The batched fan-out writes every subscriber opportunistically
    /// first, so a slow subscriber only ever delays itself.
    pub push_write_timeout: Duration,
    /// Shared secret for session authentication (v8). When set, a
    /// session must present `Command::Auth` with a valid
    /// `HMAC-SHA256(secret, client_id)` token before any keyed request
    /// naming that `client_id` is honored — which covers reply-journal
    /// replays, dedup probes, and the per-tenant admission identity.
    /// Push subscriptions bind to the first authenticated owner;
    /// `Subscribe`/`AckPush` from any other identity are refused with
    /// `AuthFailed`. Unauthenticated sessions (including v≤7 peers,
    /// which cannot send `Auth`) are confined to the shared
    /// `unauthenticated` tenant class and unkeyed work. `None`
    /// disables authentication: the asserted `client_id` is trusted,
    /// as in earlier protocol versions.
    pub auth_secret: Option<Vec<u8>>,
    /// Per-tenant admission budget: requests one tenant may have in
    /// dispatch concurrently. Beyond it that tenant's requests are
    /// shed with `Overloaded` (counted in `tenant_shed_requests`)
    /// while other tenants keep admitting. `0` disables the cap.
    pub tenant_max_inflight: usize,
    /// Per-tenant adaptive admission signal: when a tenant's own
    /// dispatch-delay EWMA exceeds this while that tenant already has
    /// work in flight, its next request is shed. `None` disables it.
    /// (The global `shed_queue_delay` signal is tenant-weighted too:
    /// it shedding requires the *requesting tenant* to already have
    /// work in flight, so a noisy tenant's queueing delay sheds the
    /// noisy tenant, not the quiet ones.)
    pub tenant_shed_queue_delay: Option<Duration>,
    /// Slow-subscriber byte budget: when a handler's unacked outbox
    /// reaches this many encoded frame bytes, the subscription is
    /// dead-lettered — its durable outbox state is garbage-collected
    /// and a `SubscriberEvicted` engine event is signalled so user
    /// rules can react. `0` disables byte-based eviction.
    pub outbox_evict_bytes: usize,
    /// Slow-subscriber age budget: a handler whose *oldest* unacked
    /// push has waited longer than this is dead-lettered on the next
    /// delivery attempt. `None` disables age-based eviction.
    pub outbox_evict_age: Option<Duration>,
    /// Semi-synchronous replication: gate each successful commit ack on
    /// every connected replica having reported durable application up
    /// to the committing frontier, so an acknowledged write never
    /// exists only on this node. A replica that cannot keep up within
    /// [`ServerConfig::sync_repl_timeout`] degrades that commit to
    /// asynchronous (availability over strictness) rather than
    /// stalling the session. No effect without connected replicas.
    pub sync_repl: bool,
    /// Per-commit bound on the semi-sync wait: a quorum slower than
    /// this degrades the commit to asynchronous. Overridable at bind
    /// time with the `HIPAC_REPL_DEGRADE_MS` environment variable.
    pub sync_repl_timeout: Duration,
    /// How often idle replicas get a heartbeat carrying the durable
    /// frontier and the primary's replication epoch (so a quiet
    /// primary still advertises zero lag, and a fenced world is
    /// discovered without waiting for traffic). Overridable at bind
    /// time with the `HIPAC_REPL_HEARTBEAT_MS` environment variable.
    pub repl_heartbeat_every: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            max_pending: 16,
            idle_timeout: Duration::from_secs(30),
            max_inflight: 0,
            dedup_window: 128,
            reply_journal: true,
            outbox_cap: 256,
            shed_queue_delay: None,
            auth_secret: None,
            tenant_max_inflight: 0,
            tenant_shed_queue_delay: None,
            outbox_evict_bytes: 0,
            outbox_evict_age: None,
            reactor_shards: 0,
            push_write_timeout: Duration::from_secs(5),
            sync_repl: false,
            sync_repl_timeout: Duration::from_millis(250),
            repl_heartbeat_every: Duration::from_millis(50),
        }
    }
}

/// Parse a `HIPAC_REPL_*` millisecond knob from the environment.
/// Unset or unparsable values fall back to the builder configuration.
fn env_millis(name: &str) -> Option<Duration> {
    std::env::var(name)
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
        .map(Duration::from_millis)
}

/// How often blocked reads wake to check idle/shutdown state.
const READ_TICK: Duration = Duration::from_millis(50);

/// Lock stripes for the shard-local session maps. Keys hash to a
/// stripe independently of which reactor shard serves the connection,
/// so the *same* client id or handler name always lands on the same
/// stripe no matter where (or when) its connection is homed — which is
/// exactly what keeps dedup and outbox semantics stable when a client
/// reconnects onto a different shard.
const STATE_STRIPES: usize = 16;

fn stripe_of_u64(key: u64) -> usize {
    // Fibonacci hash: client ids are sequential in tests.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % STATE_STRIPES
}

fn stripe_of_str(key: &str) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    stripe_of_u64(h.finish())
}

/// Subscription table: handler name -> sessions serving it. The engine
/// sees one proxy `ApplicationHandler` per name; the proxy fans out to
/// the live subscribers at call time.
///
/// v4 adds the push outbox: every delivered frame carries a
/// per-handler sequence number and is retained (durably, when the
/// database is) until a client acks it, so a push lost between the
/// socket write and the client handler is redelivered on the next
/// subscribe instead of vanishing. The first ack clears the frame —
/// with multiple subscribers per handler, redelivery is exactly-once
/// per *subscription*, not per subscriber.
///
/// Both maps are striped by handler hash (see [`STATE_STRIPES`]): the
/// reactor serves every connection from a few shard threads plus the
/// dispatch pool, and one global lock here would serialize unrelated
/// handlers' pushes across all of them.
struct Subscriptions {
    by_handler: Vec<RwLock<HashMap<String, Vec<Subscriber>>>>,
    outbox: Vec<Mutex<HashMap<String, HandlerOutbox>>>,
    outbox_cap: usize,
    /// Bound on one push write to a lagging subscriber (second phase of
    /// the fan-out; the first phase never waits).
    push_write_timeout: Duration,
    /// Slow-subscriber budgets (`0`/`None` disable): an outbox past
    /// either one is dead-lettered instead of backpressured forever.
    evict_bytes: usize,
    evict_age: Option<Duration>,
    /// Handlers detected over-budget by [`Subscriptions::deliver`],
    /// awaiting the eviction housekeeper (`deliver` runs on rule-firing
    /// threads *inside* transactions, so the durable GC, teardown, and
    /// `SubscriberEvicted` signal must happen elsewhere).
    evict_queue: Mutex<Vec<EvictNotice>>,
    /// Push deliveries refused because the handler is over budget or
    /// already dead-lettered (served in Stats as `pushes_shed`).
    pushes_shed: AtomicU64,
    /// Persist outbox records and sequence counters when serving a
    /// durable database (counters must survive restarts: reusing a
    /// sequence would make clients silently drop a fresh push as a
    /// redelivery).
    durable: Option<Arc<DurableStore>>,
}

#[derive(Default)]
struct HandlerOutbox {
    next_seq: u64,
    /// Encoded push frames awaiting ack, in sequence order.
    unacked: BTreeMap<u64, Vec<u8>>,
    /// Enqueue instants parallel to `unacked` (the age budget's clock).
    enqueued_at: BTreeMap<u64, Instant>,
    /// Total encoded bytes across `unacked` (the byte budget's gauge).
    bytes: u64,
    /// The authenticated tenant that first subscribed this handler
    /// (persisted in the `'k'` record on durable stores). With auth
    /// enabled, only the owner may subscribe or ack; `None` means
    /// unclaimed. Ignored when auth is off.
    owner: Option<u64>,
    /// Dead-lettered: deliveries are refused (and counted in
    /// `pushes_shed`) until an owner re-subscribe resurrects the
    /// handler. `next_seq` is preserved across the eviction so a
    /// resurrected subscription never reuses a sequence its client
    /// already deduplicated.
    evicted: bool,
}

/// A dead-letter decision recorded by `deliver`, consumed by the
/// eviction housekeeper: enough to GC the durable state, tear down the
/// subscription, and signal `SubscriberEvicted` through the engine.
struct EvictNotice {
    handler: String,
    /// Preserved sequence counter (written into the tombstone).
    next_seq: u64,
    /// Unacked sequences to GC from the `'q'` key space (empty for
    /// notices recovered from a pending tombstone — their GC already
    /// committed before the crash).
    seqs: Vec<u64>,
    /// Gauges at eviction time, carried into the signal args.
    unacked: u64,
    bytes: u64,
    reason: &'static str,
}

/// Eviction tombstone states (the byte after `next_seq` in the sealed
/// `'v'` record).
const EVICT_PENDING: u8 = 0;
const EVICT_DONE: u8 = 1;

/// Serialize a tombstone record: `next_seq` (BE), state byte, then the
/// eviction-time gauges (BE) for the recovered signal's args.
fn evict_record(next_seq: u64, state: u8, unacked: u64, bytes: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(25);
    v.extend_from_slice(&next_seq.to_be_bytes());
    v.push(state);
    v.extend_from_slice(&unacked.to_be_bytes());
    v.extend_from_slice(&bytes.to_be_bytes());
    v
}

/// Inverse of [`evict_record`].
fn parse_evict_record(raw: &[u8]) -> Option<(u64, u8, u64, u64)> {
    if raw.len() != 25 {
        return None;
    }
    let next_seq = u64::from_be_bytes(raw[0..8].try_into().ok()?);
    let state = raw[8];
    let unacked = u64::from_be_bytes(raw[9..17].try_into().ok()?);
    let bytes = u64::from_be_bytes(raw[17..25].try_into().ok()?);
    Some((next_seq, state, unacked, bytes))
}

/// Serialize a handler's `'k'` record: the 8-byte next sequence, plus
/// the owning tenant id when the handler has been claimed (16 bytes
/// total). `restore` accepts both lengths, so stores written by older
/// builds (owner-less 8-byte records) reopen cleanly.
fn push_seq_value(next_seq: u64, owner: Option<u64>) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&next_seq.to_be_bytes());
    if let Some(o) = owner {
        v.extend_from_slice(&o.to_be_bytes());
    }
    v
}

#[derive(Clone)]
struct Subscriber {
    session: u64,
    writer: Arc<Mutex<TcpStream>>,
}

impl Subscriptions {
    fn new(
        outbox_cap: usize,
        push_write_timeout: Duration,
        evict_bytes: usize,
        evict_age: Option<Duration>,
        durable: Option<Arc<DurableStore>>,
    ) -> Arc<Subscriptions> {
        let subs = Subscriptions {
            by_handler: (0..STATE_STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
            outbox: (0..STATE_STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            outbox_cap: outbox_cap.max(1),
            push_write_timeout,
            evict_bytes,
            evict_age,
            evict_queue: Mutex::new(Vec::new()),
            pushes_shed: AtomicU64::new(0),
            durable,
        };
        subs.restore();
        Arc::new(subs)
    }

    fn handlers(&self, handler: &str) -> &RwLock<HashMap<String, Vec<Subscriber>>> {
        &self.by_handler[stripe_of_str(handler)]
    }

    fn outbox_stripe(&self, handler: &str) -> &Mutex<HashMap<String, HandlerOutbox>> {
        &self.outbox[stripe_of_str(handler)]
    }

    /// Rebuild the outbox and sequence counters from storage after a
    /// restart. Torn or corrupt records are dropped (their seal fails),
    /// never replayed.
    fn restore(&self) {
        let Some(d) = &self.durable else { return };
        if let Ok(entries) = d.scan_prefix(&[journal::PUSH_SEQ_PREFIX]) {
            for (key, value) in entries {
                let (Some(handler), Some(raw)) =
                    (journal::parse_push_seq_key(&key), journal::unseal(&value))
                else {
                    continue;
                };
                // 8 bytes = next_seq only; 16 = next_seq + owner.
                if raw.len() == 8 || raw.len() == 16 {
                    let next_seq = u64::from_be_bytes(raw[..8].try_into().unwrap());
                    let owner = (raw.len() == 16)
                        .then(|| u64::from_be_bytes(raw[8..16].try_into().unwrap()));
                    let mut ob = self.outbox_stripe(&handler).lock();
                    let h = ob.entry(handler).or_default();
                    h.next_seq = next_seq;
                    h.owner = owner;
                }
            }
        }
        if let Ok(entries) = d.scan_prefix(&[journal::OUTBOX_PREFIX]) {
            let restored_at = Instant::now();
            for (key, value) in entries {
                let (Some((handler, seq)), Some(frame)) =
                    (journal::parse_outbox_key(&key), journal::unseal(&value))
                else {
                    continue;
                };
                let mut ob = self.outbox_stripe(&handler).lock();
                let h = ob.entry(handler).or_default();
                h.bytes += frame.len() as u64;
                h.unacked.insert(seq, frame.to_vec());
                // The original enqueue instant did not survive the
                // restart; the age clock restarts, which fails toward
                // keeping (not evicting) recovered frames.
                h.enqueued_at.insert(seq, restored_at);
                h.next_seq = h.next_seq.max(seq + 1);
            }
        }
    }

    /// Replay eviction tombstones after a restart: mark each handler
    /// dead-lettered with its preserved sequence counter, and return a
    /// notice for every *pending* tombstone — an eviction whose durable
    /// GC committed but whose `SubscriberEvicted` signal had not yet
    /// become durable when the process died. The caller re-enqueues
    /// those so the signal fires exactly once across the crash.
    fn restore_evictions(&self) -> Vec<EvictNotice> {
        let Some(d) = &self.durable else {
            return Vec::new();
        };
        let mut pending = Vec::new();
        if let Ok(entries) = d.scan_prefix(&[journal::EVICT_PREFIX]) {
            for (key, value) in entries {
                let (Some(handler), Some(raw)) =
                    (journal::parse_evict_key(&key), journal::unseal(&value))
                else {
                    continue;
                };
                let Some((next_seq, state, unacked, bytes)) = parse_evict_record(raw) else {
                    continue;
                };
                {
                    let mut ob = self.outbox_stripe(&handler).lock();
                    let h = ob.entry(handler.clone()).or_default();
                    h.evicted = true;
                    h.next_seq = h.next_seq.max(next_seq);
                    h.unacked.clear();
                    h.enqueued_at.clear();
                    h.bytes = 0;
                }
                if state == EVICT_PENDING {
                    pending.push(EvictNotice {
                        handler,
                        next_seq,
                        seqs: Vec::new(),
                        unacked,
                        bytes,
                        reason: "recovered",
                    });
                }
            }
        }
        pending
    }

    /// With auth enabled, bind `handler` to its first authenticated
    /// subscriber and enforce the binding afterwards: the owner (and
    /// only the owner) may subscribe again; unauthenticated sessions
    /// may serve unclaimed handlers but never claim one. Returns
    /// whether the caller may proceed.
    fn claim_owner(&self, handler: &str, authed: Option<u64>) -> bool {
        let (claimed, next_seq) = {
            let mut ob = self.outbox_stripe(handler).lock();
            let h = ob.entry(handler.to_owned()).or_default();
            match (h.owner, authed) {
                (Some(o), Some(a)) if o == a => return true,
                (Some(_), _) => return false,
                (None, Some(a)) => {
                    h.owner = Some(a);
                    (a, h.next_seq)
                }
                (None, None) => return true,
            }
        };
        if let Some(d) = &self.durable {
            let _ = d.commit(
                TxnId(0),
                &[StoreOp::Put {
                    key: journal::push_seq_key(handler),
                    value: journal::seal(&push_seq_value(next_seq, Some(claimed))),
                }],
            );
        }
        true
    }

    /// Whether `authed` may act on `handler`'s outbox (ack pushes).
    /// Unclaimed handlers are open; claimed ones admit only the owner.
    fn may_touch(&self, handler: &str, authed: Option<u64>) -> bool {
        let ob = self.outbox_stripe(handler).lock();
        match ob.get(handler).and_then(|h| h.owner) {
            Some(o) => authed == Some(o),
            None => true,
        }
    }

    /// Resurrect a dead-lettered handler on an authorized re-subscribe:
    /// clear the tombstone and resume the preserved sequence counter.
    /// Returns whether a resurrection happened.
    fn resurrect(&self, handler: &str) -> bool {
        let revived = {
            let mut ob = self.outbox_stripe(handler).lock();
            match ob.get_mut(handler) {
                Some(h) if h.evicted => {
                    h.evicted = false;
                    Some((h.next_seq, h.owner))
                }
                _ => None,
            }
        };
        let Some((next_seq, owner)) = revived else {
            return false;
        };
        if let Some(d) = &self.durable {
            let _ = d.commit(
                TxnId(0),
                &[
                    StoreOp::Put {
                        key: journal::push_seq_key(handler),
                        value: journal::seal(&push_seq_value(next_seq, owner)),
                    },
                    StoreOp::Delete {
                        key: journal::evict_key(handler),
                    },
                ],
            );
        }
        true
    }

    /// Add `session` as a server for `handler`. Registers the engine
    /// proxy on the first subscriber.
    fn subscribe(
        self: &Arc<Self>,
        db: &ActiveDatabase,
        handler: &str,
        session: u64,
        writer: Arc<Mutex<TcpStream>>,
    ) {
        let mut map = self.handlers(handler).write();
        let subs = map.entry(handler.to_owned()).or_default();
        if !subs.iter().any(|s| s.session == session) {
            subs.push(Subscriber { session, writer });
        }
        if subs.len() == 1 {
            let me = Arc::clone(self);
            let name = handler.to_owned();
            db.register_handler(handler, move |request, args| {
                me.deliver(&name, request, args)
            });
        }
    }

    /// Remove `session` from `handler`'s subscribers; unregisters the
    /// proxy when the list empties.
    fn unsubscribe(&self, db: &ActiveDatabase, handler: &str, session: u64) {
        let mut map = self.handlers(handler).write();
        if let Some(subs) = map.get_mut(handler) {
            subs.retain(|s| s.session != session);
            if subs.is_empty() {
                map.remove(handler);
                db.unregister_handler(handler);
            }
        }
    }

    /// Remove `session` from every handler it serves.
    fn drop_session(&self, db: &ActiveDatabase, session: u64) {
        for stripe in &self.by_handler {
            let mut map = stripe.write();
            map.retain(|handler, subs| {
                subs.retain(|s| s.session != session);
                if subs.is_empty() {
                    db.unregister_handler(handler);
                    false
                } else {
                    true
                }
            });
        }
    }

    /// Push `request` to every subscriber of `handler`.
    ///
    /// v4 semantics: the frame is sequenced and enqueued in the outbox
    /// (persisted *before* the socket write, so a crash between the
    /// two redelivers rather than loses) and delivery succeeds as soon
    /// as the frame is retained — even if every socket write fails, a
    /// reconnecting subscriber picks it up on re-subscribe. Delivery
    /// fails only when nobody subscribes to the handler at all or the
    /// outbox is full (backpressure into the triggering rule action).
    /// Batched fan-out: the frame is encoded **once** and written to
    /// every subscriber in two phases. Phase 1 writes opportunistically
    /// (non-blocking — a subscriber whose socket has room costs one
    /// syscall and never waits on its peers); phase 2 finishes the
    /// stragglers with a bounded blocking write, so one wedged
    /// subscriber delays only itself, up to `push_write_timeout`, and
    /// is then culled. Its unacked frames stay in the outbox for
    /// redelivery — per-subscriber backpressure without loss.
    fn deliver(
        &self,
        handler: &str,
        request: &str,
        args: &HashMap<String, Value>,
    ) -> HipacResult<()> {
        let subscribers: Vec<Subscriber> = match self.handlers(handler).read().get(handler) {
            Some(subs) => subs.clone(),
            None => Vec::new(),
        };
        if subscribers.is_empty() {
            return Err(HipacError::NoApplicationHandler(handler.to_owned()));
        }
        let frame = {
            let mut ob = self.outbox_stripe(handler).lock();
            let h = ob.entry(handler.to_owned()).or_default();
            if h.evicted {
                self.pushes_shed.fetch_add(1, Ordering::Relaxed);
                return Err(HipacError::InUse(format!(
                    "handler dead-lettered (subscriber evicted): {handler}"
                )));
            }
            // Slow-subscriber policy: an outbox past its byte or age
            // budget is dead-lettered instead of backpressured forever.
            // `deliver` runs on rule-firing threads inside transactions,
            // so it only *decides* here; the durable GC, teardown, and
            // `SubscriberEvicted` signal run on the eviction housekeeper.
            let bytes_blown = self.evict_bytes > 0 && h.bytes as usize >= self.evict_bytes;
            let age_blown = self.evict_age.is_some_and(|limit| {
                h.enqueued_at
                    .values()
                    .next()
                    .is_some_and(|oldest| oldest.elapsed() > limit)
            });
            if bytes_blown || age_blown {
                h.evicted = true;
                self.evict_queue.lock().push(EvictNotice {
                    handler: handler.to_owned(),
                    next_seq: h.next_seq,
                    seqs: h.unacked.keys().copied().collect(),
                    unacked: h.unacked.len() as u64,
                    bytes: h.bytes,
                    reason: if bytes_blown { "bytes" } else { "age" },
                });
                self.pushes_shed.fetch_add(1, Ordering::Relaxed);
                return Err(HipacError::InUse(format!(
                    "subscriber evicted: push outbox over budget for handler {handler}"
                )));
            }
            if h.unacked.len() >= self.outbox_cap {
                return Err(HipacError::InUse(format!(
                    "push outbox full for handler {handler} ({} unacked)",
                    h.unacked.len()
                )));
            }
            let seq = h.next_seq.max(1);
            h.next_seq = seq + 1;
            let frame = Frame::Push(PushEvent {
                seq,
                handler: handler.to_owned(),
                request: request.to_owned(),
                args: args.clone(),
            })
            .encode();
            if let Some(d) = &self.durable {
                // Persist-then-send: runs as a metadata batch (TxnId 0)
                // so it cannot consume a reply-journal annotation armed
                // for the enclosing commit.
                d.commit(
                    TxnId(0),
                    &[
                        StoreOp::Put {
                            key: journal::outbox_key(handler, seq),
                            value: journal::seal(&frame),
                        },
                        StoreOp::Put {
                            key: journal::push_seq_key(handler),
                            value: journal::seal(&push_seq_value(h.next_seq, h.owner)),
                        },
                    ],
                )?;
            }
            h.bytes += frame.len() as u64;
            h.enqueued_at.insert(seq, Instant::now());
            h.unacked.insert(seq, frame.clone());
            frame
        };
        // Phase 1: one opportunistic pass over everyone.
        let mut pending: Vec<(usize, usize)> = Vec::new(); // (subscriber, bytes already written)
        let mut dead = Vec::new();
        for (i, sub) in subscribers.iter().enumerate() {
            let mut w = sub.writer.lock();
            match crate::reactor::try_write_prefix(&mut w, &frame) {
                Ok(n) if n == frame.len() => {}
                Ok(n) => pending.push((i, n)),
                Err(_) => dead.push(sub.session),
            }
        }
        // Phase 2: bounded blocking finish for the backed-up sockets.
        for (i, off) in pending {
            let sub = &subscribers[i];
            let mut w = sub.writer.lock();
            if crate::reactor::write_all_timeout(&mut w, &frame[off..], self.push_write_timeout)
                .is_err()
            {
                dead.push(sub.session);
            }
        }
        if !dead.is_empty() {
            let mut map = self.handlers(handler).write();
            if let Some(subs) = map.get_mut(handler) {
                subs.retain(|s| !dead.contains(&s.session));
            }
        }
        Ok(())
    }

    /// Drop an acked frame from the outbox (and storage).
    fn ack(&self, handler: &str, seq: u64) {
        let removed = {
            let mut ob = self.outbox_stripe(handler).lock();
            ob.get_mut(handler)
                .map(|h| match h.unacked.remove(&seq) {
                    Some(frame) => {
                        h.enqueued_at.remove(&seq);
                        h.bytes = h.bytes.saturating_sub(frame.len() as u64);
                        true
                    }
                    None => false,
                })
                .unwrap_or(false)
        };
        if removed {
            if let Some(d) = &self.durable {
                // Best effort: a crash before this delete redelivers
                // the frame after restart and the client dedups by
                // sequence.
                let _ = d.commit(
                    TxnId(0),
                    &[StoreOp::Delete {
                        key: journal::outbox_key(handler, seq),
                    }],
                );
            }
        }
    }

    /// Write every unacked frame of `handler` to `writer` in sequence
    /// order (a freshly subscribed session catching up). Returns how
    /// many frames were redelivered.
    fn redeliver(&self, handler: &str, writer: &Arc<Mutex<TcpStream>>) -> u64 {
        let frames: Vec<Vec<u8>> = {
            let ob = self.outbox_stripe(handler).lock();
            match ob.get(handler) {
                Some(h) => h.unacked.values().cloned().collect(),
                None => Vec::new(),
            }
        };
        let mut n = 0u64;
        let mut w = writer.lock();
        for frame in &frames {
            if crate::reactor::write_all_timeout(&mut w, frame, self.push_write_timeout).is_err() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Total unacked push frames across all handlers (test/ops gauge).
    fn unacked_total(&self) -> u64 {
        self.outbox
            .iter()
            .map(|stripe| {
                stripe
                    .lock()
                    .values()
                    .map(|h| h.unacked.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

/// Bytes of WAL tail read per shipping round per replica.
const SHIP_WINDOW: usize = 256 * 1024;

/// Per-peer `(lsn, fold)` digest checkpoints retained for anti-entropy
/// comparison. A progress report whose LSN has already been pruned
/// simply skips the comparison (detection is best-effort, never a
/// correctness gate).
const DIGEST_LOG_CAP: usize = 256;

/// One replica connection registered via `ReplSubscribe`.
struct ReplPeer {
    session: u64,
    writer: Arc<Mutex<TcpStream>>,
    /// Protocol version this peer negotiated; epoch and digest fields
    /// are encoded on its stream only for v9+ peers.
    version: u32,
    /// Next LSN to ship to this peer (the WAL read resume point; it
    /// advances past checkpoint/abort markers).
    shipped: u64,
    /// Stream-chain position: the last shipped batch's `next_lsn` (or
    /// the subscribe/snapshot LSN). This is exactly the watermark the
    /// peer holds after applying everything shipped so far, and is
    /// sent as each batch's `prev_lsn` so the peer can detect gaps.
    chained: u64,
    /// Highest LSN the peer has reported durably applied.
    progress: u64,
    /// Incremental fold of every batch digest shipped to this peer
    /// since subscribe/snapshot — the primary's half of the
    /// anti-entropy exchange (see [`hipac_storage::fold_digest`]).
    fold: u64,
    /// Recent `(chained_lsn, fold)` checkpoints, bounded at
    /// [`DIGEST_LOG_CAP`]: a progress report's digest is compared at
    /// its exact applied LSN.
    digest_log: VecDeque<(u64, u64)>,
    /// Last digest comparison outcome (true until proven otherwise).
    digest_ok: bool,
    /// Ship a full snapshot before any batches: the peer subscribed
    /// from an older epoch, so its watermark lives in a dead LSN space
    /// and must not be used as a WAL resume point.
    force_snapshot: bool,
    /// Socket write failed; the peer is culled after the round.
    dead: bool,
}

/// Replica acks required to release a semi-sync commit: a majority of
/// the full fleet (the N connected replicas plus this primary),
/// ⌈(N+1)/2⌉. One replica → 1 (it must ack, as before multi-replica
/// fan-out existed); three replicas → 2, so one crashed or lagging
/// replica no longer degrades every commit to asynchronous.
fn quorum_of(n_peers: u64) -> u64 {
    if n_peers == 0 {
        0
    } else {
        (n_peers + 2) / 2
    }
}

/// How long a blocked write to a replica socket may stall the shipper
/// before the peer is declared dead and culled (it will reconnect and
/// resubscribe from its durable watermark).
const REPL_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Primary-side replication hub: the registry of subscribed replica
/// connections plus the single shipper thread that streams committed
/// WAL batches to each of them — or a full snapshot when a replica's
/// resume LSN has been truncated away by a checkpoint
/// (`TailRead::OutOfRange`).
///
/// The hub also carries the semi-sync gate: sessions and the drain
/// path call [`ReplHub::wait_caught_up`] to hold an ack (or the
/// shutdown) until every connected replica has applied up to the
/// durable frontier.
struct ReplHub {
    /// `None` for in-memory databases, which cannot be replicated
    /// (there is no WAL to ship); `ReplSubscribe` is refused.
    durable: Option<Arc<DurableStore>>,
    counters: Arc<ReplCounters>,
    peers: Mutex<Vec<ReplPeer>>,
    /// Whether semi-sync acks are configured — reported as the
    /// `repl_quorum` gauge (0 when off, the required ack count when
    /// on).
    sync: bool,
    /// Set when this node observes a replication epoch newer than its
    /// own: a promotion happened elsewhere while this node thought it
    /// was primary. From then on every write-class command is refused
    /// with `NotPrimary` (split-brain fence) until the operator
    /// rejoins the node as a replica of the new epoch's primary.
    fenced: AtomicBool,
}

impl ReplHub {
    fn new(
        durable: Option<Arc<DurableStore>>,
        counters: Arc<ReplCounters>,
        sync: bool,
    ) -> Arc<ReplHub> {
        // Seed the epoch gauges from the persisted sidecar so STATS
        // serves the fence coordinates from the first request on.
        if let Some(d) = &durable {
            counters.epoch.store(d.repl_epoch(), Ordering::Relaxed);
            let (prev, start) = d.repl_fence();
            counters.fence_prev.store(prev, Ordering::Relaxed);
            counters.fence_start.store(start, Ordering::Relaxed);
        }
        // Healthy until a semi-sync wait proves otherwise. A persisted
        // fence marker (set when this node learned it was deposed, not
        // yet repaired by rejoin) re-arms the write fence on restart.
        counters.quorum_ok.store(1, Ordering::Relaxed);
        let fenced = durable.as_ref().is_some_and(|d| d.repl_fenced());
        Arc::new(ReplHub {
            durable,
            counters,
            peers: Mutex::new(Vec::new()),
            sync,
            fenced: AtomicBool::new(fenced),
        })
    }

    /// The replication epoch this node operates under (0 for in-memory
    /// databases, which cannot be fenced).
    fn epoch(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.repl_epoch())
    }

    /// Demote this node: persist the newer epoch *with the fence
    /// marker set* — so the fence survives a restart, can never be
    /// un-observed, and `ReplicaNode::rejoin` still knows the local
    /// WAL carries an unrepaired divergent tail — and refuse writes
    /// from now on.
    fn fence(&self, new_epoch: u64) {
        self.fenced.store(true, Ordering::Release);
        self.counters.stale_epochs.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = &self.durable {
            let _ = d.fence_epoch(new_epoch);
        }
        self.counters.epoch.fetch_max(new_epoch, Ordering::Relaxed);
    }

    /// Register (or re-register) `session`'s connection as a replica
    /// resuming from `start_lsn`. The shipper validates the LSN lazily:
    /// an unusable resume point simply produces a snapshot. A peer
    /// subscribing from an older epoch gets an unconditional snapshot —
    /// its LSNs belong to a superseded primary's WAL and must never be
    /// interpreted in this one.
    ///
    /// Callers must invoke this only *after* the `ReplSubscribe` Ok
    /// response frame has been written to the socket — registering
    /// earlier lets the shipper interleave repl frames ahead of the
    /// Ok, which the replica's handshake would have to reorder.
    fn subscribe(
        &self,
        session: u64,
        writer: Arc<Mutex<TcpStream>>,
        start_lsn: u64,
        version: u32,
        peer_epoch: u64,
    ) {
        // A wedged replica must not block the shipper forever: writes
        // go through `write_all_timeout(REPL_WRITE_TIMEOUT)` (sockets
        // are non-blocking under the reactor), the peer is culled, and
        // the replica resubscribes.
        //
        // Any peer that cannot prove it observed this node's epoch —
        // including pre-v9 peers and v9 peers that slept through the
        // promotion, both of which offer epoch 0 — gets a snapshot:
        // their watermark may have been minted under a deposed
        // primary's WAL. A never-promoted fleet has epoch 0 itself, so
        // the v8 resume semantics there are unchanged.
        let force_snapshot = peer_epoch < self.epoch();
        let mut peers = self.peers.lock();
        peers.retain(|p| p.session != session);
        peers.push(ReplPeer {
            session,
            writer,
            version,
            shipped: start_lsn,
            chained: start_lsn,
            progress: start_lsn,
            fold: 0,
            digest_log: VecDeque::from([(start_lsn, 0)]),
            digest_ok: true,
            force_snapshot,
            dead: false,
        });
        drop(peers);
        self.refresh_gauges();
    }

    fn drop_session(&self, session: u64) {
        self.peers.lock().retain(|p| p.session != session);
        self.refresh_gauges();
    }

    fn peer_count(&self) -> usize {
        self.peers.lock().len()
    }

    /// A replica reported durable application up to `applied_lsn`,
    /// carrying its incremental stream digest (v9; pre-v9 peers report
    /// no digest and are exempt from comparison). Folds the best
    /// progress across peers into the shared counters and compares the
    /// peer's digest against the primary-side fold at the same LSN.
    fn record_progress(&self, session: u64, applied_lsn: u64, digest: u64) {
        let best = {
            let mut peers = self.peers.lock();
            let mut best = 0u64;
            for p in peers.iter_mut() {
                if p.session == session {
                    p.progress = p.progress.max(applied_lsn);
                    if p.version >= 9 {
                        if let Some(&(_, expect)) =
                            p.digest_log.iter().find(|(l, _)| *l == applied_lsn)
                        {
                            let ok = expect == digest;
                            if !ok {
                                self.counters.digest_mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                            p.digest_ok = ok;
                        }
                        // Checkpoints at or before the report can never
                        // be asked about again (progress is monotone).
                        while p.digest_log.front().is_some_and(|(l, _)| *l < applied_lsn) {
                            p.digest_log.pop_front();
                        }
                    }
                }
                best = best.max(p.progress);
            }
            best
        };
        if let Some(d) = &self.durable {
            self.counters.record_applied(best, d.durable_lsn());
        }
        self.refresh_gauges();
    }

    /// Fold per-peer state into the shared gauges: peer count, the
    /// quorum-limiting watermark, digest agreement, and the required
    /// semi-sync ack count.
    fn refresh_gauges(&self) {
        let (n, min, digest_ok) = {
            let peers = self.peers.lock();
            (
                peers.len() as u64,
                peers.iter().map(|p| p.progress).min().unwrap_or(0),
                peers.iter().filter(|p| p.digest_ok).count() as u64,
            )
        };
        self.counters.peers.store(n, Ordering::Relaxed);
        self.counters.min_peer_applied.store(min, Ordering::Relaxed);
        self.counters.digest_ok_peers.store(digest_ok, Ordering::Relaxed);
        self.counters
            .quorum
            .store(if self.sync { quorum_of(n) } else { 0 }, Ordering::Relaxed);
    }

    /// One shipping round over all peers. Returns whether any bytes
    /// moved (the shipper thread sleeps when nothing did).
    ///
    /// The peers mutex is held only to snapshot the peer list and to
    /// commit results afterwards — never across socket I/O — so
    /// progress reports, (re)subscribes, session teardown and the
    /// semi-sync gate can never stall behind a slow replica's socket
    /// (writes additionally carry [`REPL_WRITE_TIMEOUT`], bounding how
    /// long the shipper itself can wedge on one peer).
    fn ship_once(&self) -> bool {
        let Some(d) = &self.durable else { return false };
        struct Target {
            session: u64,
            writer: Arc<Mutex<TcpStream>>,
            shipped: u64,
            chained: u64,
            version: u32,
            fold: u64,
            force_snapshot: bool,
        }
        let targets: Vec<Target> = self
            .peers
            .lock()
            .iter()
            .map(|p| Target {
                session: p.session,
                writer: Arc::clone(&p.writer),
                shipped: p.shipped,
                chained: p.chained,
                version: p.version,
                fold: p.fold,
                force_snapshot: p.force_snapshot,
            })
            .collect();
        if targets.is_empty() {
            return false;
        }
        let epoch = d.repl_epoch();
        let mut worked = false;
        struct Outcome {
            session: u64,
            pre_shipped: u64,
            shipped: u64,
            chained: u64,
            fold: u64,
            /// New `(lsn, fold)` digest checkpoints from this round;
            /// `reseed` replaces the peer's log instead of appending
            /// (snapshot: the stream fold restarts from zero).
            log: Vec<(u64, u64)>,
            reseed: bool,
            dead: bool,
        }
        let mut outcomes: Vec<Outcome> = Vec::new();
        for t in targets {
            let durable_lsn = d.durable_lsn();
            let pre_shipped = t.shipped;
            let mut shipped = t.shipped;
            let mut chained = t.chained;
            let mut fold = t.fold;
            let mut log: Vec<(u64, u64)> = Vec::new();
            let mut reseed = false;
            let mut dead = false;
            if t.force_snapshot {
                // Stale-epoch subscriber: its watermark is from a dead
                // LSN space; bootstrap it with a snapshot immediately.
                match Self::ship_snapshot(d, &t.writer, t.version, epoch) {
                    Some(snapshot_lsn) => {
                        shipped = snapshot_lsn;
                        chained = snapshot_lsn;
                        fold = 0;
                        log = vec![(snapshot_lsn, 0)];
                        reseed = true;
                    }
                    None => dead = true,
                }
                worked = true;
            } else if shipped < durable_lsn {
                match d.read_batches_from(shipped, SHIP_WINDOW as u64) {
                    Ok(TailRead::Batches { batches, next_lsn, .. }) => {
                        if next_lsn > shipped || !batches.is_empty() {
                            let mut w = t.writer.lock();
                            for b in &batches {
                                let frame = Frame::Repl(ReplMsg::Batch {
                                    prev_lsn: chained,
                                    start_lsn: b.start_lsn,
                                    next_lsn: b.next_lsn,
                                    txn: b.txn,
                                    ops: b.ops.clone(),
                                    epoch,
                                })
                                .encode_versioned(t.version);
                                if crate::reactor::write_all_timeout(
                                    &mut w,
                                    &frame,
                                    REPL_WRITE_TIMEOUT,
                                )
                                .is_err()
                                {
                                    dead = true;
                                    break;
                                }
                                chained = b.next_lsn;
                                fold = hipac_storage::fold_digest(
                                    fold,
                                    hipac_storage::batch_digest(b.next_lsn, b.txn, &b.ops),
                                );
                                log.push((b.next_lsn, fold));
                            }
                            if !dead && next_lsn > shipped {
                                shipped = next_lsn;
                                worked = true;
                            }
                        }
                    }
                    Ok(TailRead::OutOfRange { .. }) => {
                        // The peer's resume point predates the oldest
                        // retained WAL (checkpoint truncation) or is
                        // misaligned: re-seed it with a full snapshot.
                        match Self::ship_snapshot(d, &t.writer, t.version, epoch) {
                            Some(snapshot_lsn) => {
                                shipped = snapshot_lsn;
                                chained = snapshot_lsn;
                                fold = 0;
                                log = vec![(snapshot_lsn, 0)];
                                reseed = true;
                            }
                            None => dead = true,
                        }
                        worked = true;
                    }
                    Err(_) => {}
                }
            }
            outcomes.push(Outcome {
                session: t.session,
                pre_shipped,
                shipped,
                chained,
                fold,
                log,
                reseed,
                dead,
            });
        }
        let mut best_shipped = 0u64;
        {
            let mut peers = self.peers.lock();
            for o in outcomes {
                if let Some(p) = peers.iter_mut().find(|p| p.session == o.session) {
                    if o.dead {
                        p.dead = true;
                    } else if p.shipped == o.pre_shipped {
                        // Unchanged since the snapshot: commit the
                        // round. (A concurrent resubscribe rewinds
                        // `shipped`; its fresh resume point must win
                        // over this stale round's.)
                        p.shipped = o.shipped;
                        p.chained = o.chained;
                        p.fold = o.fold;
                        if o.reseed {
                            p.digest_log = o.log.into_iter().collect();
                            p.digest_ok = true;
                            p.force_snapshot = false;
                        } else {
                            p.digest_log.extend(o.log);
                            while p.digest_log.len() > DIGEST_LOG_CAP {
                                p.digest_log.pop_front();
                            }
                        }
                    }
                }
            }
            peers.retain(|p| !p.dead);
            for p in peers.iter() {
                best_shipped = best_shipped.max(p.shipped);
            }
        }
        if best_shipped > 0 {
            self.counters
                .last_shipped_lsn
                .fetch_max(best_shipped, Ordering::Relaxed);
        }
        worked
    }

    /// Stream a consistent full-state snapshot to `writer`. Returns
    /// the snapshot frontier LSN — the peer's new resume point — or
    /// `None` on a socket failure.
    fn ship_snapshot(
        d: &Arc<DurableStore>,
        writer: &Mutex<TcpStream>,
        version: u32,
        epoch: u64,
    ) -> Option<u64> {
        let (snapshot_lsn, pairs) = d.snapshot_for_repl().ok()?;
        let mut w = writer.lock();
        let send = |w: &mut TcpStream, frame: &[u8]| {
            crate::reactor::write_all_timeout(w, frame, REPL_WRITE_TIMEOUT).is_ok()
        };
        let begin = Frame::Repl(ReplMsg::SnapshotBegin { snapshot_lsn }).encode_versioned(version);
        if !send(&mut w, &begin) {
            return None;
        }
        // Chunk by payload volume so no frame approaches the cap.
        let mut chunk: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut chunk_bytes = 0usize;
        for (k, v) in pairs {
            chunk_bytes += k.len() + v.len() + 16;
            chunk.push((k, v));
            if chunk_bytes >= SHIP_WINDOW {
                let frame = Frame::Repl(ReplMsg::SnapshotChunk {
                    pairs: std::mem::take(&mut chunk),
                })
                .encode_versioned(version);
                chunk_bytes = 0;
                if !send(&mut w, &frame) {
                    return None;
                }
            }
        }
        if !chunk.is_empty() {
            let frame =
                Frame::Repl(ReplMsg::SnapshotChunk { pairs: chunk }).encode_versioned(version);
            if !send(&mut w, &frame) {
                return None;
            }
        }
        let end = Frame::Repl(ReplMsg::SnapshotEnd {
            snapshot_lsn,
            epoch,
        })
        .encode_versioned(version);
        if !send(&mut w, &end) {
            return None;
        }
        Some(snapshot_lsn)
    }

    /// Advertise the durable frontier to idle peers. As with
    /// [`ReplHub::ship_once`], socket writes happen outside the peers
    /// lock.
    fn heartbeat(&self) {
        let Some(d) = &self.durable else { return };
        let durable_lsn = d.durable_lsn();
        let epoch = d.repl_epoch();
        let writers: Vec<(u64, Arc<Mutex<TcpStream>>, u32)> = self
            .peers
            .lock()
            .iter()
            .map(|p| (p.session, Arc::clone(&p.writer), p.version))
            .collect();
        let mut dead = Vec::new();
        for (session, w, version) in writers {
            let frame =
                Frame::Repl(ReplMsg::Heartbeat { durable_lsn, epoch }).encode_versioned(version);
            if crate::reactor::write_all_timeout(&mut w.lock(), &frame, REPL_WRITE_TIMEOUT).is_err()
            {
                dead.push(session);
            }
        }
        if !dead.is_empty() {
            self.peers.lock().retain(|p| !dead.contains(&p.session));
        }
        self.refresh_gauges();
    }

    /// Block until a quorum of the connected replicas — ⌈(N+1)/2⌉ of
    /// N, see [`quorum_of`] — has reported progress at or past the
    /// current durable frontier, or `timeout` passes. Vacuously true
    /// with no peers or no WAL; with three replicas, one crashed or
    /// lagging peer no longer degrades every commit to asynchronous.
    fn wait_caught_up(&self, timeout: Duration) -> bool {
        let Some(d) = &self.durable else { return true };
        let lsn = d.durable_lsn();
        let deadline = Instant::now() + timeout;
        loop {
            let (n, caught) = {
                let peers = self.peers.lock();
                (
                    peers.len() as u64,
                    peers.iter().filter(|p| p.progress >= lsn).count() as u64,
                )
            };
            if caught >= quorum_of(n) {
                self.counters.quorum_ok.store(1, Ordering::Relaxed);
                return true;
            }
            if Instant::now() >= deadline {
                self.counters.quorum_ok.store(0, Ordering::Relaxed);
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Cross-session resilience state: gauges served over STATS, the
/// admission-control budget, and the idempotency window.
struct ServerShared {
    /// Live sessions (a gauge: incremented at session start,
    /// decremented at teardown).
    active_connections: AtomicU64,
    /// Requests shed by admission control with an `Overloaded` error.
    shed_requests: AtomicU64,
    /// Requests answered from the dedup window instead of re-executing.
    dedup_hits: AtomicU64,
    /// Dedup hits served from the persistent reply journal after a
    /// restart (a subset of `dedup_hits`): retries whose original
    /// committed in a previous process incarnation.
    journal_replays: AtomicU64,
    /// Requests shed by the adaptive queueing-delay signal (a subset
    /// of neither — counted separately from `shed_requests`).
    shed_adaptive: AtomicU64,
    /// Push frames redelivered from the outbox on re-subscribe.
    pushes_redelivered: AtomicU64,
    /// EWMA of dispatch time in microseconds (the adaptive admission
    /// signal).
    ewma_us: AtomicU64,
    /// Requests currently in dispatch (the admission gauge).
    in_flight: AtomicU64,
    /// Set by [`HipacServer::drain`]: refuse new connections and new
    /// requests while in-flight work finishes.
    draining: AtomicBool,
    /// Set when a dispatch surfaced a storage `Io` error on a durable
    /// database: the in-memory engine may have diverged from the WAL,
    /// so every further request is refused (`Draining`) until the
    /// operator restarts against the data dir. Refusing is what makes
    /// an Io outcome *safe* to leave ambiguous — the retry resolves it
    /// against the recovered journal, not against poisoned state.
    storage_poisoned: AtomicBool,
    /// Idempotency window, striped by client-id hash ([`stripe_of_u64`])
    /// so sessions served from different reactor shards never contend
    /// on one global lock — and so the *same* client always probes the
    /// same stripe no matter which shard its reconnected socket lands
    /// on (cross-shard dedup correctness is by key, not by shard).
    dedup: Vec<Mutex<DedupWindow>>,
    /// Journal keys evicted from the in-memory window, awaiting a
    /// piggybacked durable delete on the next journaled commit.
    pending_evictions: Mutex<Vec<(u64, u64)>>,
    /// Keyed requests refused because the session had not proven the
    /// asserted `client_id` (or presented a bad `Auth` token, or tried
    /// to touch another tenant's subscription).
    auth_failures: AtomicU64,
    /// Requests shed by a per-tenant admission gate (cap or per-tenant
    /// queueing-delay signal) — disjoint from the global counters.
    tenant_shed_requests: AtomicU64,
    /// Subscriptions dead-lettered by the slow-subscriber policy.
    subscribers_evicted: AtomicU64,
    /// Per-tenant admission state, striped like the dedup window so
    /// tenants served from different reactor shards never contend on
    /// one lock. Tenant identity is the authenticated client id when
    /// auth is on (id 0 = the shared `unauthenticated` class) and the
    /// asserted client id otherwise.
    tenants: Vec<Mutex<HashMap<u64, Arc<TenantState>>>>,
}

/// One tenant's admission gauges: its in-flight count, its own
/// dispatch-delay EWMA, and how many of its requests were shed.
#[derive(Default)]
struct TenantState {
    in_flight: AtomicU64,
    ewma_us: AtomicU64,
    shed: AtomicU64,
}

/// Soft cap on tenants remembered per stripe; beyond it an *idle*
/// tenant is forgotten to make room, so churning client ids cannot grow
/// the table unboundedly (a tenant with work in flight is never
/// dropped — losing its gauge mid-request would corrupt the counts).
const TENANTS_PER_STRIPE: usize = 64;

impl ServerShared {
    fn new(dedup_window: usize) -> Arc<ServerShared> {
        Arc::new(ServerShared {
            active_connections: AtomicU64::new(0),
            shed_requests: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            journal_replays: AtomicU64::new(0),
            shed_adaptive: AtomicU64::new(0),
            pushes_redelivered: AtomicU64::new(0),
            ewma_us: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            storage_poisoned: AtomicBool::new(false),
            dedup: (0..STATE_STRIPES)
                .map(|_| Mutex::new(DedupWindow::new(dedup_window)))
                .collect(),
            pending_evictions: Mutex::new(Vec::new()),
            auth_failures: AtomicU64::new(0),
            tenant_shed_requests: AtomicU64::new(0),
            subscribers_evicted: AtomicU64::new(0),
            tenants: (0..STATE_STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
        })
    }

    fn dedup_stripe(&self, client: u64) -> &Mutex<DedupWindow> {
        &self.dedup[stripe_of_u64(client)]
    }

    /// The admission state for tenant `id`, created on first sight.
    fn tenant(&self, id: u64) -> Arc<TenantState> {
        let mut map = self.tenants[stripe_of_u64(id)].lock();
        if map.len() >= TENANTS_PER_STRIPE && !map.contains_key(&id) {
            let idle = map
                .iter()
                .find(|(_, t)| t.in_flight.load(Ordering::Acquire) == 0)
                .map(|(k, _)| *k);
            if let Some(idle) = idle {
                map.remove(&idle);
            }
        }
        Arc::clone(map.entry(id).or_default())
    }

    /// Distinct tenants currently tracked (a gauge for Stats).
    fn tenants_active(&self) -> u64 {
        self.tenants.iter().map(|s| s.lock().len() as u64).sum()
    }
}

/// Bounded per-client reply cache keyed by `(client_id, seq)`.
///
/// A retry of an acked-but-lost response replays the cached reply, so
/// the command applies exactly once even though the client sent it
/// twice. Only *definite* outcomes are remembered — shed (`Overloaded`)
/// and draining refusals are returned before insertion, so a later
/// retry of the same `seq` re-executes.
struct DedupWindow {
    per_client: usize,
    clients: HashMap<u64, ClientWindow>,
    /// First-seen order of clients, for eviction at [`Self::MAX_CLIENTS`].
    client_order: VecDeque<u64>,
}

#[derive(Clone)]
struct CachedReply {
    reply: Reply,
    /// The entry also exists in the durable reply journal (its
    /// eviction must piggyback a journal delete).
    journaled: bool,
    /// The entry was rebuilt from the journal at startup — a hit on it
    /// is a cross-restart replay, counted in `journal_replays`.
    restored: bool,
}

#[derive(Default)]
struct ClientWindow {
    replies: HashMap<u64, CachedReply>,
    order: VecDeque<u64>,
    /// Highest sequence ever evicted from this client's window. A miss
    /// at or below the floor is answered with a typed `ReplyEvicted`
    /// refusal instead of silently re-executing: the outcome of that
    /// old request is unknowable, and "definitely refused" is the only
    /// safe answer.
    floor: u64,
}

/// Outcome of a dedup probe, distinguishing a fresh sequence from one
/// whose cached reply was evicted under pressure.
enum DedupProbe {
    Hit(Box<CachedReply>),
    Evicted,
    Miss,
}

impl DedupWindow {
    /// Distinct clients remembered at once; oldest-first eviction
    /// beyond this keeps the window bounded even under client churn.
    const MAX_CLIENTS: usize = 1024;

    fn new(per_client: usize) -> DedupWindow {
        DedupWindow {
            per_client,
            clients: HashMap::new(),
            client_order: VecDeque::new(),
        }
    }

    fn probe(&self, client: u64, seq: u64) -> DedupProbe {
        match self.clients.get(&client) {
            Some(w) => match w.replies.get(&seq) {
                Some(cached) => DedupProbe::Hit(Box::new(cached.clone())),
                None if seq <= w.floor => DedupProbe::Evicted,
                None => DedupProbe::Miss,
            },
            None => DedupProbe::Miss,
        }
    }

    /// Insert a reply; returns the journaled `(client, seq)` entries
    /// this insert evicted, which owe a durable journal delete.
    fn remember(
        &mut self,
        client: u64,
        seq: u64,
        reply: &Reply,
        journaled: bool,
        restored: bool,
    ) -> Vec<(u64, u64)> {
        let mut evicted_journal = Vec::new();
        if self.per_client == 0 {
            return evicted_journal;
        }
        if !self.clients.contains_key(&client) {
            if self.client_order.len() >= Self::MAX_CLIENTS {
                if let Some(old) = self.client_order.pop_front() {
                    if let Some(w) = self.clients.remove(&old) {
                        for (s, c) in &w.replies {
                            if c.journaled {
                                evicted_journal.push((old, *s));
                            }
                        }
                    }
                }
            }
            self.client_order.push_back(client);
        }
        let w = self.clients.entry(client).or_default();
        let cached = CachedReply {
            reply: reply.clone(),
            journaled,
            restored,
        };
        if w.replies.insert(seq, cached).is_none() {
            w.order.push_back(seq);
            if w.order.len() > self.per_client {
                if let Some(old) = w.order.pop_front() {
                    w.floor = w.floor.max(old);
                    if let Some(c) = w.replies.remove(&old) {
                        if c.journaled {
                            evicted_journal.push((client, old));
                        }
                    }
                }
            }
        }
        evicted_journal
    }
}

/// Dispatch-queue depth at which a connection's reads are paused (its
/// `EPOLLIN` interest disarmed) until a worker drains the queue:
/// per-connection backpressure that cannot be bought with memory. A
/// pipelining client slows down; everyone else is unaffected.
const PENDING_CAP: usize = 64;

/// Bound on writing one response frame to a (non-blocking) client
/// socket from a worker; a client that will not drain its own replies
/// is disconnected rather than allowed to pin a worker.
const RESPONSE_WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Poller token reserved for a shard's wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;

/// How often a shard sweeps its connections for idle timeouts.
const IDLE_SWEEP_EVERY: Duration = Duration::from_millis(100);

/// Resolved shard count: the explicit knob, or a small default from
/// the machine's parallelism (shards are event loops, not compute —
/// a few go a long way).
fn resolve_shards(knob: usize) -> usize {
    if knob > 0 {
        return knob;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// One unit of per-connection work, ordered through [`ConnQueue`].
enum WorkItem {
    /// A complete request frame read by the owning shard.
    Frame(Vec<u8>),
    /// Session teardown — enqueued by the shard when it retires the
    /// connection, so it runs strictly after every in-flight frame.
    Teardown,
}

/// The per-connection dispatch queue. `busy` marks a worker currently
/// draining it; the shard only submits the connection to the job
/// channel on the false→true transition, so at most one worker works a
/// connection at a time and its requests stay strictly ordered.
struct ConnQueue {
    busy: bool,
    pending: VecDeque<WorkItem>,
}

/// Session state mutated by workers (one at a time, by construction).
struct SessionCore {
    /// Protocol version negotiated by the last `Ping` — the minimum of
    /// both ends, governing version-dependent reply encodings. Until a
    /// ping arrives the session conservatively speaks the oldest
    /// supported version.
    negotiated: u32,
    /// The tenant identity this session has proven with `Command::Auth`
    /// (v8); `None` until a valid token arrives. With an `auth_secret`
    /// configured, keyed requests are honored only when their asserted
    /// `client_id` equals this — which is what stops a hostile peer
    /// from replaying another tenant's journal or acking its pushes.
    auth: Option<u64>,
    /// Transactions begun by this session and not yet terminated.
    open_txns: HashSet<TxnId>,
    /// A `ReplSubscribe` accepted but not yet registered with the hub:
    /// `(start_lsn, peer_epoch)`. Registration is deferred until the
    /// Ok response frame has been written to the socket: were the peer
    /// registered first, the shipper could interleave Repl frames
    /// *before* the Ok on the shared writer, and the replica's
    /// handshake would have to cope with replicated data arriving
    /// ahead of the acknowledgement.
    pending_repl: Option<(u64, u64)>,
}

/// Connection state shared between the owning shard (which reads) and
/// the worker pool (which executes and writes).
struct ConnShared {
    id: u64,
    /// The reactor shard owning this connection's socket reads.
    shard: usize,
    writer: Arc<Mutex<TcpStream>>,
    core: Mutex<SessionCore>,
    queue: Mutex<ConnQueue>,
    /// Set by a worker on a doomed connection (response write failed,
    /// protocol violation): queued frames are skipped and the shard
    /// retires the socket at its next wake.
    dead: AtomicBool,
    /// Reads disarmed because the dispatch queue hit [`PENDING_CAP`];
    /// the draining worker asks the shard to re-arm.
    paused: AtomicBool,
}

/// Shard-private per-connection state (owned by the shard thread).
struct ShardConn {
    stream: TcpStream,
    frames: TickReader,
    last_activity: Instant,
    shared: Arc<ConnShared>,
}

/// A shard's mailbox, shared with the accept thread and the workers.
struct ShardHandle {
    /// Freshly admitted sockets awaiting adoption by the shard.
    inbox: Mutex<Vec<TcpStream>>,
    /// Connection ids whose reads should be re-armed (queue drained).
    resume: Mutex<Vec<u64>>,
    /// Write end of the shard's wake pipe.
    wake: Mutex<TcpStream>,
}

/// Everything a worker needs to execute a session's request — the
/// read-only server context threaded through the pool.
struct ServerCtx {
    db: Arc<ActiveDatabase>,
    subs: Arc<Subscriptions>,
    shared: Arc<ServerShared>,
    cfg: ServerConfig,
    /// The durable store for the reply journal (None when journaling
    /// is off or the database is in-memory).
    journal: Option<Arc<DurableStore>>,
    repl: Arc<ReplHub>,
    shards: Vec<Arc<ShardHandle>>,
    /// Resolved shard count, served in `Stats`.
    reactor_shards: usize,
}

/// Append `item` to the connection's queue and submit the connection
/// to the worker pool if no worker is already draining it. Returns the
/// queue depth after the push (the shard's pause signal).
fn enqueue(
    conn: &Arc<ConnShared>,
    item: WorkItem,
    jobs: &crossbeam::channel::Sender<Arc<ConnShared>>,
) -> usize {
    let mut q = conn.queue.lock();
    q.pending.push_back(item);
    let depth = q.pending.len();
    if !q.busy {
        q.busy = true;
        drop(q);
        let _ = jobs.send(Arc::clone(conn));
    }
    depth
}

/// A running network front end over an [`ActiveDatabase`].
///
/// Dropping the server shuts it down gracefully: the listener stops
/// accepting, live sessions finish their in-flight request, open
/// transactions of interrupted sessions abort, and all threads join.
pub struct HipacServer {
    db: Arc<ActiveDatabase>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    /// The original job sender; dropped at shutdown (after the shards —
    /// the only other senders — have joined) to release the workers.
    jobs: Option<crossbeam::channel::Sender<Arc<ConnShared>>>,
    /// Connections refused because the admission cap was reached.
    refused: Arc<AtomicU64>,
    shared: Arc<ServerShared>,
    subscriptions: Arc<Subscriptions>,
    repl: Arc<ReplHub>,
    repl_thread: Option<JoinHandle<()>>,
    /// The slow-subscriber eviction housekeeper (drains
    /// [`Subscriptions::evict_queue`]).
    evict_thread: Option<JoinHandle<()>>,
    ctx: Arc<ServerCtx>,
}

impl HipacServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `db` with default [`ServerConfig`].
    pub fn bind(db: Arc<ActiveDatabase>, addr: impl ToSocketAddrs) -> Result<HipacServer, WireError> {
        HipacServer::bind_with(db, addr, ServerConfig::default())
    }

    /// Bind with explicit configuration.
    pub fn bind_with(
        db: Arc<ActiveDatabase>,
        addr: impl ToSocketAddrs,
        mut config: ServerConfig,
    ) -> Result<HipacServer, WireError> {
        // Deploy-time overrides for the replication cadence knobs, so
        // fleet operators can tune them without recompiling callers.
        if let Some(every) = env_millis("HIPAC_REPL_HEARTBEAT_MS") {
            config.repl_heartbeat_every = every;
        }
        if let Some(degrade) = env_millis("HIPAC_REPL_DEGRADE_MS") {
            config.sync_repl_timeout = degrade;
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept, driven by a poller on the listener fd:
        // new connections accept immediately, and the bounded wait
        // keeps the shutdown flag observable.
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let durable = if config.reply_journal {
            db.durable_store().cloned()
        } else {
            None
        };
        let subscriptions = Subscriptions::new(
            config.outbox_cap,
            config.push_write_timeout,
            config.outbox_evict_bytes,
            config.outbox_evict_age,
            durable.clone(),
        );
        let refused = Arc::new(AtomicU64::new(0));
        let shared = ServerShared::new(config.dedup_window);
        if let Some(d) = &durable {
            load_reply_journal(d, &shared, config.dedup_window);
        }
        // Replication ships the WAL regardless of reply-journal config.
        let repl = ReplHub::new(
            db.durable_store().cloned(),
            Arc::clone(db.repl_counters()),
            config.sync_repl,
        );
        let repl_thread = {
            let hub = Arc::clone(&repl);
            let stop = Arc::clone(&shutdown);
            let beat_every = config.repl_heartbeat_every;
            std::thread::Builder::new()
                .name("hipac-net-repl-ship".to_owned())
                .spawn(move || {
                    let mut last_beat = Instant::now();
                    while !stop.load(Ordering::Acquire) {
                        let worked = hub.ship_once();
                        if last_beat.elapsed() >= beat_every {
                            hub.heartbeat();
                            last_beat = Instant::now();
                        }
                        if !worked {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                })
                .expect("spawn repl shipper thread")
        };
        let n_shards = resolve_shards(config.reactor_shards);
        let mut shard_handles = Vec::with_capacity(n_shards);
        let mut wake_readers = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (read_end, write_end) = crate::reactor::wake_pair()?;
            shard_handles.push(Arc::new(ShardHandle {
                inbox: Mutex::new(Vec::new()),
                resume: Mutex::new(Vec::new()),
                wake: Mutex::new(write_end),
            }));
            wake_readers.push(read_end);
        }
        let ctx = Arc::new(ServerCtx {
            db: Arc::clone(&db),
            subs: Arc::clone(&subscriptions),
            shared: Arc::clone(&shared),
            cfg: config.clone(),
            journal: durable,
            repl: Arc::clone(&repl),
            shards: shard_handles,
            reactor_shards: n_shards,
        });

        // Rule-visible slow-subscriber policy: the eviction event is
        // defined up front (idempotent — `DuplicateName` on a reopened
        // durable database is fine), pending tombstones from a crash at
        // the eviction point re-enter the queue, and the housekeeper
        // thread finalizes notices off the rule-firing path.
        let _ = db.define_event("SubscriberEvicted", &["handler", "reason", "unacked", "bytes"]);
        {
            let recovered = subscriptions.restore_evictions();
            if !recovered.is_empty() {
                subscriptions.evict_queue.lock().extend(recovered);
            }
        }
        let evict_thread = {
            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("hipac-net-evict".to_owned())
                .spawn(move || loop {
                    let batch: Vec<EvictNotice> =
                        std::mem::take(&mut *ctx.subs.evict_queue.lock());
                    if batch.is_empty() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                    for n in batch {
                        finalize_eviction(&ctx, n);
                    }
                })
                .expect("spawn eviction housekeeper thread")
        };

        let (job_tx, job_rx) = crossbeam::channel::unbounded::<Arc<ConnShared>>();
        let workers = config.workers.max(1);
        let mut worker_threads = Vec::with_capacity(workers);
        for n in 0..workers {
            let rx = job_rx.clone();
            let ctx = Arc::clone(&ctx);
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("hipac-net-worker-{n}"))
                    .spawn(move || worker_loop(ctx, rx))
                    .expect("spawn worker thread"),
            );
        }

        let mut shard_threads = Vec::with_capacity(n_shards);
        for (idx, wake_rx) in wake_readers.into_iter().enumerate() {
            let handle = Arc::clone(&ctx.shards[idx]);
            let ctx = Arc::clone(&ctx);
            let jobs = job_tx.clone();
            let stop = Arc::clone(&shutdown);
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("hipac-net-shard-{idx}"))
                    .spawn(move || shard_loop(idx, handle, wake_rx, ctx, jobs, stop))
                    .expect("spawn shard thread"),
            );
        }

        let accept_thread = {
            let stop = Arc::clone(&shutdown);
            let refused = Arc::clone(&refused);
            let ctx = Arc::clone(&ctx);
            // The listener is non-blocking so the shutdown flag stays
            // observable; parking on a poller (instead of sleeping a
            // tick) makes a connection sitting in the backlog accept
            // immediately rather than up to READ_TICK later.
            let accept_poller = crate::reactor::Poller::new()?;
            accept_poller.add(listener.as_raw_fd(), 0)?;
            // Admission cap: at most `workers` connections in active
            // dispatch plus `max_pending` more whose requests wait
            // their turn — same budget the thread-per-session design
            // enforced, now decoupled from connection *count* costs
            // (an admitted idle connection is just an fd).
            let conn_cap = (config.workers.max(1) + config.max_pending).max(1) as u64;
            std::thread::Builder::new()
                .name("hipac-net-accept".to_owned())
                .spawn(move || {
                    let mut rr = 0usize;
                    let mut backlog_events = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if ctx.shared.draining.load(Ordering::Acquire) {
                                    refuse(stream, "Draining", "server is draining");
                                    continue;
                                }
                                if ctx.shared.active_connections.load(Ordering::Acquire)
                                    >= conn_cap
                                {
                                    refused.fetch_add(1, Ordering::Relaxed);
                                    refuse(stream, "ServerBusy", "connection limit reached");
                                    continue;
                                }
                                let _ = stream.set_nodelay(true);
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                ctx.shared.active_connections.fetch_add(1, Ordering::Relaxed);
                                let sh = &ctx.shards[rr % ctx.shards.len()];
                                rr = rr.wrapping_add(1);
                                sh.inbox.lock().push(stream);
                                crate::reactor::signal_wake(&mut *sh.wake.lock());
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                backlog_events.clear();
                                let _ = accept_poller.wait(&mut backlog_events, READ_TICK);
                            }
                            Err(_) => std::thread::sleep(READ_TICK),
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(HipacServer {
            db,
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            shard_threads,
            worker_threads,
            jobs: Some(job_tx),
            refused,
            shared,
            subscriptions,
            repl,
            repl_thread: Some(repl_thread),
            evict_thread: Some(evict_thread),
            ctx,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The database being served.
    pub fn db(&self) -> &Arc<ActiveDatabase> {
        &self.db
    }

    /// Connections refused so far because the pending queue was full.
    pub fn refused_connections(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// Requests shed so far by admission control.
    pub fn shed_requests(&self) -> u64 {
        self.shared.shed_requests.load(Ordering::Relaxed)
    }

    /// Requests answered from the idempotency window so far.
    pub fn dedup_hits(&self) -> u64 {
        self.shared.dedup_hits.load(Ordering::Relaxed)
    }

    /// Dedup hits served from the persistent reply journal — retries
    /// whose original committed before a restart.
    pub fn journal_replays(&self) -> u64 {
        self.shared.journal_replays.load(Ordering::Relaxed)
    }

    /// Requests shed so far by the adaptive queueing-delay signal.
    pub fn shed_adaptive(&self) -> u64 {
        self.shared.shed_adaptive.load(Ordering::Relaxed)
    }

    /// Push frames redelivered from the outbox on re-subscribe.
    pub fn pushes_redelivered(&self) -> u64 {
        self.shared.pushes_redelivered.load(Ordering::Relaxed)
    }

    /// Push frames currently awaiting a client ack.
    pub fn unacked_pushes(&self) -> u64 {
        self.subscriptions.unacked_total()
    }

    /// Currently live sessions.
    pub fn active_connections(&self) -> u64 {
        self.shared.active_connections.load(Ordering::Relaxed)
    }

    /// Replica connections currently subscribed to the WAL stream.
    pub fn repl_peers(&self) -> usize {
        self.repl.peer_count()
    }

    /// Keyed requests (or `Auth`/`Subscribe`/`AckPush` attempts)
    /// refused because the session had not proven the identity.
    pub fn auth_failures(&self) -> u64 {
        self.shared.auth_failures.load(Ordering::Relaxed)
    }

    /// Requests shed by a per-tenant admission gate.
    pub fn tenant_shed_requests(&self) -> u64 {
        self.shared.tenant_shed_requests.load(Ordering::Relaxed)
    }

    /// Push deliveries refused because the handler was over budget or
    /// already dead-lettered.
    pub fn pushes_shed(&self) -> u64 {
        self.subscriptions.pushes_shed.load(Ordering::Relaxed)
    }

    /// Subscriptions dead-lettered by the slow-subscriber policy.
    pub fn subscribers_evicted(&self) -> u64 {
        self.shared.subscribers_evicted.load(Ordering::Relaxed)
    }

    /// Distinct tenants currently tracked by admission control.
    pub fn tenants_active(&self) -> u64 {
        self.shared.tenants_active()
    }

    /// Stop accepting, interrupt live sessions at their next reactor
    /// tick, abort their open transactions, and join all threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Wake the shards so they observe the flag promptly; each one
        // enqueues a Teardown for every connection it owns on its way
        // out (running after any frames already dispatched).
        for sh in &self.ctx.shards {
            crate::reactor::signal_wake(&mut *sh.wake.lock());
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        // The shards held the only other job senders; dropping ours
        // closes the channel and the workers exit once the teardown
        // queue drains.
        self.jobs = None;
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.repl_thread.take() {
            let _ = t.join();
        }
        // The housekeeper drains its remaining queue before exiting, so
        // a dead-letter decided just before shutdown still signals.
        if let Some(t) = self.evict_thread.take() {
            let _ = t.join();
        }
    }

    /// Graceful drain: refuse new connections and new requests (with a
    /// `Draining` error, so clients get a definite answer rather than a
    /// cut socket), let every request already in dispatch finish and
    /// flush its reply, wait for separate-coupled firings already
    /// submitted to the engine, then shut down. Committed transactions
    /// are never lost: a request either completes and is acknowledged,
    /// or is refused before touching the engine.
    pub fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        // In-flight dispatches finish and write their replies before
        // their session observes the stop flag, but waiting here keeps
        // the engine quiet before we quiesce the rule workers.
        while self.shared.in_flight.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.db.quiesce();
        // Finish shipping the committed tail before going away: every
        // connected replica must apply up to the durable frontier (the
        // quiesce above may have committed separate-mode work), so no
        // acknowledged write exists only on this dying node. Bounded —
        // a wedged replica cannot hold the drain hostage forever.
        self.repl.wait_caught_up(Duration::from_secs(5));
        self.shutdown();
    }
}

impl Drop for HipacServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Rebuild the in-memory dedup window from the durable reply journal
/// at startup. Entries are scanned in `(client, seq)` order, so the
/// per-client FIFO keeps the *newest* sequences when a journal holds
/// more than the window; overflow entries (and torn values, whose
/// seal fails) are deleted from storage so the journal stays bounded
/// across restarts.
fn load_reply_journal(d: &Arc<DurableStore>, shared: &Arc<ServerShared>, window: usize) {
    if window == 0 {
        return;
    }
    let entries = match d.scan_prefix(&[journal::REPLY_PREFIX]) {
        Ok(e) => e,
        Err(_) => return,
    };
    let mut dead_keys = Vec::new();
    for (key, value) in entries {
        let Some((client, seq)) = journal::parse_reply_key(&key) else {
            dead_keys.push(key);
            continue;
        };
        let reply = journal::unseal(&value).and_then(|raw| Reply::from_bytes(raw).ok());
        match reply {
            Some(reply) => {
                let evicted = shared
                    .dedup_stripe(client)
                    .lock()
                    .remember(client, seq, &reply, true, true);
                for (c, s) in evicted {
                    dead_keys.push(journal::reply_key(c, s));
                }
            }
            None => dead_keys.push(key),
        }
    }
    if !dead_keys.is_empty() {
        let ops: Vec<StoreOp> = dead_keys
            .into_iter()
            .map(|key| StoreOp::Delete { key })
            .collect();
        let _ = d.commit(TxnId(0), &ops);
    }
}

/// Finalize one dead-letter decision, off the rule-firing path (the
/// eviction housekeeper's work loop). Three steps, each crash-safe:
///
/// 1. **Durable GC, atomically with the tombstone.** One metadata
///    batch deletes every unacked `'q'` record and the `'k'` counter,
///    and writes the `'v'` tombstone in `EVICT_PENDING` state carrying
///    the preserved sequence counter. A crash before this batch leaves
///    the outbox intact (the eviction re-decides on the next over-budget
///    delivery); a crash after it recovers a pending tombstone, which
///    [`Subscriptions::restore_evictions`] turns back into a notice.
/// 2. **Teardown.** The in-memory outbox empties and the engine proxy
///    unregisters, so further rule actions addressed to the handler fail
///    fast with `NoApplicationHandler` instead of re-queueing.
/// 3. **Signal.** `SubscriberEvicted` fires through the engine so user
///    rules can react — the active DBMS reacting to its own overload.
///    The tombstone's `EVICT_DONE` marker rides the signalling
///    transaction's WAL batch (the same piggyback the reply journal
///    uses), so the signal-with-rule-effects is atomic: a crash before
///    the batch re-fires the signal on restart (the tombstone is still
///    pending), a crash after it does not — exactly once. When the
///    rule's effects abort (or no rule fires a write), the marker is
///    committed standalone: at-most-once on rule failure, by design —
///    re-firing a failing rule forever would turn one slow subscriber
///    into a poison loop.
fn finalize_eviction(ctx: &Arc<ServerCtx>, n: EvictNotice) {
    if let Some(d) = &ctx.subs.durable {
        let mut ops = vec![StoreOp::Put {
            key: journal::evict_key(&n.handler),
            value: journal::seal(&evict_record(n.next_seq, EVICT_PENDING, n.unacked, n.bytes)),
        }];
        for s in &n.seqs {
            ops.push(StoreOp::Delete {
                key: journal::outbox_key(&n.handler, *s),
            });
        }
        ops.push(StoreOp::Delete {
            key: journal::push_seq_key(&n.handler),
        });
        let _ = d.commit(TxnId(0), &ops);
    }
    {
        let mut ob = ctx.subs.outbox_stripe(&n.handler).lock();
        if let Some(h) = ob.get_mut(&n.handler) {
            h.unacked.clear();
            h.enqueued_at.clear();
            h.bytes = 0;
        }
    }
    {
        let mut map = ctx.subs.handlers(&n.handler).write();
        if map.remove(&n.handler).is_some() {
            ctx.db.unregister_handler(&n.handler);
        }
    }
    let mut args = HashMap::new();
    args.insert("handler".to_owned(), Value::Str(n.handler.clone()));
    args.insert("reason".to_owned(), Value::Str(n.reason.to_owned()));
    args.insert("unacked".to_owned(), Value::Int(n.unacked as i64));
    args.insert("bytes".to_owned(), Value::Int(n.bytes as i64));
    if ctx.subs.durable.is_some() {
        journal::set_pending_ops(vec![StoreOp::Put {
            key: journal::evict_key(&n.handler),
            value: journal::seal(&evict_record(n.next_seq, EVICT_DONE, n.unacked, n.bytes)),
        }]);
    }
    let _ = ctx
        .db
        .run_top(|t| ctx.db.signal_event("SubscriberEvicted", args.clone(), Some(t)));
    if let Some(ops) = journal::take_pending_ops() {
        // The signal never flushed a transactional batch (no rule
        // matched, rule effects were read-only, or the transaction
        // aborted): persist the done marker standalone so the
        // tombstone cannot re-fire forever.
        if let Some(d) = &ctx.subs.durable {
            let _ = d.commit(TxnId(0), &ops);
        }
    }
    ctx.shared.subscribers_evicted.fetch_add(1, Ordering::Relaxed);
}

/// Best-effort typed error frame on a refused connection.
fn refuse(mut stream: TcpStream, kind: &str, message: &str) {
    let frame = Frame::Response {
        id: 0,
        reply: Reply::Err {
            kind: kind.to_owned(),
            message: message.to_owned(),
        },
    };
    let _ = stream.write_all(&frame.encode());
}

static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

/// Resumable frame reader for sockets with a short read timeout.
///
/// `poll` accumulates bytes across timeout ticks, so a frame split
/// across ticks never desynchronizes the stream — partial reads park in
/// the buffer until the frame completes.
struct TickReader {
    /// Frame length once the 4-byte header is complete.
    want: Option<usize>,
    buf: Vec<u8>,
    filled: usize,
}

impl TickReader {
    fn new() -> TickReader {
        TickReader {
            want: None,
            buf: vec![0u8; 4],
            filled: 0,
        }
    }

    /// Try to complete one frame. `Ok(Some(payload))` when a full frame
    /// arrived, `Ok(None)` when the read tick expired first, `Err` on
    /// EOF, oversized frame, or transport error.
    fn poll(&mut self, stream: &mut TcpStream) -> Result<Option<Vec<u8>>, WireError> {
        use std::io::Read;
        loop {
            let target = self.buf.len();
            while self.filled < target {
                match stream.read(&mut self.buf[self.filled..]) {
                    Ok(0) => return Err(WireError::Io("connection closed".into())),
                    Ok(n) => self.filled += n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return Ok(None)
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            }
            match self.want {
                None => {
                    let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                        as usize;
                    if len > crate::proto::MAX_FRAME {
                        return Err(WireError::Protocol(format!(
                            "frame of {len} bytes exceeds cap"
                        )));
                    }
                    self.want = Some(len);
                    self.buf = vec![0u8; len];
                    self.filled = 0;
                }
                Some(_) => {
                    let payload = std::mem::replace(&mut self.buf, vec![0u8; 4]);
                    self.want = None;
                    self.filled = 0;
                    return Ok(Some(payload));
                }
            }
        }
    }
}

/// The reactor shard event loop: adopts admitted sockets, reads frames
/// from every connection it owns, and dispatches complete frames to
/// the worker pool through per-connection queues. All socket reads for
/// a connection happen here — workers only write.
fn shard_loop(
    idx: usize,
    handle: Arc<ShardHandle>,
    mut wake_rx: TcpStream,
    ctx: Arc<ServerCtx>,
    jobs: crossbeam::channel::Sender<Arc<ConnShared>>,
    stop: Arc<AtomicBool>,
) {
    let poller = crate::reactor::Poller::new().expect("create shard poller");
    let _ = poller.add(wake_rx.as_raw_fd(), WAKE_TOKEN);
    let mut conns: HashMap<u64, ShardConn> = HashMap::new();
    let mut events: Vec<(u64, u32)> = Vec::new();
    let mut last_idle_sweep = Instant::now();
    while !stop.load(Ordering::Acquire) {
        events.clear();
        let _ = poller.wait(&mut events, READ_TICK);
        let mut check_dead = false;
        let round: Vec<(u64, u32)> = std::mem::take(&mut events);
        for (token, _flags) in round {
            if token == WAKE_TOKEN {
                crate::reactor::drain_wake(&mut wake_rx);
                check_dead = true;
                continue;
            }
            let Some(sc) = conns.get_mut(&token) else {
                continue;
            };
            let mut kill = false;
            loop {
                if sc.shared.paused.load(Ordering::Acquire) {
                    break;
                }
                match sc.frames.poll(&mut sc.stream) {
                    Ok(Some(payload)) => {
                        sc.last_activity = Instant::now();
                        let depth = enqueue(&sc.shared, WorkItem::Frame(payload), &jobs);
                        if depth >= PENDING_CAP {
                            sc.shared.paused.store(true, Ordering::Release);
                            let _ = poller.set_readable(sc.stream.as_raw_fd(), token, false);
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        kill = true;
                        break;
                    }
                }
            }
            if kill {
                if let Some(sc) = conns.remove(&token) {
                    retire(&poller, sc, &jobs);
                }
            }
        }
        // Adoption and resumes are signaled through the wake pipe, but
        // checking the mailboxes every pass keeps the fallback poller
        // (whose wakes are advisory) correct too.
        for stream in handle.inbox.lock().drain(..) {
            adopt(idx, stream, &poller, &mut conns, &ctx);
        }
        for id in handle.resume.lock().drain(..) {
            if let Some(sc) = conns.get_mut(&id) {
                sc.shared.paused.store(false, Ordering::Release);
                // Level-triggered: buffered bytes re-report on re-arm.
                let _ = poller.set_readable(sc.stream.as_raw_fd(), id, true);
            }
        }
        if check_dead {
            let doomed: Vec<u64> = conns
                .iter()
                .filter(|(_, sc)| sc.shared.dead.load(Ordering::Acquire))
                .map(|(id, _)| *id)
                .collect();
            for id in doomed {
                if let Some(sc) = conns.remove(&id) {
                    retire(&poller, sc, &jobs);
                }
            }
        }
        if last_idle_sweep.elapsed() >= IDLE_SWEEP_EVERY {
            last_idle_sweep = Instant::now();
            let idle: Vec<u64> = conns
                .iter()
                .filter(|(_, sc)| sc.last_activity.elapsed() >= ctx.cfg.idle_timeout)
                .map(|(id, _)| *id)
                .collect();
            for id in idle {
                if let Some(sc) = conns.remove(&id) {
                    retire(&poller, sc, &jobs);
                }
            }
        }
    }
    // Shutdown: adopt whatever the accept thread already admitted (so
    // the gauge bookkeeping stays uniform), then retire everything.
    // The teardowns run after any frames already dispatched.
    for stream in handle.inbox.lock().drain(..) {
        adopt(idx, stream, &poller, &mut conns, &ctx);
    }
    let ids: Vec<u64> = conns.keys().copied().collect();
    for id in ids {
        if let Some(sc) = conns.remove(&id) {
            retire(&poller, sc, &jobs);
        }
    }
}

/// Register an admitted socket with this shard.
fn adopt(
    shard_idx: usize,
    stream: TcpStream,
    poller: &crate::reactor::Poller,
    conns: &mut HashMap<u64, ShardConn>,
    ctx: &Arc<ServerCtx>,
) {
    let Ok(writer) = stream.try_clone() else {
        // Admission already counted it; undo (no session state exists).
        ctx.shared.active_connections.fetch_sub(1, Ordering::Relaxed);
        return;
    };
    let id = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
    if poller.add(stream.as_raw_fd(), id).is_err() {
        ctx.shared.active_connections.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    let shared = Arc::new(ConnShared {
        id,
        shard: shard_idx,
        writer: Arc::new(Mutex::new(writer)),
        core: Mutex::new(SessionCore {
            negotiated: MIN_PROTOCOL_VERSION,
            auth: None,
            open_txns: HashSet::new(),
            pending_repl: None,
        }),
        queue: Mutex::new(ConnQueue {
            busy: false,
            pending: VecDeque::new(),
        }),
        dead: AtomicBool::new(false),
        paused: AtomicBool::new(false),
    });
    conns.insert(
        id,
        ShardConn {
            stream,
            frames: TickReader::new(),
            last_activity: Instant::now(),
            shared,
        },
    );
}

/// Deregister and close a connection's socket, then enqueue its
/// teardown (which runs after any frames already in its queue).
fn retire(
    poller: &crate::reactor::Poller,
    sc: ShardConn,
    jobs: &crossbeam::channel::Sender<Arc<ConnShared>>,
) {
    let _ = poller.del(sc.stream.as_raw_fd());
    let _ = sc.stream.shutdown(std::net::Shutdown::Both);
    enqueue(&sc.shared, WorkItem::Teardown, jobs);
}

/// A dispatch worker: drains per-connection queues handed over by the
/// shards, one connection at a time (the `busy` flag keeps two workers
/// off the same connection, so a session's requests execute in order).
fn worker_loop(ctx: Arc<ServerCtx>, rx: crossbeam::channel::Receiver<Arc<ConnShared>>) {
    while let Ok(conn) = rx.recv() {
        loop {
            let item = {
                let mut q = conn.queue.lock();
                match q.pending.pop_front() {
                    Some(i) => i,
                    None => {
                        q.busy = false;
                        break;
                    }
                }
            };
            match item {
                WorkItem::Frame(payload) => process_frame(&ctx, &conn, payload),
                WorkItem::Teardown => teardown(&ctx, &conn),
            }
        }
        // Drained a paused connection: ask its shard to re-arm reads.
        if conn.paused.load(Ordering::Acquire) && !conn.dead.load(Ordering::Acquire) {
            let sh = &ctx.shards[conn.shard];
            sh.resume.lock().push(conn.id);
            crate::reactor::signal_wake(&mut *sh.wake.lock());
        }
    }
}

/// Execute one request frame and write its response.
fn process_frame(ctx: &Arc<ServerCtx>, conn: &Arc<ConnShared>, payload: Vec<u8>) {
    if conn.dead.load(Ordering::Acquire) {
        return; // doomed by an earlier write failure; skip the backlog
    }
    match Frame::decode(&payload) {
        Ok(Frame::Request { id, meta, command }) => {
            let reply = handle(ctx, conn, meta, command);
            let negotiated = conn.core.lock().negotiated;
            let bytes = Frame::Response { id, reply }.encode_versioned(negotiated);
            let sent = crate::reactor::write_all_timeout(
                &mut conn.writer.lock(),
                &bytes,
                RESPONSE_WRITE_TIMEOUT,
            )
            .is_ok();
            if !sent {
                mark_dead(ctx, conn);
                return;
            }
            let (pending, version) = {
                let mut core = conn.core.lock();
                (core.pending_repl.take(), core.negotiated)
            };
            if let Some((start_lsn, peer_epoch)) = pending {
                ctx.repl
                    .subscribe(conn.id, Arc::clone(&conn.writer), start_lsn, version, peer_epoch);
            }
        }
        // Clients never send responses or pushes; treat as a protocol
        // violation and drop the session.
        _ => mark_dead(ctx, conn),
    }
}

/// Doom a connection from a worker; its shard retires the socket (and
/// enqueues the teardown) at its next wake.
fn mark_dead(ctx: &Arc<ServerCtx>, conn: &Arc<ConnShared>) {
    if !conn.dead.swap(true, Ordering::AcqRel) {
        let sh = &ctx.shards[conn.shard];
        crate::reactor::signal_wake(&mut *sh.wake.lock());
    }
}

/// Abort open transactions and drop subscriptions on disconnect. Runs
/// on a worker, strictly after the connection's in-flight frames.
fn teardown(ctx: &Arc<ServerCtx>, conn: &Arc<ConnShared>) {
    ctx.shared.active_connections.fetch_sub(1, Ordering::Relaxed);
    ctx.subs.drop_session(&ctx.db, conn.id);
    ctx.repl.drop_session(conn.id);
    // Abort parents last: aborting a parent cascades to children,
    // making the child abort a no-op error we ignore anyway.
    let mut txns: Vec<TxnId> = conn.core.lock().open_txns.drain().collect();
    txns.sort_by_key(|t| std::cmp::Reverse(t.raw()));
    for t in txns {
        let _ = ctx.db.abort(t);
    }
}

/// The resilience pipeline around [`dispatch`]: idempotency replay
/// (in-memory window, backed by the durable journal across restarts),
/// drain/poison refusal, admission control (static cap + adaptive
/// queueing-delay signal), then the reply is remembered for future
/// retries of the same `(client_id, seq)`. Refusals (`Draining`,
/// `Overloaded`, `ReplyEvicted`) return before the window insert, so a
/// retried `seq` re-executes once capacity is back; `Io` replies are
/// *never* remembered — their outcome is ambiguous in memory and only
/// the recovered journal can answer the retry truthfully.
fn handle(ctx: &Arc<ServerCtx>, conn: &Arc<ConnShared>, meta: RequestMeta, command: Command) -> Reply {
    let keyed = meta.client_id != 0 && meta.seq != 0;
    // Identity gate (v8): with auth enabled, a keyed request is honored
    // only for the session's proven identity. Refusing *before* the
    // dedup probe and before any window/journal insert is what stops a
    // hostile peer asserting a foreign `client_id` from reading that
    // tenant's cached replies — or poisoning its dedup state with
    // refusal entries under sequences the victim has yet to use.
    if keyed
        && ctx.cfg.auth_secret.is_some()
        && conn.core.lock().auth != Some(meta.client_id)
    {
        ctx.shared.auth_failures.fetch_add(1, Ordering::Relaxed);
        return Reply::Err {
            kind: "AuthFailed".to_owned(),
            message: "client_id not authenticated on this session".to_owned(),
        };
    }
    if keyed {
        let probed = ctx
            .shared
            .dedup_stripe(meta.client_id)
            .lock()
            .probe(meta.client_id, meta.seq);
        match probed {
            DedupProbe::Hit(cached) => {
                ctx.shared.dedup_hits.fetch_add(1, Ordering::Relaxed);
                if cached.restored {
                    ctx.shared.journal_replays.fetch_add(1, Ordering::Relaxed);
                }
                return cached.reply;
            }
            DedupProbe::Evicted => {
                return Reply::Err {
                    kind: "ReplyEvicted".to_owned(),
                    message: "idempotency entry evicted; outcome unknown".to_owned(),
                };
            }
            DedupProbe::Miss => {}
        }
    }
    if ctx.shared.storage_poisoned.load(Ordering::Acquire) {
        return Reply::Err {
            kind: "Draining".to_owned(),
            message: "storage failed; server requires restart".to_owned(),
        };
    }
    if ctx.shared.draining.load(Ordering::Acquire) {
        return Reply::Err {
            kind: "Draining".to_owned(),
            message: "server is draining; open transactions will abort".to_owned(),
        };
    }
    // Tenant identity for admission control: the *proven* identity
    // when auth is on (unauthenticated sessions — including v≤7 peers,
    // which cannot send `Auth` — share class 0), the asserted one
    // otherwise.
    let tenant_id = if ctx.cfg.auth_secret.is_some() {
        conn.core.lock().auth.unwrap_or(0)
    } else {
        meta.client_id
    };
    let tenant = ctx.shared.tenant(tenant_id);
    let in_flight = ctx.shared.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
    let tenant_in_flight = tenant.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
    let release = || {
        ctx.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        tenant.in_flight.fetch_sub(1, Ordering::AcqRel);
    };
    if ctx.cfg.max_inflight > 0 && in_flight > ctx.cfg.max_inflight as u64 {
        release();
        ctx.shared.shed_requests.fetch_add(1, Ordering::Relaxed);
        return Reply::Err {
            kind: "Overloaded".to_owned(),
            message: "admission budget exhausted; retry later".to_owned(),
        };
    }
    if ctx.cfg.tenant_max_inflight > 0 && tenant_in_flight > ctx.cfg.tenant_max_inflight as u64 {
        release();
        tenant.shed.fetch_add(1, Ordering::Relaxed);
        ctx.shared.tenant_shed_requests.fetch_add(1, Ordering::Relaxed);
        return Reply::Err {
            kind: "Overloaded".to_owned(),
            message: "tenant admission budget exhausted; retry later".to_owned(),
        };
    }
    if let Some(limit) = ctx.cfg.shed_queue_delay {
        // Adaptive signal, tenant-weighted: shed while dispatches are
        // slower than the target and the *requesting tenant* already
        // has work in flight. A noisy tenant (whose requests pile up)
        // absorbs the shedding its own load causes; a quiet tenant's
        // lone request still admits — and a lone request overall keeps
        // admitting, so the signal can decay.
        let ewma = Duration::from_micros(ctx.shared.ewma_us.load(Ordering::Relaxed));
        if tenant_in_flight >= 2 && ewma > limit {
            release();
            ctx.shared.shed_adaptive.fetch_add(1, Ordering::Relaxed);
            return Reply::Err {
                kind: "Overloaded".to_owned(),
                message: "queueing delay over budget; retry later".to_owned(),
            };
        }
    }
    if let Some(limit) = ctx.cfg.tenant_shed_queue_delay {
        // Per-tenant signal: a tenant whose *own* dispatches run slow
        // sheds itself without the global EWMA ever moving.
        let ewma = Duration::from_micros(tenant.ewma_us.load(Ordering::Relaxed));
        if tenant_in_flight >= 2 && ewma > limit {
            release();
            tenant.shed.fetch_add(1, Ordering::Relaxed);
            ctx.shared.tenant_shed_requests.fetch_add(1, Ordering::Relaxed);
            return Reply::Err {
                kind: "Overloaded".to_owned(),
                message: "tenant queueing delay over budget; retry later".to_owned(),
            };
        }
    }

    // Arm the crash-atomic reply journal for keyed commits: the
    // predicted ack (a commit that succeeds always replies `Ok`)
    // rides the commit's own WAL batch, along with deletes for any
    // entries evicted from the window since the last journaled
    // commit.
    let is_commit = matches!(command, Command::Commit { .. });
    let journaling = keyed && is_commit && ctx.journal.is_some();
    if journaling {
        let mut ops = vec![StoreOp::Put {
            key: journal::reply_key(meta.client_id, meta.seq),
            value: journal::seal(&Reply::Ok.to_bytes()),
        }];
        for (c, s) in ctx.shared.pending_evictions.lock().drain(..) {
            ops.push(StoreOp::Delete {
                key: journal::reply_key(c, s),
            });
        }
        journal::set_pending_ops(ops);
    }
    let started = Instant::now();
    let reply = dispatch(ctx, conn, meta, command);
    let spent = started.elapsed().as_micros() as u64;
    let prev = ctx.shared.ewma_us.load(Ordering::Relaxed);
    ctx.shared
        .ewma_us
        .store(prev - prev / 8 + spent / 8, Ordering::Relaxed);
    let prev_t = tenant.ewma_us.load(Ordering::Relaxed);
    tenant
        .ewma_us
        .store(prev_t - prev_t / 8 + spent / 8, Ordering::Relaxed);
    release();
    if journaling {
        if let Some(ops) = journal::take_pending_ops() {
            // The dispatch never flushed a transactional batch
            // (read-only commit). If it succeeded, the predicted
            // ack still holds — persist it as a standalone
            // metadata batch; a failed dispatch discards the
            // annotation (error outcomes are not journaled).
            if reply == Reply::Ok {
                if let Some(d) = &ctx.journal {
                    let _ = d.commit(TxnId(0), &ops);
                }
            }
        }
    }
    // Semi-sync replication: hold the commit ack until every
    // connected replica has durably applied up to the committing
    // frontier. A timeout degrades this commit to async rather
    // than stalling the session indefinitely.
    if ctx.cfg.sync_repl && is_commit && reply == Reply::Ok {
        ctx.repl.wait_caught_up(ctx.cfg.sync_repl_timeout);
    }
    let io_error = matches!(&reply, Reply::Err { kind, .. } if kind == "Io");
    if io_error && ctx.db.durable_store().is_some() {
        // The WAL and the in-memory engine may now disagree;
        // answering further requests from poisoned state could
        // break exactly-once. Fail definite-and-loud until the
        // operator restarts into recovery.
        ctx.shared.storage_poisoned.store(true, Ordering::Release);
    }
    if keyed && !io_error {
        let evicted = ctx.shared.dedup_stripe(meta.client_id).lock().remember(
            meta.client_id,
            meta.seq,
            &reply,
            journaling && reply == Reply::Ok,
            false,
        );
        if !evicted.is_empty() {
            ctx.shared.pending_evictions.lock().extend(evicted);
        }
    }
    reply
}

fn dispatch(ctx: &Arc<ServerCtx>, conn: &Arc<ConnShared>, meta: RequestMeta, command: Command) -> Reply {
    // Propagate the request deadline into the engine: the
    // transaction this command works under sees it in lock waits
    // for the duration of the dispatch.
    let deadline = (meta.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(meta.deadline_ms));
    let txn = deadline.and_then(|_| command_txn(&command));
    if let (Some(d), Some(t)) = (deadline, txn) {
        let _ = ctx.db.set_txn_deadline(t, Some(d));
    }
    let reply = match execute(ctx, conn, command) {
        Ok(reply) => reply,
        Err(e) => Reply::from(e),
    };
    if let Some(t) = txn {
        // Best effort: commit/abort may already have retired it.
        let _ = ctx.db.set_txn_deadline(t, None);
    }
    reply
}

fn execute(ctx: &Arc<ServerCtx>, conn: &Arc<ConnShared>, command: Command) -> HipacResult<Reply> {
    // Sessions own the transactions they begin: a command naming a
    // transaction this session did not begin (or already retired)
    // is refused with the definite `UnknownTxn`. This is what
    // makes a post-restart retry of an uncommitted transaction
    // safe — the id cannot alias a transaction some other session
    // opened in the new process incarnation.
    if let Some(t) = command_txn(&command) {
        if !conn.core.lock().open_txns.contains(&t) {
            return Err(HipacError::UnknownTxn(t));
        }
    }
    // Split-brain fence: a deposed primary serves reads, session
    // management and replication plumbing, but refuses every mutation
    // — a write acked here could never survive rejoin (the divergent
    // tail is truncated), so it must not be acked at all.
    if ctx.repl.fenced.load(Ordering::Acquire) && is_write_command(&command) {
        return Ok(Reply::Err {
            kind: "NotPrimary".to_owned(),
            message: "node is fenced: a newer replication epoch exists; \
                      write to the current primary"
                .to_owned(),
        });
    }
    Ok(match command {
        Command::Ping { version } => {
            // Additive negotiation: both ends settle on the lower
            // version. A v4 client gets Pong{4} and a session that
            // never encodes v5-only material; an older-than-v4
            // client is clamped up and will refuse us on its side.
            let v = version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION);
            conn.core.lock().negotiated = v;
            Reply::Pong { version: v }
        }
        Command::Auth { client_id, token } => {
            if conn.core.lock().negotiated < 8 {
                Reply::Err {
                    kind: "Unsupported".to_owned(),
                    message: "session authentication requires protocol v8".to_owned(),
                }
            } else if client_id == 0 {
                ctx.shared.auth_failures.fetch_add(1, Ordering::Relaxed);
                Reply::Err {
                    kind: "AuthFailed".to_owned(),
                    message: "client_id 0 cannot authenticate".to_owned(),
                }
            } else {
                match &ctx.cfg.auth_secret {
                    // No secret configured: authentication is vacuous
                    // but *accepted*, so a client fleet can start
                    // presenting tokens before the server enforces
                    // them (roll the secret on clients first).
                    None => {
                        conn.core.lock().auth = Some(client_id);
                        Reply::Ok
                    }
                    Some(secret) => {
                        let expect = crate::auth::session_token(secret, client_id);
                        if crate::auth::token_eq(&token, &expect) {
                            conn.core.lock().auth = Some(client_id);
                            Reply::Ok
                        } else {
                            ctx.shared.auth_failures.fetch_add(1, Ordering::Relaxed);
                            Reply::Err {
                                kind: "AuthFailed".to_owned(),
                                message: "invalid session token".to_owned(),
                            }
                        }
                    }
                }
            }
        }
        Command::Begin => {
            let t = ctx.db.begin();
            conn.core.lock().open_txns.insert(t);
            Reply::Txn(t)
        }
        Command::BeginChild { parent } => {
            let t = ctx.db.begin_child(parent)?;
            conn.core.lock().open_txns.insert(t);
            Reply::Txn(t)
        }
        Command::Commit { txn } => {
            let result = ctx.db.commit(txn);
            conn.core.lock().open_txns.remove(&txn);
            match result {
                Ok(()) => Reply::Ok,
                Err(e) => {
                    // A failed commit leaves the transaction dead;
                    // make sure it is really gone before reporting.
                    let _ = ctx.db.abort(txn);
                    return Err(e);
                }
            }
        }
        Command::Abort { txn } => {
            conn.core.lock().open_txns.remove(&txn);
            ctx.db.abort(txn)?;
            Reply::Ok
        }
        Command::CreateClass {
            txn,
            name,
            superclass,
            attrs,
        } => {
            let mut defs = Vec::with_capacity(attrs.len());
            for a in attrs {
                let ty = code_type(a.ty).map_err(|e| HipacError::TypeError(e.to_string()))?;
                defs.push(AttrDef {
                    name: a.name,
                    ty,
                    nullable: a.nullable,
                    indexed: a.indexed,
                });
            }
            let cid = ctx
                .db
                .store()
                .create_class(txn, &name, superclass.as_deref(), defs)?;
            Reply::Id(cid.raw())
        }
        Command::Insert { txn, class, values } => {
            let oid = ctx.db.store().insert(txn, &class, values)?;
            Reply::Object(oid)
        }
        Command::Update {
            txn,
            oid,
            assignments,
        } => {
            let borrowed: Vec<(&str, Value)> = assignments
                .iter()
                .map(|(n, v)| (n.as_str(), v.clone()))
                .collect();
            ctx.db.store().update(txn, ObjectId(oid), &borrowed)?;
            Reply::Ok
        }
        Command::Delete { txn, oid } => {
            ctx.db.store().delete(txn, ObjectId(oid))?;
            Reply::Ok
        }
        Command::Query { txn, text, params } => {
            let query = Query::parse(&text)?;
            let params = if params.is_empty() { None } else { Some(&params) };
            let rows = ctx.db.store().query(txn, &query, params)?;
            Reply::Rows(
                rows.into_iter()
                    .map(|r| crate::proto::WireRow {
                        oid: r.oid.raw(),
                        class: r.class.raw(),
                        values: r.values,
                    })
                    .collect(),
            )
        }
        Command::DefineEvent { name, params } => {
            let borrowed: Vec<&str> = params.iter().map(String::as_str).collect();
            let eid = ctx.db.define_event(&name, &borrowed)?;
            Reply::Id(eid.raw())
        }
        Command::SignalEvent { name, args, txn } => {
            ctx.db.signal_event(&name, args, txn)?;
            Reply::Ok
        }
        Command::CreateRule { txn, rule } => {
            let def = hipac_rules::codec::decode_rule(&rule)?;
            let rid = ctx.db.rules().create_rule(txn, def)?;
            Reply::Id(rid.raw())
        }
        Command::DropRule { txn, name } => {
            ctx.db.rules().drop_rule(txn, &name)?;
            Reply::Ok
        }
        Command::EnableRule { txn, name } => {
            ctx.db.rules().enable_rule(txn, &name)?;
            Reply::Ok
        }
        Command::DisableRule { txn, name } => {
            ctx.db.rules().disable_rule(txn, &name)?;
            Reply::Ok
        }
        Command::Subscribe { handler } => {
            if ctx.cfg.auth_secret.is_some() {
                // Subscriptions bind to their first authenticated
                // owner; a foreign identity may neither take over the
                // handler nor receive its (possibly sensitive) backlog.
                let authed = conn.core.lock().auth;
                if !ctx.subs.claim_owner(&handler, authed) {
                    ctx.shared.auth_failures.fetch_add(1, Ordering::Relaxed);
                    return Ok(Reply::Err {
                        kind: "AuthFailed".to_owned(),
                        message: format!("handler {handler} is owned by another tenant"),
                    });
                }
            }
            // An authorized re-subscribe revives a dead-lettered
            // handler (its preserved sequence counter resumes).
            ctx.subs.resurrect(&handler);
            ctx.subs
                .subscribe(&ctx.db, &handler, conn.id, Arc::clone(&conn.writer));
            // Catch the new subscriber up on unacked pushes; its
            // client dedups redeliveries by sequence.
            let n = ctx.subs.redeliver(&handler, &conn.writer);
            if n > 0 {
                ctx.shared.pushes_redelivered.fetch_add(n, Ordering::Relaxed);
            }
            Reply::Ok
        }
        Command::Unsubscribe { handler } => {
            ctx.subs.unsubscribe(&ctx.db, &handler, conn.id);
            Reply::Ok
        }
        Command::AckPush { handler, seq } => {
            if ctx.cfg.auth_secret.is_some()
                && !ctx.subs.may_touch(&handler, conn.core.lock().auth)
            {
                // A foreign ack would delete another tenant's unacked
                // frame — exactly-once delivery silently broken.
                ctx.shared.auth_failures.fetch_add(1, Ordering::Relaxed);
                return Ok(Reply::Err {
                    kind: "AuthFailed".to_owned(),
                    message: format!("handler {handler} is owned by another tenant"),
                });
            }
            ctx.subs.ack(&handler, seq);
            Reply::Ok
        }
        Command::ReplSubscribe { start_lsn, epoch } => {
            if conn.core.lock().negotiated < 5 {
                Reply::Err {
                    kind: "Unsupported".to_owned(),
                    message: "replication requires protocol v5".to_owned(),
                }
            } else if ctx.repl.durable.is_none() {
                Reply::Err {
                    kind: "Unsupported".to_owned(),
                    message: "in-memory databases cannot be replicated".to_owned(),
                }
            } else {
                let own = ctx.repl.epoch();
                if epoch > own {
                    // The subscriber lives in a newer epoch than this
                    // node has ever observed: a promotion happened
                    // while it thought itself primary. Fence first,
                    // refuse second — the caller learns it must rejoin.
                    ctx.repl.fence(epoch);
                    return Err(HipacError::StaleEpoch {
                        current: epoch,
                        got: own,
                    });
                }
                // Registered by `process_frame` only after the Ok frame
                // is on the wire — see the `pending_repl` field docs.
                // (A stale-epoch subscriber is accepted: the hub
                // bootstraps it with a snapshot instead of trusting
                // its dead-LSN-space watermark.)
                conn.core.lock().pending_repl = Some((start_lsn, epoch));
                Reply::Ok
            }
        }
        Command::ReplProgress {
            applied_lsn,
            epoch,
            digest,
        } => {
            let own = ctx.repl.epoch();
            if epoch > own {
                // Progress from the future: same deposition signal as
                // a newer-epoch subscribe. This is also the heal path
                // — `fence_stale_primary` sends exactly this frame.
                ctx.repl.fence(epoch);
                return Err(HipacError::StaleEpoch {
                    current: epoch,
                    got: own,
                });
            }
            if epoch != 0 && epoch < own {
                // A deposed-epoch replica's progress must never
                // satisfy this epoch's semi-sync quorum.
                ctx.repl
                    .counters
                    .stale_epochs
                    .fetch_add(1, Ordering::Relaxed);
                return Err(HipacError::StaleEpoch {
                    current: own,
                    got: epoch,
                });
            }
            ctx.repl.record_progress(conn.id, applied_lsn, digest);
            Reply::Ok
        }
        Command::Stats => {
            let mut w = stats_to_wire(ctx.db.stats());
            w.active_connections = ctx.shared.active_connections.load(Ordering::Relaxed);
            w.shed_requests = ctx.shared.shed_requests.load(Ordering::Relaxed);
            w.dedup_hits = ctx.shared.dedup_hits.load(Ordering::Relaxed);
            w.shed_adaptive = ctx.shared.shed_adaptive.load(Ordering::Relaxed);
            w.journal_replays = ctx.shared.journal_replays.load(Ordering::Relaxed);
            w.pushes_redelivered = ctx.shared.pushes_redelivered.load(Ordering::Relaxed);
            w.reactor_shards = ctx.reactor_shards as u64;
            w.auth_failures = ctx.shared.auth_failures.load(Ordering::Relaxed);
            w.tenants_active = ctx.shared.tenants_active();
            w.tenant_shed_requests = ctx.shared.tenant_shed_requests.load(Ordering::Relaxed);
            w.pushes_shed = ctx.subs.pushes_shed.load(Ordering::Relaxed);
            w.subscribers_evicted = ctx.shared.subscribers_evicted.load(Ordering::Relaxed);
            // breaker_trips/breaker_resets stay zero: they are client-
            // side gauges, overlaid by `HipacClient::stats`.
            Reply::Stats(Box::new(w))
        }
    })
}

/// Commands refused on a fenced (deposed) primary. Reads, transaction
/// bookkeeping (begin/abort), session management and replication
/// plumbing stay available — only state mutation is forbidden.
fn is_write_command(c: &Command) -> bool {
    matches!(
        c,
        Command::Commit { .. }
            | Command::CreateClass { .. }
            | Command::Insert { .. }
            | Command::Update { .. }
            | Command::Delete { .. }
            | Command::DefineEvent { .. }
            | Command::SignalEvent { .. }
            | Command::CreateRule { .. }
            | Command::DropRule { .. }
            | Command::EnableRule { .. }
            | Command::DisableRule { .. }
    )
}

/// The transaction a command works under, for deadline propagation.
/// Connection-scoped commands (ping, stats, subscriptions, event
/// definitions, begin) have none.
fn command_txn(c: &Command) -> Option<TxnId> {
    match c {
        Command::BeginChild { parent } => Some(*parent),
        Command::Commit { txn }
        | Command::Abort { txn }
        | Command::CreateClass { txn, .. }
        | Command::Insert { txn, .. }
        | Command::Update { txn, .. }
        | Command::Delete { txn, .. }
        | Command::Query { txn, .. }
        | Command::CreateRule { txn, .. }
        | Command::DropRule { txn, .. }
        | Command::EnableRule { txn, .. }
        | Command::DisableRule { txn, .. } => Some(*txn),
        Command::SignalEvent { txn, .. } => *txn,
        _ => None,
    }
}

/// Convert the facade snapshot into its wire representation. The
/// connection-layer gauges (`active_connections`, `shed_requests`,
/// `dedup_hits`) are zero here — the serving session fills them in
/// from its [`ServerShared`].
pub fn stats_to_wire(s: EngineStats) -> WireStats {
    WireStats {
        signals_processed: s.signals_processed,
        rules_triggered: s.rules_triggered,
        conditions_satisfied: s.conditions_satisfied,
        actions_executed: s.actions_executed,
        store_evaluations: s.store_evaluations,
        delta_evaluations: s.delta_evaluations,
        cache_hits: s.cache_hits,
        deferred_txns: s.deferred_txns,
        deferred_firings: s.deferred_firings,
        pool_outstanding: s.pool_outstanding,
        separate_errors: s.separate_errors,
        firings_parallel: s.firings_parallel,
        pool_queue_depth: s.pool_queue_depth,
        active_connections: 0,
        shed_requests: 0,
        dedup_hits: 0,
        separate_retries: s.separate_retries,
        separate_dead_letters: s.separate_dead_letters,
        shed_adaptive: 0,
        journal_replays: 0,
        pushes_redelivered: 0,
        repl_role: s.repl_role,
        last_shipped_lsn: s.last_shipped_lsn,
        last_applied_lsn: s.last_applied_lsn,
        repl_lag_bytes: s.repl_lag_bytes,
        replica_pushes: s.replica_pushes,
        promotions: s.promotions,
        match_index_nodes: s.match_index_nodes,
        match_probes: s.match_probes,
        match_pruned: s.match_pruned,
        memo_hits: s.memo_hits,
        memo_invalidations: s.memo_invalidations,
        group_commits: s.group_commits,
        group_commit_txns: s.group_commit_txns,
        group_commit_largest: s.group_commit_largest,
        reactor_shards: 0,
        auth_failures: 0,
        tenants_active: 0,
        tenant_shed_requests: 0,
        pushes_shed: 0,
        subscribers_evicted: 0,
        breaker_trips: 0,
        breaker_resets: 0,
        repl_epoch: s.repl_epoch,
        repl_fence_prev: s.repl_fence_prev,
        repl_fence_start: s.repl_fence_start,
        repl_peers: s.repl_peers,
        repl_min_peer_applied: s.repl_min_peer_applied,
        repl_digest_ok_peers: s.repl_digest_ok_peers,
        repl_digest_mismatches: s.repl_digest_mismatches,
        repl_quorum: s.repl_quorum,
        repl_quorum_ok: s.repl_quorum_ok,
    }
}
