//! Session authentication: HMAC-SHA256 tokens binding a connection to a
//! `client_id`.
//!
//! The engine ships offline with no crypto dependency, so SHA-256 and HMAC
//! are implemented here from the FIPS 180-4 / RFC 2104 definitions and
//! checked against the published test vectors. The token a client presents
//! in `Command::Auth` is
//!
//! ```text
//! token = HMAC-SHA256(server_secret, client_id.to_be_bytes())
//! ```
//!
//! Possession of the token proves knowledge of the shared server secret
//! for that specific identity; it does not protect the channel (transport
//! security is out of scope — see DESIGN §9).

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// SHA-256 of `data` (FIPS 180-4).
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut chunks = data.chunks_exact(64);
    for block in chunks.by_ref() {
        compress(&mut state, block);
    }
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let rem = chunks.remainder();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    compress(&mut state, &tail[..64]);
    if tail_len == 128 {
        compress(&mut state, &tail[64..128]);
    }
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// HMAC-SHA256 (RFC 2104): `H((K' ^ opad) || H((K' ^ ipad) || msg))`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(64 + msg.len());
    for b in &k {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(msg);
    let inner_hash = sha256(&inner);
    let mut outer = Vec::with_capacity(64 + 32);
    for b in &k {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&inner_hash);
    sha256(&outer)
}

/// The session token binding `client_id` to the shared `secret`.
pub fn session_token(secret: &[u8], client_id: u64) -> [u8; 32] {
    hmac_sha256(secret, &client_id.to_be_bytes())
}

/// Constant-time-ish comparison: examines every byte regardless of where
/// the first mismatch falls, so the comparison itself leaks no prefix
/// length through timing.
pub fn token_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_fips_vectors() {
        // FIPS 180-4 / NIST example vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A message spanning the 55/56-byte padding boundary and a
        // multi-block one.
        assert_eq!(
            hex(&sha256(&[b'a'; 56])),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
        );
        assert_eq!(
            hex(&sha256(&[b'a'; 1000])),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    #[test]
    fn hmac_rfc4231_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // RFC 4231 test case 2 (short key).
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // RFC 4231 test case 6 (key longer than a block → hashed first).
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn session_tokens_differ_per_identity_and_secret() {
        let t1 = session_token(b"secret", 7);
        let t2 = session_token(b"secret", 8);
        let t3 = session_token(b"other", 7);
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(t1, session_token(b"secret", 7));
        assert!(token_eq(&t1, &session_token(b"secret", 7)));
        assert!(!token_eq(&t1, &t2));
        assert!(!token_eq(&t1, &t1[..31]));
    }
}
