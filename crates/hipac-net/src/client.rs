//! [`HipacClient`]: blocking request/response client with push-frame
//! delivery and transparent failure recovery.
//!
//! A background reader thread demultiplexes the socket: responses are
//! routed to the issuing caller by request id (so the client is safe to
//! share across threads — `&self` methods, interior locking), and push
//! frames — application requests from rule actions, the paper's §4.1
//! role reversal — are dispatched to handlers registered with
//! [`HipacClient::on_push`] / [`HipacClient::subscribe`].
//!
//! ## Resilience
//!
//! A transport failure (socket error, connection reset, server
//! restart) no longer poisons the client: the dead connection is torn
//! down and the next request redials with exponential backoff and
//! jitter, re-subscribing every handler the client serves. Each
//! request carries an idempotency key — a stable per-client id plus a
//! monotonic sequence number — and a retry re-sends the *same* key, so
//! the server's dedup window replays the cached reply instead of
//! re-executing: an acked command applies exactly once even when the
//! ack was lost in transit. When retries are exhausted the caller gets
//! [`WireError::Transport`], meaning the outcome of the *last* attempt
//! is unknown (at-most-once). Per-request deadlines ride in the
//! request metadata — the server bounds lock waits with them — and
//! expire locally as [`WireError::Timeout`].
//!
//! Protocol v4 extends the guarantees across server restarts: push
//! frames carry per-subscription sequence numbers which the reader
//! thread acknowledges after the handler returns (redeliveries with an
//! already-seen sequence are acked but not re-handled), and
//! [`ClientConfig::retry_ambiguous`] opts keyed requests into retrying
//! server refusals and ambiguous storage errors with the *same*
//! idempotency key until the server — possibly a restarted one
//! consulting its reply journal — produces a definite answer. Repeated
//! dial failures trip a process-wide per-address circuit breaker
//! ([`ClientConfig::breaker_threshold`]) so a dead server is probed by
//! one caller per cooldown instead of hammered by every thread.

use crate::proto::{
    Command, Frame, PushEvent, Reply, RequestMeta, WireAttr, WireError, WireRow, WireStats,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use hipac_common::ROLE_PRIMARY;
use hipac_common::{TxnId, Value};
use hipac_object::AttrDef;
use hipac_rules::RuleDef;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Callback invoked on a push frame.
pub type PushHandler = Box<dyn Fn(&PushEvent) + Send + Sync>;

type Pending = Mutex<HashMap<u64, crossbeam::channel::Sender<Reply>>>;

/// Tuning knobs for [`HipacClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Attempts beyond the first after a transport failure. Retries
    /// re-send the same idempotency key, so they are exactly-once
    /// against a v3 server. `0` fails fast.
    pub max_retries: u32,
    /// Base reconnect backoff; attempt `n` waits `backoff * 2^(n-1)`
    /// plus deterministic jitter, capped at one second.
    pub backoff: Duration,
    /// Deadline applied to every request that does not carry its own
    /// (see [`HipacClient::request_with_deadline`]). `None` waits
    /// indefinitely.
    pub default_deadline: Option<Duration>,
    /// Stable client identity for the server's dedup window. `0`
    /// generates a process-unique one.
    pub client_id: u64,
    /// Also retry typed server refusals (`Overloaded`, `Draining`) and
    /// ambiguous storage errors (`Io`) with the same idempotency key.
    /// Refusals are definite non-executions, so the retry is safe; an
    /// `Io` retry is resolved truthfully by a restarted server's reply
    /// journal (committed → replayed ack, not committed → definite
    /// `UnknownTxn`). Off by default: callers that don't run a redo
    /// protocol should see refusals immediately.
    pub retry_ambiguous: bool,
    /// Consecutive dial/handshake failures against this client's
    /// address before the shared per-address circuit breaker opens
    /// (subsequent connection attempts from *any* client in the
    /// process fail fast until a half-open probe succeeds). `0`
    /// disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker refuses before allowing one half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// Shared server secret for session authentication (protocol v8).
    /// When set, every (re)connect handshake presents
    /// `HMAC-SHA256(secret, client_id)` via `Command::Auth` after the
    /// ping, binding the session to this client's identity — required
    /// before a v8 server with auth enabled honors keyed requests,
    /// journal replays, or push acks for that `client_id`. Against a
    /// v≤7 server (which cannot understand `Auth`) the step is
    /// skipped. `None` sends no token.
    pub auth_secret: Option<Vec<u8>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_retries: 3,
            backoff: Duration::from_millis(10),
            default_deadline: None,
            client_id: 0,
            retry_ambiguous: false,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(250),
            auth_secret: None,
        }
    }
}

/// Connection-failure circuit breaker, shared per address across every
/// client in the process.
struct Breaker {
    state: Mutex<BreakerState>,
    trips: AtomicU64,
    resets: AtomicU64,
}

enum BreakerState {
    Closed { failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// Outcome of asking the breaker for permission to dial.
enum BreakerGate {
    /// Dial normally.
    Pass,
    /// Dial as the single half-open probe.
    Probe,
    /// Fail fast — the breaker is open (or another caller holds the
    /// probe slot).
    Refuse,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: Mutex::new(BreakerState::Closed { failures: 0 }),
            trips: AtomicU64::new(0),
            resets: AtomicU64::new(0),
        }
    }

    fn admit(&self) -> BreakerGate {
        let mut state = self.state.lock();
        match *state {
            BreakerState::Closed { .. } => BreakerGate::Pass,
            BreakerState::Open { until } if Instant::now() >= until => {
                *state = BreakerState::HalfOpen;
                BreakerGate::Probe
            }
            BreakerState::Open { .. } | BreakerState::HalfOpen => BreakerGate::Refuse,
        }
    }

    fn on_success(&self) {
        let mut state = self.state.lock();
        if !matches!(*state, BreakerState::Closed { failures: 0 }) {
            if matches!(*state, BreakerState::HalfOpen | BreakerState::Open { .. }) {
                self.resets.fetch_add(1, Ordering::Relaxed);
            }
            *state = BreakerState::Closed { failures: 0 };
        }
    }

    fn on_failure(&self, threshold: u32, cooldown: Duration) {
        let mut state = self.state.lock();
        match *state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= threshold {
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    *state = BreakerState::Open {
                        until: Instant::now() + cooldown,
                    };
                } else {
                    *state = BreakerState::Closed { failures };
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: back to open for another cooldown.
                self.trips.fetch_add(1, Ordering::Relaxed);
                *state = BreakerState::Open {
                    until: Instant::now() + cooldown,
                };
            }
            BreakerState::Open { .. } => {}
        }
    }
}

/// Process-wide breaker registry: every client dialing the same address
/// shares one breaker, which is the point — when the server is down,
/// one probe per cooldown suffices for all of them.
fn breaker_for(addr: SocketAddr) -> Arc<Breaker> {
    static REGISTRY: OnceLock<Mutex<HashMap<SocketAddr, Arc<Breaker>>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    Arc::clone(
        registry
            .lock()
            .entry(addr)
            .or_insert_with(|| Arc::new(Breaker::new())),
    )
}

/// One live TCP connection: writer half, response router, reader
/// thread. Torn down and replaced wholesale on any transport error.
struct Conn {
    /// Shared with the reader thread, which writes push acks on it.
    writer: Arc<Mutex<TcpStream>>,
    pending: Arc<Pending>,
    dead: Arc<AtomicBool>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl Conn {
    fn dial(
        addrs: &[SocketAddr],
        handlers: &Arc<RwLock<HashMap<String, PushHandler>>>,
        push_seen: &Arc<Mutex<HashMap<String, u64>>>,
    ) -> Result<Conn, WireError> {
        let stream = TcpStream::connect(addrs)?;
        stream.set_nodelay(true).ok();
        let reader_stream = stream.try_clone()?;
        let writer = Arc::new(Mutex::new(stream));
        let pending: Arc<Pending> = Arc::new(Mutex::new(HashMap::new()));
        let dead = Arc::new(AtomicBool::new(false));
        let reader = {
            let pending = Arc::clone(&pending);
            let handlers = Arc::clone(handlers);
            let dead = Arc::clone(&dead);
            let writer = Arc::clone(&writer);
            let push_seen = Arc::clone(push_seen);
            std::thread::Builder::new()
                .name("hipac-net-client-reader".to_owned())
                .spawn(move || read_loop(reader_stream, &pending, &handlers, &push_seen, &writer, &dead))
                .expect("spawn client reader")
        };
        Ok(Conn {
            writer,
            pending,
            dead,
            reader: Mutex::new(Some(reader)),
        })
    }

    /// Close the socket and join the reader; blocked callers wake with
    /// a transport error when the reader clears the pending table.
    fn teardown(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.writer.lock().shutdown(Shutdown::Both);
        if let Some(t) = self.reader.lock().take() {
            let _ = t.join();
        }
    }
}

/// A connection to a [`crate::HipacServer`].
pub struct HipacClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    client_id: u64,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    conn: Mutex<Option<Arc<Conn>>>,
    handlers: Arc<RwLock<HashMap<String, PushHandler>>>,
    /// Highest push sequence handled per handler. Owned by the client
    /// (not the connection) so redeliveries after a reconnect are
    /// recognized and acked without re-running the handler.
    push_seen: Arc<Mutex<HashMap<String, u64>>>,
    /// Handlers the server knows this client serves; re-subscribed on
    /// every reconnect.
    subscribed: Mutex<HashSet<String>>,
    closed: AtomicBool,
}

impl HipacClient {
    /// Connect and verify protocol compatibility with a ping.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<HipacClient, WireError> {
        HipacClient::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit resilience configuration.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<HipacClient, WireError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(WireError::Io("address resolved to nothing".into()));
        }
        let client_id = match config.client_id {
            0 => auto_client_id(),
            id => id,
        };
        let client = HipacClient {
            addrs,
            config,
            client_id,
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(1),
            conn: Mutex::new(None),
            handlers: Arc::new(RwLock::new(HashMap::new())),
            push_seen: Arc::new(Mutex::new(HashMap::new())),
            subscribed: Mutex::new(HashSet::new()),
            closed: AtomicBool::new(false),
        };
        // Fail fast on first dial: a bad address or incompatible server
        // should error at connect, not at first use.
        client.ensure_conn()?;
        Ok(client)
    }

    /// The stable identity this client presents in idempotency keys.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Send one command and wait for its reply, retrying transport
    /// failures per [`ClientConfig`]. `Reply::Err` becomes
    /// `WireError::Remote`.
    pub fn request(&self, command: Command) -> Result<Reply, WireError> {
        self.request_with_deadline(command, self.config.default_deadline)
    }

    /// [`HipacClient::request`] with an explicit per-request deadline
    /// (overriding the config default). The deadline travels to the
    /// server, which bounds lock waits with it; locally the wait ends
    /// in [`WireError::Timeout`] — an *indefinite* outcome — shortly
    /// after it passes.
    pub fn request_with_deadline(
        &self,
        command: Command,
        deadline: Option<Duration>,
    ) -> Result<Reply, WireError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(WireError::Io("client closed".into()));
        }
        let meta = RequestMeta {
            client_id: self.client_id,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            deadline_ms: deadline.map_or(0, |d| d.as_millis().max(1) as u64),
        };
        let mut attempt: u32 = 0;
        loop {
            match self.try_once(meta, &command, deadline) {
                // Opt-in: retry refusals (definitely not executed) and
                // ambiguous storage errors with the SAME key until a
                // definite answer arrives — across a server restart,
                // the recovered reply journal provides it.
                Ok(Reply::Err { kind, message })
                    if self.config.retry_ambiguous
                        && matches!(kind.as_str(), "Overloaded" | "Draining" | "Io")
                        && attempt < self.config.max_retries =>
                {
                    let _ = message;
                    attempt += 1;
                    std::thread::sleep(retry_backoff(
                        self.config.backoff,
                        self.client_id,
                        meta.seq,
                        attempt,
                    ));
                }
                Ok(Reply::Err { kind, message }) => {
                    return Err(WireError::Remote { kind, message })
                }
                Ok(reply) => return Ok(reply),
                // Transport failures retry: the key is unchanged,
                // so a server that did execute replays its cached
                // reply. Timeouts and remote errors are definite or
                // deadline-bound — never retried implicitly.
                Err(e) if matches!(e, WireError::Io(_) | WireError::Transport(_)) => {
                    self.discard_conn();
                    if attempt >= self.config.max_retries {
                        return Err(match e {
                            WireError::Io(m) if attempt > 0 => WireError::Transport(m),
                            other => other,
                        });
                    }
                    attempt += 1;
                    std::thread::sleep(retry_backoff(
                        self.config.backoff,
                        self.client_id,
                        meta.seq,
                        attempt,
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One attempt: get (or re-establish) the connection, write the
    /// frame, wait for the routed reply.
    fn try_once(
        &self,
        meta: RequestMeta,
        command: &Command,
        deadline: Option<Duration>,
    ) -> Result<Reply, WireError> {
        let conn = self.ensure_conn()?;
        raw_request(
            &conn,
            self.next_id.fetch_add(1, Ordering::Relaxed),
            meta,
            command.clone(),
            deadline,
        )
    }

    /// Current connection, dialing a fresh one (handshake ping +
    /// handler re-subscription) if the last died.
    fn ensure_conn(&self) -> Result<Arc<Conn>, WireError> {
        let mut guard = self.conn.lock();
        if let Some(c) = guard.as_ref() {
            if !c.dead.load(Ordering::Acquire) {
                return Ok(Arc::clone(c));
            }
        }
        if let Some(old) = guard.take() {
            old.teardown();
        }
        let breaker = if self.config.breaker_threshold > 0 {
            let b = breaker_for(self.addrs[0]);
            match b.admit() {
                BreakerGate::Pass | BreakerGate::Probe => Some(b),
                BreakerGate::Refuse => {
                    return Err(WireError::Transport(format!(
                        "circuit open for {}; retry after cooldown",
                        self.addrs[0]
                    )))
                }
            }
        } else {
            None
        };
        let conn = match Conn::dial(&self.addrs, &self.handlers, &self.push_seen) {
            Ok(c) => Arc::new(c),
            Err(e) => {
                if let Some(b) = &breaker {
                    b.on_failure(self.config.breaker_threshold, self.config.breaker_cooldown);
                }
                return Err(e);
            }
        };
        let handshake = (|| -> Result<(), WireError> {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let ping = Command::Ping {
                version: PROTOCOL_VERSION,
            };
            let negotiated = match raw_request(&conn, id, RequestMeta::default(), ping, None)? {
                // Additive negotiation: any version both ends speak is
                // acceptable — the server answers with the minimum of
                // the two, and v5 extensions degrade gracefully.
                Reply::Pong { version }
                    if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
                {
                    version
                }
                Reply::Pong { version } => {
                    return Err(WireError::Protocol(format!(
                        "server speaks protocol v{version}, client v{PROTOCOL_VERSION}"
                    )))
                }
                Reply::Err { kind, message } => return Err(WireError::Remote { kind, message }),
                other => return Err(unexpected(other)),
            };
            // Authenticate before re-subscribing: subscriptions bind to
            // the proven identity on a v8 server with auth enabled, so
            // the token must land first. A v≤7 server never sees the
            // opcode (it could not decode it).
            if let Some(secret) = &self.config.auth_secret {
                if negotiated >= 8 {
                    let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                    let auth = Command::Auth {
                        client_id: self.client_id,
                        token: crate::auth::session_token(secret, self.client_id).to_vec(),
                    };
                    match raw_request(&conn, id, RequestMeta::default(), auth, None)? {
                        Reply::Ok => {}
                        Reply::Err { kind, message } => {
                            return Err(WireError::Remote { kind, message })
                        }
                        other => return Err(unexpected(other)),
                    }
                }
            }
            for handler in self.subscribed.lock().iter() {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let cmd = Command::Subscribe {
                    handler: handler.clone(),
                };
                match raw_request(&conn, id, RequestMeta::default(), cmd, None)? {
                    Reply::Ok => {}
                    Reply::Err { kind, message } => {
                        return Err(WireError::Remote { kind, message })
                    }
                    other => return Err(unexpected(other)),
                }
            }
            Ok(())
        })();
        match handshake {
            Ok(()) => {
                if let Some(b) = &breaker {
                    b.on_success();
                }
                *guard = Some(Arc::clone(&conn));
                Ok(conn)
            }
            Err(e) => {
                if let Some(b) = &breaker {
                    b.on_failure(self.config.breaker_threshold, self.config.breaker_cooldown);
                }
                conn.teardown();
                Err(e)
            }
        }
    }

    /// Times the shared breaker for this client's primary address has
    /// tripped open (0 when the breaker is disabled or never tripped).
    pub fn breaker_trips(&self) -> u64 {
        breaker_for(self.addrs[0]).trips.load(Ordering::Relaxed)
    }

    /// Times the shared breaker recovered (half-open probe succeeded).
    pub fn breaker_resets(&self) -> u64 {
        breaker_for(self.addrs[0]).resets.load(Ordering::Relaxed)
    }

    /// Drop the current connection (if any) so the next request
    /// redials.
    fn discard_conn(&self) {
        if let Some(old) = self.conn.lock().take() {
            old.teardown();
        }
    }

    /// Register a local callback for push frames addressed to
    /// `handler`, without telling the server (use
    /// [`HipacClient::subscribe`] for both at once).
    pub fn on_push(&self, handler: &str, f: impl Fn(&PushEvent) + Send + Sync + 'static) {
        self.handlers.write().insert(handler.to_owned(), Box::new(f));
    }

    // ---- transaction operations ----

    pub fn begin(&self) -> Result<TxnId, WireError> {
        match self.request(Command::Begin)? {
            Reply::Txn(t) => Ok(t),
            other => Err(unexpected(other)),
        }
    }

    pub fn begin_child(&self, parent: TxnId) -> Result<TxnId, WireError> {
        match self.request(Command::BeginChild { parent })? {
            Reply::Txn(t) => Ok(t),
            other => Err(unexpected(other)),
        }
    }

    pub fn commit(&self, txn: TxnId) -> Result<(), WireError> {
        self.expect_ok(Command::Commit { txn })
    }

    pub fn abort(&self, txn: TxnId) -> Result<(), WireError> {
        self.expect_ok(Command::Abort { txn })
    }

    // ---- data operations ----

    /// Create a class; returns the class id.
    pub fn create_class(
        &self,
        txn: TxnId,
        name: &str,
        superclass: Option<&str>,
        attrs: Vec<AttrDef>,
    ) -> Result<u64, WireError> {
        let attrs = attrs
            .into_iter()
            .map(|a| WireAttr {
                name: a.name,
                ty: crate::proto::type_code(a.ty),
                nullable: a.nullable,
                indexed: a.indexed,
            })
            .collect();
        match self.request(Command::CreateClass {
            txn,
            name: name.to_owned(),
            superclass: superclass.map(str::to_owned),
            attrs,
        })? {
            Reply::Id(id) => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// Insert an object; returns its oid.
    pub fn insert(&self, txn: TxnId, class: &str, values: Vec<Value>) -> Result<u64, WireError> {
        match self.request(Command::Insert {
            txn,
            class: class.to_owned(),
            values,
        })? {
            Reply::Object(oid) => Ok(oid.raw()),
            other => Err(unexpected(other)),
        }
    }

    pub fn update(
        &self,
        txn: TxnId,
        oid: u64,
        assignments: Vec<(String, Value)>,
    ) -> Result<(), WireError> {
        self.expect_ok(Command::Update {
            txn,
            oid,
            assignments,
        })
    }

    pub fn delete(&self, txn: TxnId, oid: u64) -> Result<(), WireError> {
        self.expect_ok(Command::Delete { txn, oid })
    }

    /// Run a query in the surface syntax
    /// (`from <class> [where <expr>] [select a, b]`).
    pub fn query(
        &self,
        txn: TxnId,
        text: &str,
        params: HashMap<String, Value>,
    ) -> Result<Vec<WireRow>, WireError> {
        match self.request(Command::Query {
            txn,
            text: text.to_owned(),
            params,
        })? {
            Reply::Rows(rows) => Ok(rows),
            other => Err(unexpected(other)),
        }
    }

    // ---- event operations ----

    /// Define an external event; returns the event id.
    pub fn define_event(&self, name: &str, params: &[&str]) -> Result<u64, WireError> {
        match self.request(Command::DefineEvent {
            name: name.to_owned(),
            params: params.iter().map(|s| s.to_string()).collect(),
        })? {
            Reply::Id(id) => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// Signal an external event, optionally inside a transaction.
    pub fn signal_event(
        &self,
        name: &str,
        args: HashMap<String, Value>,
        txn: Option<TxnId>,
    ) -> Result<(), WireError> {
        self.expect_ok(Command::SignalEvent {
            name: name.to_owned(),
            args,
            txn,
        })
    }

    // ---- rule operations ----

    /// Create a rule from a locally built [`RuleDef`]; returns the rule
    /// id.
    pub fn create_rule(&self, txn: TxnId, def: &RuleDef) -> Result<u64, WireError> {
        match self.request(Command::CreateRule {
            txn,
            rule: hipac_rules::codec::encode_rule(def),
        })? {
            Reply::Id(id) => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    pub fn drop_rule(&self, txn: TxnId, name: &str) -> Result<(), WireError> {
        self.expect_ok(Command::DropRule {
            txn,
            name: name.to_owned(),
        })
    }

    pub fn enable_rule(&self, txn: TxnId, name: &str) -> Result<(), WireError> {
        self.expect_ok(Command::EnableRule {
            txn,
            name: name.to_owned(),
        })
    }

    pub fn disable_rule(&self, txn: TxnId, name: &str) -> Result<(), WireError> {
        self.expect_ok(Command::DisableRule {
            txn,
            name: name.to_owned(),
        })
    }

    // ---- application operations (§4.1 role reversal) ----

    /// Become the application server for `handler`: rule actions
    /// addressed to it are delivered to `f` on this client's reader
    /// thread. Keep `f` quick — it blocks delivery of later frames.
    /// The subscription survives reconnects: the client re-subscribes
    /// every tracked handler as part of redialing.
    pub fn subscribe(
        &self,
        handler: &str,
        f: impl Fn(&PushEvent) + Send + Sync + 'static,
    ) -> Result<(), WireError> {
        self.on_push(handler, f);
        self.expect_ok(Command::Subscribe {
            handler: handler.to_owned(),
        })?;
        self.subscribed.lock().insert(handler.to_owned());
        Ok(())
    }

    /// Stop serving `handler`.
    pub fn unsubscribe(&self, handler: &str) -> Result<(), WireError> {
        self.subscribed.lock().remove(handler);
        self.expect_ok(Command::Unsubscribe {
            handler: handler.to_owned(),
        })?;
        self.handlers.write().remove(handler);
        Ok(())
    }

    // ---- observability ----

    /// Fetch the server's engine statistics snapshot. The client-side
    /// circuit-breaker gauges (`breaker_trips`/`breaker_resets`) are
    /// overlaid from this process's per-address breaker — the server
    /// encodes them as zero because it cannot know them.
    pub fn stats(&self) -> Result<WireStats, WireError> {
        match self.request(Command::Stats)? {
            Reply::Stats(s) => {
                let mut s = *s;
                s.breaker_trips = self.breaker_trips();
                s.breaker_resets = self.breaker_resets();
                Ok(s)
            }
            other => Err(unexpected(other)),
        }
    }

    fn expect_ok(&self, command: Command) -> Result<(), WireError> {
        match self.request(command)? {
            Reply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

impl Drop for HipacClient {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::Release);
        self.discard_conn();
    }
}

/// A client over a replicated fleet of HiPAC nodes: writes and
/// transactional work route to the primary, snapshot reads and
/// subscriptions prefer a replica, and every address is guarded by the
/// process-wide per-address circuit breaker through the underlying
/// [`HipacClient`]s.
///
/// Roles are discovered by probing each address's `STATS` reply
/// (`repl_role`); they are cached until a request fails in a way
/// another fleet member could serve — dead socket, open breaker, a
/// `NotPrimary`/`Draining` refusal — at which point the whole list is
/// re-probed, so a failover (the old primary gone, a promoted replica
/// now answering as primary) is followed automatically.
///
/// Cross-node retries re-run the operation from scratch (a fresh
/// idempotency key against a different node), so they are at-most-once
/// per node: callers needing exactly-once across a failover should run
/// a redo protocol keyed on application state, as the failover torture
/// does.
pub struct FleetClient {
    addrs: Vec<String>,
    config: ClientConfig,
    primary: Mutex<Option<Arc<HipacClient>>>,
    replica: Mutex<Option<Arc<HipacClient>>>,
    /// Last probe's view of every member, for operators and failover
    /// tooling.
    members: Mutex<Vec<FleetMember>>,
    /// Per-fleet jitter identity for retry backoff: two fleet clients
    /// hammering the same downed primary must not re-probe in
    /// lockstep.
    jitter_key: u64,
}

/// One fleet member as seen by the latest [`FleetClient`] probe.
#[derive(Debug, Clone)]
pub struct FleetMember {
    pub addr: String,
    /// `Some(ROLE_PRIMARY)` / `Some(ROLE_REPLICA)`; `None` when the
    /// member was unreachable or its stats call failed.
    pub role: Option<u64>,
    /// Replication epoch the member reports (0 = never promoted /
    /// pre-epoch build).
    pub epoch: u64,
    /// Primary-stream LSN the member has applied (replicas) or its
    /// highest peer-acked LSN (primaries).
    pub applied_lsn: u64,
}

impl FleetClient {
    /// Connect to a fleet given its member addresses, probing roles
    /// up front. Fails when no member currently answers as primary.
    pub fn connect(
        addrs: &[impl AsRef<str>],
        config: ClientConfig,
    ) -> Result<FleetClient, WireError> {
        let addrs: Vec<String> = addrs.iter().map(|a| a.as_ref().to_owned()).collect();
        if addrs.is_empty() {
            return Err(WireError::Io("fleet address list is empty".into()));
        }
        let fleet = FleetClient {
            addrs,
            config,
            primary: Mutex::new(None),
            replica: Mutex::new(None),
            members: Mutex::new(Vec::new()),
            jitter_key: auto_client_id(),
        };
        fleet.probe()?;
        Ok(fleet)
    }

    /// Probe every address and refresh the cached role routing. `Ok`
    /// iff a primary was found; the replica slot is best-effort.
    ///
    /// All members are probed — no early exit — because role alone no
    /// longer picks the right node: during a split-brain heal two
    /// members may both answer as primary, and only the one carrying
    /// the **highest replication epoch** is real (the other is a
    /// deposed primary that has not yet been fenced; writing to it
    /// would be refused or, worse, lost at rejoin). Among replicas the
    /// probe prefers the **highest applied LSN**, so reads land on the
    /// freshest follower and a failover driven through
    /// [`FleetClient::topology`] promotes the best candidate.
    fn probe(&self) -> Result<(), WireError> {
        let mut primary: Option<(Arc<HipacClient>, u64)> = None;
        let mut replica: Option<(Arc<HipacClient>, u64)> = None;
        let mut members = Vec::with_capacity(self.addrs.len());
        let mut last_err = WireError::Transport("no fleet member reachable".into());
        for addr in &self.addrs {
            let mut member = FleetMember {
                addr: addr.clone(),
                role: None,
                epoch: 0,
                applied_lsn: 0,
            };
            let client = match HipacClient::connect_with(addr.as_str(), self.config.clone()) {
                Ok(c) => Arc::new(c),
                Err(e) => {
                    last_err = e;
                    members.push(member);
                    continue;
                }
            };
            match client.stats() {
                Ok(s) => {
                    member.role = Some(s.repl_role);
                    member.epoch = s.repl_epoch;
                    member.applied_lsn = s.last_applied_lsn;
                    if s.repl_role == ROLE_PRIMARY {
                        if !matches!(&primary, Some((_, e)) if s.repl_epoch <= *e) {
                            primary = Some((client, s.repl_epoch));
                        }
                    } else if !matches!(&replica, Some((_, l)) if s.last_applied_lsn <= *l) {
                        replica = Some((client, s.last_applied_lsn));
                    }
                }
                Err(e) => last_err = e,
            }
            members.push(member);
        }
        *self.members.lock() = members;
        *self.replica.lock() = replica.map(|(c, _)| c);
        match primary {
            Some((p, _)) => {
                *self.primary.lock() = Some(p);
                Ok(())
            }
            None => {
                *self.primary.lock() = None;
                Err(last_err)
            }
        }
    }

    /// The fleet as seen by the most recent probe (refreshed on every
    /// reroute). Failover tooling uses this to pick a promotion
    /// candidate: the reachable replica with the highest
    /// `applied_lsn` loses the least data.
    pub fn topology(&self) -> Vec<FleetMember> {
        self.members.lock().clone()
    }

    /// Re-probe the fleet now and return the refreshed topology.
    pub fn refresh_topology(&self) -> Vec<FleetMember> {
        let _ = self.probe();
        self.topology()
    }

    /// Whether a replica is currently serving the read path (false:
    /// reads fall back to the primary).
    pub fn has_replica(&self) -> bool {
        self.replica.lock().is_some()
    }

    fn current_primary(&self) -> Result<Arc<HipacClient>, WireError> {
        if let Some(c) = self.primary.lock().clone() {
            return Ok(c);
        }
        self.probe()?;
        self.primary
            .lock()
            .clone()
            .ok_or_else(|| WireError::Transport("no primary in fleet".into()))
    }

    fn current_reader(&self) -> Result<Arc<HipacClient>, WireError> {
        if let Some(c) = self.replica.lock().clone() {
            return Ok(c);
        }
        if let Some(c) = self.primary.lock().clone() {
            return Ok(c);
        }
        self.probe()?;
        if let Some(c) = self.replica.lock().clone() {
            return Ok(c);
        }
        self.current_primary()
    }

    /// Whether `e` means this node cannot serve the request but another
    /// fleet member might — the trigger for a re-probe.
    fn reroutable(e: &WireError) -> bool {
        match e {
            WireError::Io(_) | WireError::Transport(_) => true,
            WireError::Remote { kind, .. } => {
                matches!(kind.as_str(), "NotPrimary" | "Draining" | "Unsupported")
            }
            _ => false,
        }
    }

    /// Run `f` against the primary, re-probing and failing over when
    /// the node is unreachable or no longer primary.
    fn with_primary<T>(
        &self,
        f: impl Fn(&HipacClient) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut attempt: u32 = 0;
        loop {
            match self.current_primary().and_then(|c| f(&c)) {
                Ok(v) => return Ok(v),
                Err(e) if Self::reroutable(&e) && attempt < self.config.max_retries => {
                    *self.primary.lock() = None;
                    attempt += 1;
                    std::thread::sleep(retry_backoff(self.config.backoff, self.jitter_key, 0, attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Run `f` against the preferred read node (replica when present),
    /// falling back to the primary when the replica fails.
    fn with_reader<T>(
        &self,
        f: impl Fn(&HipacClient) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut attempt: u32 = 0;
        loop {
            match self.current_reader().and_then(|c| f(&c)) {
                Ok(v) => return Ok(v),
                Err(e) if Self::reroutable(&e) && attempt < self.config.max_retries => {
                    *self.replica.lock() = None;
                    *self.primary.lock() = None;
                    attempt += 1;
                    std::thread::sleep(retry_backoff(self.config.backoff, self.jitter_key, 1, attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }

    // ---- write path (routed to the primary) ----

    pub fn begin(&self) -> Result<TxnId, WireError> {
        self.with_primary(|c| c.begin())
    }

    pub fn commit(&self, txn: TxnId) -> Result<(), WireError> {
        self.with_primary(|c| c.commit(txn))
    }

    pub fn abort(&self, txn: TxnId) -> Result<(), WireError> {
        self.with_primary(|c| c.abort(txn))
    }

    pub fn create_class(
        &self,
        txn: TxnId,
        name: &str,
        superclass: Option<&str>,
        attrs: Vec<AttrDef>,
    ) -> Result<u64, WireError> {
        self.with_primary(|c| c.create_class(txn, name, superclass, attrs.clone()))
    }

    pub fn insert(&self, txn: TxnId, class: &str, values: Vec<Value>) -> Result<u64, WireError> {
        self.with_primary(|c| c.insert(txn, class, values.clone()))
    }

    pub fn update(
        &self,
        txn: TxnId,
        oid: u64,
        assignments: Vec<(String, Value)>,
    ) -> Result<(), WireError> {
        self.with_primary(|c| c.update(txn, oid, assignments.clone()))
    }

    pub fn delete(&self, txn: TxnId, oid: u64) -> Result<(), WireError> {
        self.with_primary(|c| c.delete(txn, oid))
    }

    /// Transactional query — runs on the primary, where the
    /// transaction lives.
    pub fn query(
        &self,
        txn: TxnId,
        text: &str,
        params: HashMap<String, Value>,
    ) -> Result<Vec<WireRow>, WireError> {
        self.with_primary(|c| c.query(txn, text, params.clone()))
    }

    pub fn create_rule(&self, txn: TxnId, def: &RuleDef) -> Result<u64, WireError> {
        self.with_primary(|c| c.create_rule(txn, def))
    }

    pub fn define_event(&self, name: &str, params: &[&str]) -> Result<u64, WireError> {
        self.with_primary(|c| c.define_event(name, params))
    }

    pub fn signal_event(
        &self,
        name: &str,
        args: HashMap<String, Value>,
        txn: Option<TxnId>,
    ) -> Result<(), WireError> {
        self.with_primary(|c| c.signal_event(name, args.clone(), txn))
    }

    // ---- read path (routed to a replica when one is up) ----

    /// Snapshot query outside any transaction. A replica serves it at
    /// its applied-LSN watermark (transaction id 0 means "no
    /// transaction" there); the primary fallback wraps the read in a
    /// throwaway transaction for the same point-in-time semantics.
    pub fn snapshot_query(
        &self,
        text: &str,
        params: HashMap<String, Value>,
    ) -> Result<Vec<WireRow>, WireError> {
        self.with_reader(|c| match c.query(TxnId(0), text, params.clone()) {
            Err(WireError::Remote { kind, .. }) if kind == "UnknownTxn" => {
                let t = c.begin()?;
                let rows = c.query(t, text, params.clone());
                let _ = c.abort(t);
                rows
            }
            other => other,
        })
    }

    /// Subscribe `handler` on the preferred read node: with a live
    /// replica, pushes for replica-homed subscriptions are fanned out
    /// from the replica's replicated outbox, offloading the primary.
    pub fn subscribe(
        &self,
        handler: &str,
        f: impl Fn(&PushEvent) + Send + Sync + 'static,
    ) -> Result<(), WireError> {
        let f = Arc::new(f);
        self.with_reader(move |c| {
            let f = Arc::clone(&f);
            c.subscribe(handler, move |ev| f(ev))
        })
    }

    /// Stats from the preferred read node (replica when present).
    pub fn stats(&self) -> Result<WireStats, WireError> {
        self.with_reader(|c| c.stats())
    }

    /// Stats from the primary.
    pub fn primary_stats(&self) -> Result<WireStats, WireError> {
        self.with_primary(|c| c.stats())
    }
}

/// Register the pending slot, write the frame, await the routed reply.
/// `Reply::Err` passes through (the caller distinguishes remote errors
/// from transport ones); all failure paths clean up the pending slot.
fn raw_request(
    conn: &Conn,
    id: u64,
    meta: RequestMeta,
    command: Command,
    deadline: Option<Duration>,
) -> Result<Reply, WireError> {
    if conn.dead.load(Ordering::Acquire) {
        return Err(WireError::Transport("connection lost".into()));
    }
    let (tx, rx) = crossbeam::channel::bounded(1);
    conn.pending.lock().insert(id, tx);
    let frame = Frame::Request { id, meta, command }.encode();
    if let Err(e) = conn.writer.lock().write_all(&frame) {
        conn.pending.lock().remove(&id);
        return Err(WireError::Transport(format!("write failed: {e}")));
    }
    match deadline {
        None => match rx.recv() {
            Ok(reply) => Ok(reply),
            // Reader dropped the senders: connection died with the
            // request outstanding — outcome unknown.
            Err(_) => Err(WireError::Transport(
                "connection lost awaiting reply".into(),
            )),
        },
        Some(d) => {
            // Grace on top of the deadline: a server that aborts the
            // request with DeadlineExceeded at the deadline still needs
            // time to deliver that definite answer.
            let wait = d + DEADLINE_GRACE;
            match rx.recv_timeout(wait) {
                Ok(reply) => Ok(reply),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    conn.pending.lock().remove(&id);
                    Err(WireError::Timeout(format!(
                        "no reply within {}ms deadline (+{}ms grace)",
                        d.as_millis(),
                        DEADLINE_GRACE.as_millis()
                    )))
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(
                    WireError::Transport("connection lost awaiting reply".into()),
                ),
            }
        }
    }
}

/// Slack between the deadline and the local timeout, so the server's
/// definite `DeadlineExceeded` beats the client's indefinite
/// [`WireError::Timeout`] when both fire.
const DEADLINE_GRACE: Duration = Duration::from_millis(500);

/// Process-unique, nonzero client identity: pid, wall clock, and a
/// process-local counter hashed together.
fn auto_client_id() -> u64 {
    use std::hash::{Hash, Hasher};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::process::id().hash(&mut h);
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .subsec_nanos()
        .hash(&mut h);
    COUNTER.fetch_add(1, Ordering::Relaxed).hash(&mut h);
    h.finish() | 1
}

/// Exponential backoff with deterministic jitter, capped at a second.
fn retry_backoff(base: Duration, client_id: u64, seq: u64, attempt: u32) -> Duration {
    use std::hash::{Hash, Hasher};
    let base_us = base.as_micros().max(1) as u64;
    let exp = base_us.saturating_mul(1 << attempt.min(6));
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (client_id, seq, attempt).hash(&mut h);
    let jitter = h.finish() % base_us.max(1);
    Duration::from_micros((exp + jitter).min(1_000_000))
}

fn unexpected(reply: Reply) -> WireError {
    WireError::Protocol(format!("unexpected reply: {reply:?}"))
}

fn read_loop(
    mut stream: TcpStream,
    pending: &Pending,
    handlers: &RwLock<HashMap<String, PushHandler>>,
    push_seen: &Mutex<HashMap<String, u64>>,
    writer: &Mutex<TcpStream>,
    dead: &AtomicBool,
) {
    loop {
        match Frame::read_from(&mut stream) {
            Ok(Some(Frame::Response { id, reply })) => {
                if let Some(tx) = pending.lock().remove(&id) {
                    let _ = tx.send(reply);
                }
                // No waiter: request raced with a local error path that
                // already gave up on it (or id 0: a fire-and-forget ack
                // whose Ok the server still sends); drop the reply.
            }
            Ok(Some(Frame::Push(event))) => {
                // seq 0 = pre-v4 unacked push: always deliver, no ack.
                // Otherwise dedup on the per-handler high-water mark —
                // redelivery after reconnect resends pushes the server
                // never saw acked, including ones we already ran.
                let duplicate = event.seq != 0 && {
                    let mut seen = push_seen.lock();
                    let last = seen.entry(event.handler.clone()).or_insert(0);
                    if event.seq <= *last {
                        true
                    } else {
                        *last = event.seq;
                        false
                    }
                };
                if !duplicate {
                    let guard = handlers.read();
                    if let Some(h) = guard.get(&event.handler) {
                        h(&event);
                    }
                    // No handler registered: the server pushed to a
                    // handler this client never subscribed (or one
                    // unregistered since); ignore.
                }
                // Ack after the handler returns (at-least-once for the
                // handler, exactly-once per seq for delivery). Id 0 is
                // the fire-and-forget channel: no waiter is registered,
                // so the server's Ok is dropped above.
                if event.seq != 0 {
                    let ack = Frame::Request {
                        id: 0,
                        meta: RequestMeta::default(),
                        command: Command::AckPush {
                            handler: event.handler.clone(),
                            seq: event.seq,
                        },
                    };
                    if ack.write_to(&mut *writer.lock()).is_err() {
                        break;
                    }
                }
            }
            // Servers never send requests to plain clients, and repl
            // stream frames only flow to a subscribed replica (see
            // `hipac-repl`); a malformed stream is fatal.
            Ok(Some(Frame::Request { .. })) | Ok(Some(Frame::Repl(_))) | Err(_) | Ok(None) => break,
        }
    }
    dead.store(true, Ordering::Release);
    // Wake every blocked caller: dropping the senders errors their recv.
    pending.lock().clear();
}
