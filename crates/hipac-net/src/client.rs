//! [`HipacClient`]: blocking request/response client with push-frame
//! delivery.
//!
//! A background reader thread demultiplexes the socket: responses are
//! routed to the issuing caller by request id (so the client is safe to
//! share across threads — `&self` methods, interior locking), and push
//! frames — application requests from rule actions, the paper's §4.1
//! role reversal — are dispatched to handlers registered with
//! [`HipacClient::on_push`] / [`HipacClient::subscribe`].

use crate::proto::{Command, Frame, PushEvent, Reply, WireAttr, WireError, WireRow, WireStats, PROTOCOL_VERSION};
use hipac_common::{TxnId, Value};
use hipac_object::AttrDef;
use hipac_rules::RuleDef;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Callback invoked on a push frame.
pub type PushHandler = Box<dyn Fn(&PushEvent) + Send + Sync>;

type Pending = Mutex<HashMap<u64, crossbeam::channel::Sender<Reply>>>;

/// A connection to a [`crate::HipacServer`].
pub struct HipacClient {
    writer: Mutex<TcpStream>,
    next_id: AtomicU64,
    pending: Arc<Pending>,
    handlers: Arc<RwLock<HashMap<String, PushHandler>>>,
    closed: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

impl HipacClient {
    /// Connect and verify protocol compatibility with a ping.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<HipacClient, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader_stream = stream.try_clone()?;

        let pending: Arc<Pending> = Arc::new(Mutex::new(HashMap::new()));
        let handlers: Arc<RwLock<HashMap<String, PushHandler>>> =
            Arc::new(RwLock::new(HashMap::new()));
        let closed = Arc::new(AtomicBool::new(false));

        let reader = {
            let pending = Arc::clone(&pending);
            let handlers = Arc::clone(&handlers);
            let closed = Arc::clone(&closed);
            std::thread::Builder::new()
                .name("hipac-net-client-reader".to_owned())
                .spawn(move || read_loop(reader_stream, &pending, &handlers, &closed))
                .expect("spawn client reader")
        };

        let client = HipacClient {
            writer: Mutex::new(stream),
            next_id: AtomicU64::new(1),
            pending,
            handlers,
            closed,
            reader: Some(reader),
        };
        match client.request(Command::Ping {
            version: PROTOCOL_VERSION,
        })? {
            Reply::Pong { version } if version == PROTOCOL_VERSION => Ok(client),
            Reply::Pong { version } => Err(WireError::Protocol(format!(
                "server speaks protocol v{version}, client v{PROTOCOL_VERSION}"
            ))),
            other => Err(unexpected(other)),
        }
    }

    /// Send one command and wait for its reply. `Reply::Err` becomes
    /// `WireError::Remote`.
    pub fn request(&self, command: Command) -> Result<Reply, WireError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(WireError::Io("connection closed".into()));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.pending.lock().insert(id, tx);
        let frame = Frame::Request { id, command }.encode();
        let write_result = self.writer.lock().write_all(&frame);
        if let Err(e) = write_result {
            self.pending.lock().remove(&id);
            return Err(e.into());
        }
        match rx.recv() {
            Ok(Reply::Err { kind, message }) => Err(WireError::Remote { kind, message }),
            Ok(reply) => Ok(reply),
            // Reader dropped the sender: connection died.
            Err(_) => Err(WireError::Io("connection closed".into())),
        }
    }

    /// Register a local callback for push frames addressed to
    /// `handler`, without telling the server (use
    /// [`HipacClient::subscribe`] for both at once).
    pub fn on_push(&self, handler: &str, f: impl Fn(&PushEvent) + Send + Sync + 'static) {
        self.handlers.write().insert(handler.to_owned(), Box::new(f));
    }

    // ---- transaction operations ----

    pub fn begin(&self) -> Result<TxnId, WireError> {
        match self.request(Command::Begin)? {
            Reply::Txn(t) => Ok(t),
            other => Err(unexpected(other)),
        }
    }

    pub fn begin_child(&self, parent: TxnId) -> Result<TxnId, WireError> {
        match self.request(Command::BeginChild { parent })? {
            Reply::Txn(t) => Ok(t),
            other => Err(unexpected(other)),
        }
    }

    pub fn commit(&self, txn: TxnId) -> Result<(), WireError> {
        self.expect_ok(Command::Commit { txn })
    }

    pub fn abort(&self, txn: TxnId) -> Result<(), WireError> {
        self.expect_ok(Command::Abort { txn })
    }

    // ---- data operations ----

    /// Create a class; returns the class id.
    pub fn create_class(
        &self,
        txn: TxnId,
        name: &str,
        superclass: Option<&str>,
        attrs: Vec<AttrDef>,
    ) -> Result<u64, WireError> {
        let attrs = attrs
            .into_iter()
            .map(|a| WireAttr {
                name: a.name,
                ty: crate::proto::type_code(a.ty),
                nullable: a.nullable,
                indexed: a.indexed,
            })
            .collect();
        match self.request(Command::CreateClass {
            txn,
            name: name.to_owned(),
            superclass: superclass.map(str::to_owned),
            attrs,
        })? {
            Reply::Id(id) => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// Insert an object; returns its oid.
    pub fn insert(&self, txn: TxnId, class: &str, values: Vec<Value>) -> Result<u64, WireError> {
        match self.request(Command::Insert {
            txn,
            class: class.to_owned(),
            values,
        })? {
            Reply::Object(oid) => Ok(oid.raw()),
            other => Err(unexpected(other)),
        }
    }

    pub fn update(
        &self,
        txn: TxnId,
        oid: u64,
        assignments: Vec<(String, Value)>,
    ) -> Result<(), WireError> {
        self.expect_ok(Command::Update {
            txn,
            oid,
            assignments,
        })
    }

    pub fn delete(&self, txn: TxnId, oid: u64) -> Result<(), WireError> {
        self.expect_ok(Command::Delete { txn, oid })
    }

    /// Run a query in the surface syntax
    /// (`from <class> [where <expr>] [select a, b]`).
    pub fn query(
        &self,
        txn: TxnId,
        text: &str,
        params: HashMap<String, Value>,
    ) -> Result<Vec<WireRow>, WireError> {
        match self.request(Command::Query {
            txn,
            text: text.to_owned(),
            params,
        })? {
            Reply::Rows(rows) => Ok(rows),
            other => Err(unexpected(other)),
        }
    }

    // ---- event operations ----

    /// Define an external event; returns the event id.
    pub fn define_event(&self, name: &str, params: &[&str]) -> Result<u64, WireError> {
        match self.request(Command::DefineEvent {
            name: name.to_owned(),
            params: params.iter().map(|s| s.to_string()).collect(),
        })? {
            Reply::Id(id) => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    /// Signal an external event, optionally inside a transaction.
    pub fn signal_event(
        &self,
        name: &str,
        args: HashMap<String, Value>,
        txn: Option<TxnId>,
    ) -> Result<(), WireError> {
        self.expect_ok(Command::SignalEvent {
            name: name.to_owned(),
            args,
            txn,
        })
    }

    // ---- rule operations ----

    /// Create a rule from a locally built [`RuleDef`]; returns the rule
    /// id.
    pub fn create_rule(&self, txn: TxnId, def: &RuleDef) -> Result<u64, WireError> {
        match self.request(Command::CreateRule {
            txn,
            rule: hipac_rules::codec::encode_rule(def),
        })? {
            Reply::Id(id) => Ok(id),
            other => Err(unexpected(other)),
        }
    }

    pub fn drop_rule(&self, txn: TxnId, name: &str) -> Result<(), WireError> {
        self.expect_ok(Command::DropRule {
            txn,
            name: name.to_owned(),
        })
    }

    pub fn enable_rule(&self, txn: TxnId, name: &str) -> Result<(), WireError> {
        self.expect_ok(Command::EnableRule {
            txn,
            name: name.to_owned(),
        })
    }

    pub fn disable_rule(&self, txn: TxnId, name: &str) -> Result<(), WireError> {
        self.expect_ok(Command::DisableRule {
            txn,
            name: name.to_owned(),
        })
    }

    // ---- application operations (§4.1 role reversal) ----

    /// Become the application server for `handler`: rule actions
    /// addressed to it are delivered to `f` on this client's reader
    /// thread. Keep `f` quick — it blocks delivery of later frames.
    pub fn subscribe(
        &self,
        handler: &str,
        f: impl Fn(&PushEvent) + Send + Sync + 'static,
    ) -> Result<(), WireError> {
        self.on_push(handler, f);
        self.expect_ok(Command::Subscribe {
            handler: handler.to_owned(),
        })
    }

    /// Stop serving `handler`.
    pub fn unsubscribe(&self, handler: &str) -> Result<(), WireError> {
        self.expect_ok(Command::Unsubscribe {
            handler: handler.to_owned(),
        })?;
        self.handlers.write().remove(handler);
        Ok(())
    }

    // ---- observability ----

    /// Fetch the server's engine statistics snapshot.
    pub fn stats(&self) -> Result<WireStats, WireError> {
        match self.request(Command::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    fn expect_ok(&self, command: Command) -> Result<(), WireError> {
        match self.request(command)? {
            Reply::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

impl Drop for HipacClient {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::Release);
        let _ = self.writer.lock().shutdown(Shutdown::Both);
        if let Some(t) = self.reader.take() {
            let _ = t.join();
        }
    }
}

fn unexpected(reply: Reply) -> WireError {
    WireError::Protocol(format!("unexpected reply: {reply:?}"))
}

fn read_loop(
    mut stream: TcpStream,
    pending: &Pending,
    handlers: &RwLock<HashMap<String, PushHandler>>,
    closed: &AtomicBool,
) {
    loop {
        match Frame::read_from(&mut stream) {
            Ok(Some(Frame::Response { id, reply })) => {
                if let Some(tx) = pending.lock().remove(&id) {
                    let _ = tx.send(reply);
                }
                // No waiter: request raced with a local error path that
                // already gave up on it; drop the reply.
            }
            Ok(Some(Frame::Push(event))) => {
                let guard = handlers.read();
                if let Some(h) = guard.get(&event.handler) {
                    h(&event);
                }
                // No handler registered: the server pushed to a handler
                // this client never subscribed; ignore.
            }
            // Servers never send requests; a malformed stream is fatal.
            Ok(Some(Frame::Request { .. })) | Err(_) | Ok(None) => break,
        }
    }
    closed.store(true, Ordering::Release);
    // Wake every blocked caller: dropping the senders errors their recv.
    pending.lock().clear();
}
