//! A miniature Securities Analyst's Assistant split across the wire:
//! the engine runs behind a [`HipacServer`]; a display client
//! subscribes as the application endpoint; a feed client writes
//! quotes. The rule's application request crosses the network as a
//! push frame — the paper's §4.1 role reversal, remote.
//!
//! ```bash
//! cargo run -p hipac-net --example remote_saa [hold-seconds]
//! ```
//!
//! With a `hold-seconds` argument the server stays up after the demo
//! so external clients can poke the printed address.

use hipac::prelude::*;
use hipac_net::{HipacClient, HipacServer};
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let db = Arc::new(ActiveDatabase::builder().workers(4).build()?);
    let server = HipacServer::bind(db, "127.0.0.1:0")?;
    println!("server listening on {}", server.local_addr());

    // Display client: becomes the application endpoint for "display".
    let display = HipacClient::connect(server.local_addr())?;
    let (tx, rx) = crossbeam::channel::unbounded();
    display.subscribe("display", move |push| {
        let _ = tx.send(format!("{}: {:?}", push.request, push.args));
    })?;

    // Feed client: schema, the buy-xerox rule, and quotes.
    let feed = HipacClient::connect(server.local_addr())?;
    let t = feed.begin()?;
    feed.create_class(
        t,
        "stock",
        None,
        vec![
            AttrDef::new("symbol", ValueType::Str).indexed(),
            AttrDef::new("price", ValueType::Float),
        ],
    )?;
    feed.create_rule(
        t,
        &RuleDef::new("buy-xerox")
            .on(EventSpec::on_update("stock"))
            .when(Query::parse(
                "from stock where new.symbol = \"XRX\" and new.price >= 50.0",
            )?)
            .then(Action::single(ActionOp::AppRequest {
                handler: "display".into(),
                request: "buy".into(),
                args: vec![("price".into(), Expr::NewAttr("price".into()))],
            })),
    )?;
    let oid = feed.insert(t, "stock", vec!["XRX".into(), 48.0.into()])?;
    feed.commit(t)?;

    for price in [48.5, 49.2, 51.3] {
        let t = feed.begin()?;
        feed.update(t, oid, vec![("price".into(), Value::from(price))])?;
        feed.commit(t)?;
        println!("quote: XRX @ {price}");
    }

    let pushed = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("push frame within 5s");
    println!("display client received push -> {pushed}");

    // A remote error carries the engine's error kind across the wire.
    let t = feed.begin()?;
    match feed.insert(t, "no_such_class", vec![Value::from(1)]) {
        Err(hipac_net::WireError::Remote { kind, message }) => {
            println!("remote error example -> {kind}: {message}")
        }
        other => println!("unexpected: {other:?}"),
    }
    feed.abort(t)?;

    let stats = feed.stats()?;
    println!(
        "engine stats over the wire -> rules_triggered={} actions_executed={}",
        stats.rules_triggered, stats.actions_executed
    );

    if let Some(secs) = std::env::args().nth(1).and_then(|s| s.parse::<u64>().ok()) {
        println!("holding server open for {secs}s...");
        std::thread::sleep(Duration::from_secs(secs));
    }
    Ok(())
}
