//! [`ActiveDatabase`]: the assembled engine and the application
//! interface of Figure 4.1.

use hipac_common::{
    Clock, HipacError, ReplCounters, Result, SystemClock, Timestamp, TxnId, Value, VirtualClock,
};
use hipac_event::EventRegistry;
use hipac_object::ObjectStore;
use hipac_rules::manager::FnHandler;
use hipac_rules::{Matching, RuleManager};
use hipac_storage::{DurableStore, FaultPolicy};
use hipac_txn::TransactionManager;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Which clock drives temporal events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// A manually advanced clock ([`ActiveDatabase::advance_clock`]);
    /// deterministic, the default for tests, simulations and
    /// benchmarks.
    #[default]
    Virtual,
    /// Wall-clock time; call [`ActiveDatabase::poll_temporal`]
    /// periodically (e.g. from a timer thread) to fire due events.
    System,
}

/// Configuration builder for [`ActiveDatabase`].
pub struct Builder {
    durable_dir: Option<PathBuf>,
    workers: usize,
    firing_parallelism: usize,
    lock_timeout: Duration,
    clock: ClockMode,
    storage_faults: Option<Arc<FaultPolicy>>,
    separate_retry_limit: usize,
    matching: Matching,
    group_commit: Option<bool>,
    group_commit_window: Option<Duration>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            durable_dir: None,
            workers: 4,
            firing_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            lock_timeout: Duration::from_secs(10),
            clock: ClockMode::Virtual,
            storage_faults: None,
            separate_retry_limit: 3,
            matching: Matching::from_env(),
            group_commit: None,
            group_commit_window: None,
        }
    }
}

impl Builder {
    /// Persist committed data under `dir` (WAL + checkpointed data
    /// file); reopening the same directory recovers the database.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Worker threads for separate-coupled rule firings.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// How many sibling action subtransactions of one immediate or
    /// deferred rule group may execute concurrently (§3's concurrent
    /// sibling firing). Defaults to the number of available cores;
    /// `1` is the sequential in-order behavior.
    pub fn firing_parallelism(mut self, n: usize) -> Self {
        self.firing_parallelism = n;
        self
    }

    /// Lock-wait timeout (bounds blocking under contention).
    pub fn lock_timeout(mut self, d: Duration) -> Self {
        self.lock_timeout = d;
        self
    }

    /// Clock mode for temporal events.
    pub fn clock(mut self, mode: ClockMode) -> Self {
        self.clock = mode;
        self
    }

    /// How many times a separate-coupled firing whose worker
    /// transaction aborts transiently (deadlock, lock timeout,
    /// deadline) is retried before being dead-lettered. `0` disables
    /// retries.
    pub fn separate_retry_limit(mut self, n: usize) -> Self {
        self.separate_retry_limit = n;
        self
    }

    /// Inject a storage fault policy (crash testing; see
    /// `hipac_storage::fault`). Only meaningful together with
    /// [`Builder::durable`]; the policy crosses every WAL append/sync,
    /// page write/allocation, file/directory sync and checkpoint step
    /// the durable store performs.
    pub fn storage_faults(mut self, faults: Arc<FaultPolicy>) -> Self {
        self.storage_faults = Some(faults);
        self
    }

    /// Force WAL group commit on or off for the durable store,
    /// overriding the `HIPAC_GROUP_COMMIT` environment default (on).
    /// Only meaningful together with [`Builder::durable`].
    pub fn group_commit(mut self, enabled: bool) -> Self {
        self.group_commit = Some(enabled);
        self
    }

    /// Straggler window a group-commit flush leader waits for late
    /// committers before fsyncing the cohort. `Duration::ZERO` (the
    /// default) is pure piggyback batching: commits that arrive while
    /// the previous fsync runs form the next cohort, and a lone
    /// committer pays no added latency (degenerate-to-immediate).
    pub fn group_commit_window(mut self, window: Duration) -> Self {
        self.group_commit_window = Some(window);
        self
    }

    /// How signals resolve candidate rules: [`Matching::Network`] (the
    /// default) probes the discrimination network, O(matches) per
    /// signal; [`Matching::Naive`] walks the full event→rules list —
    /// the differential-testing oracle. Overridable per process via
    /// `HIPAC_MATCHING=naive|network`.
    pub fn matching(mut self, mode: Matching) -> Self {
        self.matching = mode;
        self
    }

    /// Assemble the engine.
    pub fn build(self) -> Result<ActiveDatabase> {
        let tm = Arc::new(TransactionManager::new());
        let durable = match &self.durable_dir {
            Some(dir) => {
                let faults = self.storage_faults.unwrap_or_else(FaultPolicy::none);
                let d = Arc::new(DurableStore::open_with_faults(
                    dir,
                    1024,
                    hipac_storage::store::DEFAULT_CHECKPOINT_THRESHOLD,
                    faults,
                )?);
                if self.group_commit.is_some() || self.group_commit_window.is_some() {
                    let cur = d.group_commit_stats();
                    d.set_group_commit(
                        self.group_commit.unwrap_or(cur.enabled),
                        self.group_commit_window
                            .unwrap_or(Duration::from_micros(cur.window_us)),
                    );
                }
                Some(d)
            }
            None => None,
        };
        let store =
            ObjectStore::with_lock_timeout(Arc::clone(&tm), durable.clone(), self.lock_timeout)?;
        let virtual_clock = match self.clock {
            ClockMode::Virtual => Some(Arc::new(VirtualClock::new())),
            ClockMode::System => None,
        };
        let clock: Arc<dyn Clock> = match &virtual_clock {
            Some(vc) => Arc::clone(vc) as Arc<dyn Clock>,
            None => Arc::new(SystemClock),
        };
        let events = Arc::new(EventRegistry::new(clock));
        // Replay persisted external event definitions before the Rule
        // Manager loads persisted rules that reference them.
        if let Some(d) = &durable {
            for (key, bytes) in d.scan_prefix(b"e")? {
                let name = std::str::from_utf8(&key[1..])
                    .map_err(|_| HipacError::Corruption("bad event name".into()))?;
                let row = hipac_common::codec::decode_row(&bytes)?;
                let formals = row
                    .into_iter()
                    .map(|v| match v {
                        Value::Str(s) => Ok(s),
                        _ => Err(HipacError::Corruption("bad event formals".into())),
                    })
                    .collect::<Result<Vec<_>>>()?;
                events.define_external(name, formals)?;
            }
        }
        let rules = RuleManager::with_matching(
            Arc::clone(&tm),
            Arc::clone(&store),
            Arc::clone(&events),
            self.workers,
            self.firing_parallelism,
            self.matching,
            durable.clone(),
        )?;
        rules.set_separate_retry_limit(self.separate_retry_limit);
        Ok(ActiveDatabase {
            tm,
            store,
            events,
            rules,
            virtual_clock,
            durable,
            repl: Arc::new(ReplCounters::new(hipac_common::ROLE_PRIMARY)),
        })
    }
}

/// A point-in-time snapshot of engine activity, cheap to take (atomic
/// counter reads plus two short lock holds). Served remotely by
/// `hipac-net`'s STATS command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Event signals run through the Rule Manager.
    pub signals_processed: u64,
    /// Rule firings triggered (all coupling modes).
    pub rules_triggered: u64,
    /// Condition evaluations that came back true.
    pub conditions_satisfied: u64,
    /// Rule actions executed.
    pub actions_executed: u64,
    /// Conditions evaluated against the full store.
    pub store_evaluations: u64,
    /// Conditions evaluated against operation deltas.
    pub delta_evaluations: u64,
    /// Condition-evaluation cache hits.
    pub cache_hits: u64,
    /// Transactions currently holding deferred firings.
    pub deferred_txns: u64,
    /// Total deferred firings queued across those transactions.
    pub deferred_firings: u64,
    /// Separate-mode firings submitted to the worker pool and not yet
    /// finished.
    pub pool_outstanding: u64,
    /// Errors buffered from separate-mode firings, not yet drained via
    /// [`ActiveDatabase::take_separate_errors`].
    pub separate_errors: u64,
    /// Immediate/deferred action firings dispatched through the
    /// parallel sibling pool (a subset of `actions_executed`).
    pub firings_parallel: u64,
    /// Sibling action jobs enqueued on the firing pool and not yet
    /// claimed by any thread.
    pub pool_queue_depth: u64,
    /// Separate-mode firing attempts retried after a transient
    /// (txn-fatal) abort such as a deadlock or lock timeout.
    pub separate_retries: u64,
    /// Separate-mode firings that exhausted their retry budget (or hit
    /// a non-retryable error) and were dead-lettered.
    pub separate_dead_letters: u64,
    /// Replication role: 0 primary, 1 replica
    /// (`hipac_common::repl::ROLE_*`).
    pub repl_role: u64,
    /// Highest LSN shipped to any replica (primary side).
    pub last_shipped_lsn: u64,
    /// Highest primary LSN durably applied (replica side; on the
    /// primary, the highest progress any replica reported).
    pub last_applied_lsn: u64,
    /// Durable frontier minus applied watermark, in bytes.
    pub repl_lag_bytes: u64,
    /// Push frames fanned out to subscribers homed on a replica.
    pub replica_pushes: u64,
    /// Replica → primary promotions in this node's lineage.
    pub promotions: u64,
    /// Live discrimination-network nodes (type nodes, attribute
    /// groups, equality buckets, bound keys); 0 in naive matching.
    pub match_index_nodes: u64,
    /// Signals resolved through the discrimination network.
    pub match_probes: u64,
    /// Rules excluded from candidate sets across all network probes.
    pub match_pruned: u64,
    /// Memoized partial-match (shared subexpression) hits.
    pub memo_hits: u64,
    /// Memo entries invalidated by committed writes (or evicted).
    pub memo_invalidations: u64,
    /// WAL group-commit cohort flushes (each is one fsync); 0 when the
    /// store is in-memory or group commit is off.
    pub group_commits: u64,
    /// Transactions committed through group-commit cohorts.
    pub group_commit_txns: u64,
    /// Largest cohort a single fsync has covered.
    pub group_commit_largest: u64,
    /// Replication epoch this node operates under (v9): bumped by
    /// promotion, adopted from the wire when fenced, 0 in a
    /// never-promoted fleet.
    pub repl_epoch: u64,
    /// Divergence LSN (previous epoch's space) recorded at this node's
    /// last promotion — the truncate point for a rejoining ex-primary.
    pub repl_fence_prev: u64,
    /// This node's durable LSN at its last promotion — the watermark a
    /// rejoining ex-primary resubscribes from.
    pub repl_fence_start: u64,
    /// Replication messages refused (or refusals received) for
    /// carrying a stale epoch.
    pub repl_stale_epochs: u64,
    /// Replicas currently subscribed to this primary's hub.
    pub repl_peers: u64,
    /// Lowest progress watermark across subscribed replicas.
    pub repl_min_peer_applied: u64,
    /// Peers whose anti-entropy stream digest matches the primary's.
    pub repl_digest_ok_peers: u64,
    /// Digest comparisons that disagreed (cumulative).
    pub repl_digest_mismatches: u64,
    /// Replica acks required to release a semi-sync commit (0 when
    /// semi-sync is off).
    pub repl_quorum: u64,
    /// 1 while the latest semi-sync wait met its quorum.
    pub repl_quorum_ok: u64,
}

/// The assembled active DBMS.
///
/// The accessors expose the paper's components directly — applications
/// use [`ActiveDatabase::store`] for data operations,
/// [`ActiveDatabase::begin`]/[`ActiveDatabase::commit`]/
/// [`ActiveDatabase::abort`] for transaction operations,
/// [`ActiveDatabase::define_event`]/[`ActiveDatabase::signal_event`]
/// for event operations, and [`ActiveDatabase::register_handler`] for
/// application operations (the four modules of Figure 4.1).
pub struct ActiveDatabase {
    tm: Arc<TransactionManager>,
    store: Arc<ObjectStore>,
    events: Arc<EventRegistry>,
    rules: Arc<RuleManager>,
    virtual_clock: Option<Arc<VirtualClock>>,
    durable: Option<Arc<DurableStore>>,
    repl: Arc<ReplCounters>,
}

impl ActiveDatabase {
    /// Start configuring a database.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// In-memory database with defaults.
    pub fn open_in_memory() -> Result<ActiveDatabase> {
        Builder::default().build()
    }

    // ---- component access ------------------------------------------------

    /// The Object Manager (§5.1): DDL, DML, queries.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// The Transaction Manager (§5.2).
    pub fn txn(&self) -> &Arc<TransactionManager> {
        &self.tm
    }

    /// The Event Detectors (§5.3).
    pub fn events(&self) -> &Arc<EventRegistry> {
        &self.events
    }

    /// The Rule Manager (§5.4).
    pub fn rules(&self) -> &Arc<RuleManager> {
        &self.rules
    }

    /// The durable store, when built with [`Builder::durable`]. The
    /// network layer uses it to persist the reply journal and push
    /// outbox alongside the data they acknowledge.
    pub fn durable_store(&self) -> Option<&Arc<DurableStore>> {
        self.durable.as_ref()
    }

    /// Replication gauges shared with the network layer (primary
    /// shipper) and `hipac-repl` (replica apply loop, promotion).
    pub fn repl_counters(&self) -> &Arc<ReplCounters> {
        &self.repl
    }

    // ---- transaction operations (Figure 4.1) -----------------------------

    /// Create a top-level transaction.
    pub fn begin(&self) -> TxnId {
        self.tm.begin()
    }

    /// Create a subtransaction.
    pub fn begin_child(&self, parent: TxnId) -> Result<TxnId> {
        self.tm.begin_child(parent)
    }

    /// Commit (runs deferred rule firings first, §6.3).
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.tm.commit(txn)
    }

    /// Abort (cascades to descendants).
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.tm.abort(txn)
    }

    /// Run `f` in a new top-level transaction; commit on `Ok`, abort on
    /// `Err`.
    pub fn run_top<T>(&self, f: impl FnOnce(TxnId) -> Result<T>) -> Result<T> {
        self.tm.run_top(f)
    }

    /// Run `f` in a subtransaction of `parent`.
    pub fn run_child<T>(&self, parent: TxnId, f: impl FnOnce(TxnId) -> Result<T>) -> Result<T> {
        self.tm.run_child(parent, f)
    }

    /// Attach (or clear, with `None`) a wall-clock deadline to a
    /// transaction. Lock waits by the transaction or its descendants
    /// return `DeadlineExceeded` once the deadline passes; used by
    /// `hipac-net` to propagate per-request deadlines into the engine.
    pub fn set_txn_deadline(&self, txn: TxnId, deadline: Option<std::time::Instant>) -> Result<()> {
        self.tm.tree().set_deadline(txn, deadline)
    }

    // ---- event operations (Figure 4.1) ------------------------------------

    /// Define an application-specific event with named parameters
    /// (§4.1 *define*). In durable mode, the definition persists and is
    /// replayed on reopen.
    pub fn define_event(&self, name: &str, params: &[&str]) -> Result<hipac_common::EventId> {
        let id = self
            .events
            .define_external(name, params.iter().map(|s| s.to_string()).collect())?;
        if let Some(d) = &self.durable {
            let mut key = Vec::with_capacity(1 + name.len());
            key.push(b'e');
            key.extend_from_slice(name.as_bytes());
            let row: Vec<Value> = params.iter().map(|p| Value::from(*p)).collect();
            d.commit(
                // TxnId(0) labels non-transactional metadata writes.
                TxnId(0),
                &[hipac_storage::StoreOp::Put {
                    key,
                    value: hipac_common::codec::encode_row(&row),
                }],
            )?;
        }
        Ok(id)
    }

    /// Raise an application-specific event (§4.1 *signal*). Pass the
    /// transaction when the signal is part of one; immediate/deferred
    /// rules then couple to it.
    pub fn signal_event(
        &self,
        name: &str,
        args: HashMap<String, Value>,
        txn: Option<TxnId>,
    ) -> Result<()> {
        self.events.signal_external(name, args, txn)
    }

    // ---- application operations (Figure 4.1) ------------------------------

    /// Register an application handler callable from rule actions
    /// (§4.1: HiPAC as client, application as server).
    pub fn register_handler<F>(&self, name: &str, f: F)
    where
        F: Fn(&str, &HashMap<String, Value>) -> Result<()> + Send + Sync + 'static,
    {
        self.rules.register_handler(name, Arc::new(FnHandler(f)));
    }

    /// Remove a previously registered handler (e.g. when the
    /// application endpoint disconnects). Returns whether it existed.
    pub fn unregister_handler(&self, name: &str) -> bool {
        self.rules.unregister_handler(name)
    }

    // ---- observability -----------------------------------------------------

    /// Snapshot engine activity counters.
    pub fn stats(&self) -> EngineStats {
        use std::sync::atomic::Ordering::Relaxed;
        let s = &self.rules.stats;
        let (deferred_txns, deferred_firings) = self.rules.deferred_sizes();
        let gc = self.durable.as_ref().map(|d| d.group_commit_stats());
        EngineStats {
            signals_processed: s.signals_processed.load(Relaxed),
            rules_triggered: s.rules_triggered.load(Relaxed),
            conditions_satisfied: s.conditions_satisfied.load(Relaxed),
            actions_executed: s.actions_executed.load(Relaxed),
            store_evaluations: s.store_evaluations.load(Relaxed),
            delta_evaluations: s.delta_evaluations.load(Relaxed),
            cache_hits: s.cache_hits.load(Relaxed),
            deferred_txns: deferred_txns as u64,
            deferred_firings: deferred_firings as u64,
            pool_outstanding: self.rules.pool_outstanding() as u64,
            separate_errors: self.rules.separate_error_count() as u64,
            firings_parallel: s.firings_parallel.load(Relaxed),
            pool_queue_depth: self.rules.firing_queue_depth() as u64,
            separate_retries: s.separate_retries.load(Relaxed),
            separate_dead_letters: s.separate_dead_letters.load(Relaxed),
            repl_role: self.repl.role.load(Relaxed),
            last_shipped_lsn: self.repl.last_shipped_lsn.load(Relaxed),
            last_applied_lsn: self.repl.last_applied_lsn.load(Relaxed),
            repl_lag_bytes: self.repl.lag_bytes.load(Relaxed),
            replica_pushes: self.repl.replica_pushes.load(Relaxed),
            promotions: self.repl.promotions.load(Relaxed),
            match_index_nodes: self.rules.match_index_nodes(),
            match_probes: self.rules.match_probes(),
            match_pruned: self.rules.match_pruned(),
            memo_hits: self.rules.memo_hits(),
            memo_invalidations: self.rules.memo_invalidations(),
            group_commits: gc.map(|g| g.groups).unwrap_or(0),
            group_commit_txns: gc.map(|g| g.grouped_txns).unwrap_or(0),
            group_commit_largest: gc.map(|g| g.largest_group).unwrap_or(0),
            repl_epoch: self.repl.epoch.load(Relaxed),
            repl_fence_prev: self.repl.fence_prev.load(Relaxed),
            repl_fence_start: self.repl.fence_start.load(Relaxed),
            repl_stale_epochs: self.repl.stale_epochs.load(Relaxed),
            repl_peers: self.repl.peers.load(Relaxed),
            repl_min_peer_applied: self.repl.min_peer_applied.load(Relaxed),
            repl_digest_ok_peers: self.repl.digest_ok_peers.load(Relaxed),
            repl_digest_mismatches: self.repl.digest_mismatches.load(Relaxed),
            repl_quorum: self.repl.quorum.load(Relaxed),
            repl_quorum_ok: self.repl.quorum_ok.load(Relaxed),
        }
    }

    // ---- clock / temporal --------------------------------------------------

    /// Advance the virtual clock by `delta` microseconds and fire due
    /// temporal events. Errors under [`ClockMode::System`].
    pub fn advance_clock(&self, delta: u64) -> Result<Timestamp> {
        let vc = self.virtual_clock.as_ref().ok_or_else(|| {
            HipacError::internal("advance_clock requires ClockMode::Virtual")
        })?;
        let t = vc.advance(delta);
        self.events.poll_temporal()?;
        Ok(t)
    }

    /// Fire due temporal events against the current clock.
    pub fn poll_temporal(&self) -> Result<()> {
        self.events.poll_temporal()
    }

    /// Current database time.
    pub fn now(&self) -> Timestamp {
        self.events.clock().now()
    }

    // ---- lifecycle ----------------------------------------------------------

    /// Wait for all separate-coupled firings submitted so far.
    pub fn quiesce(&self) {
        self.rules.quiesce();
    }

    /// Drain errors from separate-coupled firings.
    pub fn take_separate_errors(&self) -> Vec<(hipac_common::RuleId, HipacError)> {
        self.rules.take_separate_errors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipac_common::ValueType;
    use hipac_object::{AttrDef, Query};

    #[test]
    fn builder_defaults_and_components() {
        let db = ActiveDatabase::open_in_memory().unwrap();
        assert_eq!(db.now(), 0, "virtual clock starts at zero");
        let t = db.begin();
        db.store()
            .create_class(t, "c", None, vec![AttrDef::new("x", ValueType::Int)])
            .unwrap();
        db.store().insert(t, "c", vec![Value::from(1)]).unwrap();
        db.commit(t).unwrap();
        db.run_top(|t| {
            assert_eq!(db.store().query(t, &Query::all("c"), None)?.len(), 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn advance_clock_requires_virtual_mode() {
        let db = ActiveDatabase::builder()
            .clock(ClockMode::System)
            .build()
            .unwrap();
        assert!(db.advance_clock(1).is_err());
        assert!(db.now() > 0, "system clock is wall time");
        db.poll_temporal().unwrap();
    }

    #[test]
    fn storage_faults_thread_through_the_builder() {
        let dir = std::env::temp_dir().join(format!("hipac-db-faults-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faults = hipac_storage::FaultPolicy::count_only();
        let db = ActiveDatabase::builder()
            .durable(&dir)
            .storage_faults(Arc::clone(&faults))
            .build()
            .unwrap();
        db.run_top(|t| {
            db.store()
                .create_class(t, "c", None, vec![AttrDef::new("x", ValueType::Int)])?;
            db.store().insert(t, "c", vec![Value::from(1)])?;
            Ok(())
        })
        .unwrap();
        assert!(
            faults.hits() > 0,
            "durable commits must cross the injected fault points"
        );
    }

    #[test]
    fn event_define_and_signal_roundtrip() {
        let db = ActiveDatabase::open_in_memory().unwrap();
        db.define_event("ping", &["n"]).unwrap();
        let mut args = HashMap::new();
        args.insert("n".to_string(), Value::from(1));
        db.signal_event("ping", args, None).unwrap();
        db.quiesce();
        assert!(db.take_separate_errors().is_empty());
    }
}
