//! # HiPAC — an active DBMS with Event-Condition-Action rules
//!
//! A from-scratch Rust reproduction of *"The Architecture Of An Active
//! Data Base Management System"* (McCarthy & Dayal, SIGMOD 1989): an
//! object-oriented DBMS that executes user-specified actions
//! automatically when specified events occur, built on nested
//! transactions.
//!
//! ## Quick start
//!
//! ```
//! use hipac::prelude::*;
//!
//! let db = ActiveDatabase::builder().build().unwrap();
//!
//! // Schema + data (the Object Manager).
//! db.run_top(|t| {
//!     db.store().create_class(t, "stock", None, vec![
//!         AttrDef::new("symbol", ValueType::Str).indexed(),
//!         AttrDef::new("price", ValueType::Float),
//!     ])?;
//!     db.store().insert(t, "stock",
//!         vec![Value::from("XRX"), Value::from(48.0)])?;
//!     Ok(())
//! }).unwrap();
//!
//! // An ECA rule: when a stock's price reaches 50, ask the trader
//! // application to buy (the paper's flagship example).
//! db.register_handler("trader", |req: &str, args: &Args| {
//!     println!("{req}: {:?}", args.get("price"));
//!     Ok(())
//! });
//! db.run_top(|t| {
//!     db.rules().create_rule(t, RuleDef::new("buy-xerox")
//!         .on(EventSpec::on_update("stock"))
//!         .when(Query::parse(
//!             "from stock where new.price >= 50.0 and new.symbol = \"XRX\"")?)
//!         .then(Action::single(ActionOp::AppRequest {
//!             handler: "trader".into(),
//!             request: "buy".into(),
//!             args: vec![("price".into(), Expr::NewAttr("price".into()))],
//!         })))?;
//!     Ok(())
//! }).unwrap();
//!
//! // The rule fires inside this update (immediate coupling).
//! db.run_top(|t| {
//!     let row = &db.store().query(t, &Query::parse("from stock")?, None)?[0];
//!     db.store().update(t, row.oid, &[("price", Value::from(50.0))])
//! }).unwrap();
//! ```
//!
//! ## Architecture
//!
//! The five functional components of the paper's Figure 5.1 map to the
//! workspace crates:
//!
//! | Paper component     | Crate / type                           |
//! |---------------------|----------------------------------------|
//! | Object Manager      | `hipac-object` / [`ObjectStore`]       |
//! | Transaction Manager | `hipac-txn` / [`TransactionManager`]   |
//! | Event Detectors     | `hipac-event` / [`EventRegistry`]      |
//! | Rule Manager        | `hipac-rules` / [`RuleManager`]        |
//! | Condition Evaluator | `hipac-rules` / `ConditionEvaluator`   |
//!
//! [`ActiveDatabase`] wires them together and exposes the four-module
//! application interface of Figure 4.1: operations on **data**, on
//! **transactions**, on **events**, and **application operations**
//! (rule actions calling back into registered application handlers).

pub mod db;

pub use db::{ActiveDatabase, Builder, ClockMode, EngineStats};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::db::{ActiveDatabase, Builder, ClockMode, EngineStats};
    pub use hipac_common::{
        ClassId, EventId, HipacError, ObjectId, Result, RuleId, Timestamp, TxnId, Value,
        ValueType,
    };
    pub use hipac_event::spec::{DbEventKind, TemporalSpec};
    pub use hipac_event::{EventSignal, EventSpec};
    pub use hipac_object::expr::{BinOp, Expr};
    pub use hipac_object::query::Row;
    pub use hipac_object::{AttrDef, ObjectStore, Query};
    pub use hipac_rules::{
        Action, ActionOp, CouplingMode, DbAction, Matching, RuleDef, RuleManager,
    };
    pub use hipac_txn::TransactionManager;

    /// Argument map passed to application handlers.
    pub type Args = std::collections::HashMap<String, Value>;
}

pub use hipac_common::{
    ClassId, EventId, HipacError, ObjectId, Result, RuleId, Timestamp, TxnId, Value, ValueType,
};
pub use hipac_event::{EventRegistry, EventSignal, EventSpec};
pub use hipac_object::{AttrDef, ObjectStore, Query};
pub use hipac_rules::{Action, ActionOp, CouplingMode, DbAction, Matching, RuleDef, RuleManager};
pub use hipac_txn::TransactionManager;
