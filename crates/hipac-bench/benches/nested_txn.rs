//! E8 (§3.1): nested-transaction overhead.
//!
//! * commit cost of a flat top-level transaction vs the same work
//!   split across k nested levels (lock inheritance and version-layer
//!   folding at each commit);
//! * sibling-subtransaction fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac_common::{TxnId, Value};
use hipac_object::{AttrDef, ObjectStore};
use hipac_txn::TransactionManager;
use std::sync::Arc;

fn setup() -> (Arc<TransactionManager>, Arc<ObjectStore>, Vec<hipac_common::ObjectId>) {
    let tm = Arc::new(TransactionManager::new());
    let store = ObjectStore::new(Arc::clone(&tm), None).unwrap();
    let oids = tm
        .run_top(|t| {
            store.create_class(
                t,
                "acct",
                None,
                vec![AttrDef::new("balance", hipac_common::ValueType::Int)],
            )?;
            (0..64)
                .map(|i| store.insert(t, "acct", vec![Value::from(i)]))
                .collect()
        })
        .unwrap();
    (tm, store, oids)
}

fn bench_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_nested_transactions");

    // Depth sweep: one update at the innermost level of a k-deep chain.
    for &depth in &[0usize, 1, 2, 4, 8] {
        let (tm, store, oids) = setup();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("depth_chain", depth), |b| {
            b.iter(|| {
                i = (i + 1) % oids.len();
                let top = tm.begin();
                let mut chain = vec![top];
                for _ in 0..depth {
                    chain.push(tm.begin_child(*chain.last().unwrap()).unwrap());
                }
                store
                    .update(*chain.last().unwrap(), oids[i], &[("balance", Value::from(1))])
                    .unwrap();
                for txn in chain.iter().rev() {
                    tm.commit(*txn).unwrap();
                }
            })
        });
    }

    // Sibling fan-out: n sibling subtransactions each updating one
    // distinct object, then the parent commits.
    for &n in &[1usize, 4, 16, 64] {
        let (tm, store, oids) = setup();
        group.bench_function(BenchmarkId::new("sibling_fanout", n), |b| {
            b.iter(|| {
                let top = tm.begin();
                for (k, oid) in oids.iter().take(n).enumerate() {
                    tm.run_child(top, |child: TxnId| {
                        store.update(child, *oid, &[("balance", Value::from(k as i64))])
                    })
                    .unwrap();
                }
                tm.commit(top).unwrap();
            })
        });
    }

    // Read visibility through deep pending chains. The chain is built
    // once, outside the routine (Criterion invokes the routine closure
    // several times, and a second chain would block on the first one's
    // write locks).
    {
        let (tm, store, oids) = setup();
        let top = tm.begin();
        let mut cur = top;
        for _ in 0..8 {
            store
                .update(cur, oids[0], &[("balance", Value::from(7))])
                .unwrap();
            cur = tm.begin_child(cur).unwrap();
        }
        group.bench_function("deep_read_through_layers", |b| {
            b.iter(|| {
                store.get(cur, oids[0]).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nested);
criterion_main!(benches);
