//! E10: storage substrate microbenchmarks — WAL commit latency, B+tree
//! operations, durable-store put/get, checkpoint and recovery time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac_common::TxnId;
use hipac_storage::btree::BTree;
use hipac_storage::buffer::BufferPool;
use hipac_storage::disk::DiskManager;
use hipac_storage::{DurableStore, StoreOp};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hipac-bench-storage/{name}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_storage");
    group.sample_size(20);

    // Durable commit (WAL append + fsync + apply).
    for &batch in &[1usize, 16, 256] {
        let dir = tmpdir("commit");
        let store = DurableStore::open(&dir).unwrap();
        let mut k = 0u64;
        group.bench_function(BenchmarkId::new("durable_commit_ops", batch), |b| {
            b.iter(|| {
                let ops: Vec<StoreOp> = (0..batch)
                    .map(|j| {
                        k += 1;
                        StoreOp::Put {
                            key: format!("key{:012}", k * 1000 + j as u64).into_bytes(),
                            value: vec![7u8; 100],
                        }
                    })
                    .collect();
                store.commit(TxnId(k), &ops).unwrap();
            })
        });
    }

    // Point reads from a populated store.
    {
        let dir = tmpdir("get");
        let store = DurableStore::open(&dir).unwrap();
        let ops: Vec<StoreOp> = (0..10_000u64)
            .map(|i| StoreOp::Put {
                key: i.to_be_bytes().to_vec(),
                value: vec![1u8; 64],
            })
            .collect();
        store.commit(TxnId(1), &ops).unwrap();
        store.checkpoint().unwrap();
        let mut i = 0u64;
        group.bench_function("durable_get", |b| {
            b.iter(|| {
                i = (i + 7919) % 10_000;
                store.get(&i.to_be_bytes()).unwrap().unwrap();
            })
        });
    }

    // B+tree insert/get (buffered, no fsync).
    {
        let dir = tmpdir("btree");
        let pool = Arc::new(BufferPool::new(
            Arc::new(DiskManager::open(&dir.join("t.db")).unwrap()),
            256,
        ));
        let tree = BTree::create(pool).unwrap();
        let mut k = 0u64;
        group.bench_function("btree_insert", |b| {
            b.iter(|| {
                k += 1;
                tree.insert(&k.to_be_bytes(), &[5u8; 64]).unwrap();
            })
        });
        let mut i = 0u64;
        group.bench_function("btree_get", |b| {
            b.iter(|| {
                i = (i % k).wrapping_add(1);
                tree.get(&i.to_be_bytes()).unwrap();
            })
        });
    }

    // Recovery: reopen a store whose WAL holds N unapplied committed
    // batches (crash-simulation failpoint), measuring replay cost.
    for &batches in &[10usize, 100, 1000] {
        group.bench_function(BenchmarkId::new("recovery_replay", batches), |b| {
            b.iter_batched(
                || {
                    let dir = tmpdir("recover");
                    {
                        let store = DurableStore::open(&dir).unwrap();
                        for i in 0..batches as u64 {
                            store
                                .commit_log_only_for_crash_test(
                                    TxnId(i + 1),
                                    &[StoreOp::Put {
                                        key: i.to_be_bytes().to_vec(),
                                        value: vec![9u8; 64],
                                    }],
                                )
                                .unwrap();
                        }
                    }
                    dir
                },
                |dir| {
                    let store = DurableStore::open(&dir).unwrap();
                    assert_eq!(store.len().unwrap(), batches);
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }

    // Checkpoint cost vs live data volume.
    for &keys in &[1_000usize, 10_000] {
        let dir = tmpdir("ckpt");
        let store = DurableStore::open(&dir).unwrap();
        let ops: Vec<StoreOp> = (0..keys as u64)
            .map(|i| StoreOp::Put {
                key: i.to_be_bytes().to_vec(),
                value: vec![3u8; 128],
            })
            .collect();
        store.commit(TxnId(1), &ops).unwrap();
        group.bench_function(BenchmarkId::new("checkpoint", keys), |b| {
            b.iter(|| store.checkpoint().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
