//! E9 (§5.1): Object Manager throughput — DML and queries, index vs
//! scan, at several extent sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac::prelude::*;
use std::collections::HashMap;

fn populated(n: usize) -> (ActiveDatabase, Vec<ObjectId>) {
    let db = ActiveDatabase::builder().build().unwrap();
    let oids = db
        .run_top(|t| {
            db.store().create_class(
                t,
                "item",
                None,
                vec![
                    AttrDef::new("sku", ValueType::Str).indexed(),
                    AttrDef::new("qty", ValueType::Int),
                    AttrDef::new("note", ValueType::Str).nullable(),
                ],
            )?;
            (0..n)
                .map(|i| {
                    db.store().insert(
                        t,
                        "item",
                        vec![
                            Value::from(format!("SKU{i:06}")),
                            Value::from((i % 100) as i64),
                            Value::Null,
                        ],
                    )
                })
                .collect()
        })
        .unwrap();
    (db, oids)
}

fn bench_object_manager(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_object_manager");
    group.sample_size(30);

    // DML costs at a fixed extent.
    let (db, oids) = populated(10_000);
    let mut i = 0usize;
    group.bench_function("update_one_txn", |b| {
        b.iter(|| {
            i = (i + 1) % oids.len();
            db.run_top(|t| db.store().update(t, oids[i], &[("qty", Value::from(1))]))
                .unwrap();
        })
    });
    group.bench_function("insert_one_txn", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            db.run_top(|t| {
                db.store().insert(
                    t,
                    "item",
                    vec![
                        Value::from(format!("NEW{k:08}")),
                        Value::from(0),
                        Value::Null,
                    ],
                )
            })
            .unwrap();
        })
    });
    group.bench_function("get_by_oid", |b| {
        b.iter(|| {
            i = (i + 1) % oids.len();
            db.run_top(|t| db.store().get(t, oids[i])).unwrap();
        })
    });

    // Index probe vs full scan, sweeping the extent size. The paper's
    // §2.3 demands "efficient condition evaluation"; this is the
    // access-path half of that.
    for &n in &[1_000usize, 10_000, 50_000] {
        let (db, _oids) = populated(n);
        let target = format!("SKU{:06}", n / 2);
        let indexed = Query::parse(&format!("from item where sku = \"{target}\"")).unwrap();
        // qty is not indexed, so this predicate forces a full scan.
        let scan = Query::parse("from item where qty = 7").unwrap();
        let params: HashMap<String, Value> = HashMap::new();
        group.bench_function(BenchmarkId::new("query_index_eq", n), |b| {
            b.iter(|| {
                db.run_top(|t| db.store().query(t, &indexed, Some(&params)))
                    .unwrap();
            })
        });
        group.bench_function(BenchmarkId::new("query_full_scan", n), |b| {
            b.iter(|| {
                db.run_top(|t| db.store().query(t, &scan, Some(&params)))
                    .unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_object_manager);
criterion_main!(benches);
