//! F4.2 (Figure 4.2): the Securities Analyst's Assistant, end to end —
//! quote ingestion throughput with the full SAA rule set installed
//! (ticker-window display rule + threshold trading rule + trade
//! display rule), versus a passive database ingesting the same quotes.
//!
//! The paper's qualitative claim: all application interaction flows
//! through rule firings, with "condition and action together in a
//! separate transaction" keeping the ticker path fast. The measurable
//! shape: active ingestion costs a bounded constant factor over
//! passive ingestion, and the display/trade work happens off the
//! ticker's critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac::prelude::*;
use hipac_bench::workload::{apply_quote, counting_handler, seed_securities, Market};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

fn saa_db(with_rules: bool) -> (ActiveDatabase, Vec<ObjectId>, Arc<AtomicU64>) {
    let db = ActiveDatabase::builder().workers(4).build().unwrap();
    let market = Market::new(32, 1989, 0.02);
    let oids = seed_securities(&db, &market).unwrap();
    let displays = counting_handler(&db, "display");
    let _trades = counting_handler(&db, "trader");
    db.define_event("trade_executed", &["symbol", "shares"]).unwrap();
    if with_rules {
        db.run_top(|t| {
            db.rules().create_rule(
                t,
                RuleDef::new("ticker-window")
                    .on(EventSpec::on_update("stock"))
                    .then(Action::single(ActionOp::AppRequest {
                        handler: "display".into(),
                        request: "display_quote".into(),
                        args: vec![
                            ("symbol".into(), Expr::NewAttr("symbol".into())),
                            ("price".into(), Expr::NewAttr("price".into())),
                        ],
                    }))
                    .detached(),
            )?;
            db.rules().create_rule(
                t,
                RuleDef::new("buy-threshold")
                    .on(EventSpec::on_update("stock"))
                    .when(Query::parse(
                        "from stock where new.price >= 105.0 and old.price < 105.0",
                    )?)
                    .then(Action::single(ActionOp::AppRequest {
                        handler: "trader".into(),
                        request: "buy".into(),
                        args: vec![("symbol".into(), Expr::NewAttr("symbol".into()))],
                    }))
                    .detached(),
            )?;
            db.rules().create_rule(
                t,
                RuleDef::new("trade-display")
                    .on(EventSpec::external("trade_executed"))
                    .then(Action::single(ActionOp::AppRequest {
                        handler: "display".into(),
                        request: "display_trade".into(),
                        args: vec![("symbol".into(), Expr::param("symbol"))],
                    }))
                    .detached(),
            )?;
            Ok(())
        })
        .unwrap();
    }
    (db, oids, displays)
}

fn bench_saa(c: &mut Criterion) {
    let mut group = c.benchmark_group("F4_2_saa");
    group.sample_size(20);
    for (label, with_rules) in [("active_saa", true), ("passive_baseline", false)] {
        let (db, oids, _displays) = saa_db(with_rules);
        let mut market = Market::new(32, 7, 0.02);
        group.bench_function(BenchmarkId::new("quote_ingest", label), |b| {
            b.iter(|| {
                let q = market.quote();
                apply_quote(&db, &oids, q).unwrap();
            })
        });
        db.quiesce();
    }
    // End-to-end latency: one quote through update → rule → display,
    // waiting for the separate firing to land.
    {
        let (db, oids, displays) = saa_db(true);
        let mut market = Market::new(32, 9, 0.02);
        group.bench_function("quote_to_display_latency", |b| {
            b.iter(|| {
                let before = displays.load(std::sync::atomic::Ordering::Relaxed);
                let q = market.quote();
                apply_quote(&db, &oids, q).unwrap();
                db.quiesce();
                assert!(displays.load(std::sync::atomic::Ordering::Relaxed) > before);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_saa);
criterion_main!(benches);
