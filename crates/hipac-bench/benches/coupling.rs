//! E4 (§3.2): cost of the three coupling modes.
//!
//! One stock update triggering one rule, with the rule's E-C coupling
//! swept over immediate / deferred / separate. Expectation from the
//! execution model: immediate and deferred pay the subtransaction
//! inside the triggering transaction (deferred additionally batches at
//! commit); separate returns to the application fastest and pushes the
//! work onto the pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac::prelude::*;
use hipac_bench::workload::{seed_securities, Market};

fn bench_coupling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_coupling_modes");
    for (label, coupling) in [
        ("immediate", CouplingMode::Immediate),
        ("deferred", CouplingMode::Deferred),
        ("separate", CouplingMode::Separate),
    ] {
        let db = ActiveDatabase::builder().workers(4).build().unwrap();
        let market = Market::new(16, 42, 0.05);
        let oids = seed_securities(&db, &market).unwrap();
        db.run_top(|t| {
            db.rules().create_rule(
                t,
                RuleDef::new("probe")
                    .on(EventSpec::on_update("stock"))
                    .when(Query::parse("from stock where new.price >= 0.0").unwrap())
                    .then(Action::none())
                    .ec(coupling),
            )
        })
        .unwrap();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("update_with_rule", label), |b| {
            b.iter(|| {
                i = (i + 1) % oids.len();
                db.run_top(|t| {
                    db.store()
                        .update(t, oids[i], &[("price", Value::from(100.0 + i as f64))])
                })
                .unwrap();
            })
        });
        db.quiesce();
    }
    // Baseline: the same update with no rules at all.
    let db = ActiveDatabase::builder().build().unwrap();
    let market = Market::new(16, 42, 0.05);
    let oids = seed_securities(&db, &market).unwrap();
    let mut i = 0usize;
    group.bench_function(BenchmarkId::new("update_with_rule", "none(baseline)"), |b| {
        b.iter(|| {
            i = (i + 1) % oids.len();
            db.run_top(|t| {
                db.store()
                    .update(t, oids[i], &[("price", Value::from(100.0 + i as f64))])
            })
            .unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coupling);
criterion_main!(benches);
