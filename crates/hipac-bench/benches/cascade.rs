//! E6 (§3.2): cascading rule firings produce a tree of nested
//! transactions — measure firing cost versus cascade depth.
//!
//! A chain of classes `c0 … c{d}` with rules "insert into c{i} ⇒ insert
//! into c{i+1}"; one insert into `c0` cascades down the whole chain.
//! Expected shape: roughly linear in depth (each hop adds one
//! subtransaction + one insert + one rule dispatch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac::prelude::*;

fn setup(depth: usize) -> ActiveDatabase {
    let db = ActiveDatabase::builder().build().unwrap();
    db.run_top(|t| {
        for i in 0..=depth {
            db.store().create_class(
                t,
                &format!("c{i}"),
                None,
                vec![AttrDef::new("n", ValueType::Int)],
            )?;
        }
        for i in 0..depth {
            db.rules().create_rule(
                t,
                RuleDef::new(format!("hop{i}"))
                    .on(EventSpec::db(DbEventKind::Insert, Some(&format!("c{i}"))))
                    .then(Action::single(ActionOp::Db(DbAction::Insert {
                        class: format!("c{}", i + 1),
                        values: vec![Expr::NewAttr("n".into()).bin(BinOp::Add, Expr::lit(1))],
                    }))),
            )?;
        }
        Ok(())
    })
    .unwrap();
    db
}

fn bench_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_cascade_depth");
    group.sample_size(20);
    for &depth in &[0usize, 1, 2, 4, 8, 16] {
        let db = setup(depth);
        group.bench_function(BenchmarkId::new("insert_cascade", depth), |b| {
            b.iter(|| {
                db.run_top(|t| {
                    db.store().insert(t, "c0", vec![Value::from(0)])?;
                    Ok(())
                })
                .unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cascade);
criterion_main!(benches);
