//! NET: cost of crossing the Figure 4.1 interface over a socket instead
//! of in process — loopback round trips through hipac-net's wire
//! protocol for each interface module, plus the §4.1 role-reversal push
//! path (rule action → application request → push frame).

use criterion::{criterion_group, criterion_main, Criterion};
use hipac::prelude::*;
use hipac_net::{HipacClient, HipacServer};
use std::collections::HashMap;
use std::sync::Arc;

fn bench_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("NET_loopback_roundtrips");

    let db = Arc::new(ActiveDatabase::builder().workers(4).build().unwrap());
    let server = HipacServer::bind(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let client = HipacClient::connect(server.local_addr()).unwrap();

    let t = client.begin().unwrap();
    client
        .create_class(t, "datum", None, vec![AttrDef::new("v", ValueType::Int)])
        .unwrap();
    let oid = client.insert(t, "datum", vec![Value::from(0)]).unwrap();
    client.commit(t).unwrap();

    // Cheapest possible round trip: a stats snapshot.
    group.bench_function("stats_roundtrip", |b| {
        b.iter(|| {
            client.stats().unwrap();
        })
    });

    // Transaction module over the wire (three round trips).
    group.bench_function("txn_begin_commit", |b| {
        b.iter(|| {
            let t = client.begin().unwrap();
            client.commit(t).unwrap();
        })
    });

    // Data module over the wire.
    group.bench_function("data_update", |b| {
        b.iter(|| {
            let t = client.begin().unwrap();
            client
                .update(t, oid, vec![("v".into(), Value::from(1))])
                .unwrap();
            client.commit(t).unwrap();
        })
    });

    // Event module over the wire.
    client.define_event("net_event", &["n"]).unwrap();
    group.bench_function("event_signal_no_rules", |b| {
        let mut args = HashMap::new();
        args.insert("n".to_string(), Value::from(0));
        b.iter(|| {
            client.signal_event("net_event", args.clone(), None).unwrap();
        })
    });

    // Application module: event → rule → push frame back to a
    // subscribed client. Measures signal + push delivery latency.
    let subscriber = HipacClient::connect(server.local_addr()).unwrap();
    let (tx, rx) = crossbeam::channel::unbounded();
    subscriber
        .subscribe("net_app", move |_push| {
            let _ = tx.send(());
        })
        .unwrap();
    let t = client.begin().unwrap();
    client
        .create_rule(
            t,
            &RuleDef::new("net_echo")
                .on(EventSpec::external("net_event"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "net_app".into(),
                    request: "echo".into(),
                    args: vec![("n".into(), Expr::param("n"))],
                })),
        )
        .unwrap();
    client.commit(t).unwrap();
    group.bench_function("event_to_pushed_application_request", |b| {
        let mut args = HashMap::new();
        args.insert("n".to_string(), Value::from(1));
        b.iter(|| {
            client.signal_event("net_event", args.clone(), None).unwrap();
            rx.recv().unwrap();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
