//! E7 (§2.1): detection cost of primitive vs composite events.
//!
//! Signals an external event stream through the registry with
//! detectors for: a primitive event, a two-way disjunction, a
//! sequence, a conjunction, and a relative temporal event. Measures
//! per-signal dispatch cost, including the automaton stepping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac_common::{Clock, VirtualClock};
use hipac_event::spec::TemporalSpec;
use hipac_event::{EventRegistry, EventSpec};
use std::collections::HashMap;
use std::sync::Arc;

fn registry() -> (Arc<VirtualClock>, EventRegistry) {
    let clock = Arc::new(VirtualClock::new());
    let reg = EventRegistry::new(Arc::clone(&clock) as Arc<dyn Clock>);
    reg.define_external("a", vec![]).unwrap();
    reg.define_external("b", vec![]).unwrap();
    (clock, reg)
}

fn bench_composite(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_composite_events");
    type SpecFn = fn() -> EventSpec;
    let cases: Vec<(&str, SpecFn)> = vec![
        ("primitive", || EventSpec::external("a")),
        ("disjunction", || {
            EventSpec::external("a").or(EventSpec::external("b"))
        }),
        ("sequence", || {
            EventSpec::external("a").then(EventSpec::external("b"))
        }),
        ("conjunction", || {
            EventSpec::external("a").and(EventSpec::external("b"))
        }),
        ("relative_temporal", || {
            EventSpec::Temporal(TemporalSpec::Relative {
                baseline: Box::new(EventSpec::external("a")),
                offset: 10,
            })
        }),
    ];
    for (label, spec) in cases {
        let (clock, reg) = registry();
        reg.define_event(spec()).unwrap();
        let mut flip = false;
        group.bench_function(BenchmarkId::new("signal", label), |bch| {
            bch.iter(|| {
                flip = !flip;
                let name = if flip { "a" } else { "b" };
                reg.signal_external(name, HashMap::new(), None).unwrap();
                clock.advance(20);
                reg.poll_temporal().unwrap();
            })
        });
    }
    // Scaling: many subscribed composite events on one signal.
    for &n in &[1usize, 16, 256] {
        let (_clock, reg) = registry();
        for _ in 0..n {
            reg.define_event(EventSpec::external("a").then(EventSpec::external("b")))
                .unwrap();
        }
        group.bench_function(BenchmarkId::new("signal_fanout", n), |bch| {
            bch.iter(|| {
                reg.signal_external("a", HashMap::new(), None).unwrap();
                reg.signal_external("b", HashMap::new(), None).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_composite);
criterion_main!(benches);
