//! E5 (§2.3/§5.5): condition evaluation as the rule base grows.
//!
//! Sweep the number of rules triggered by one event from 1 to 1024,
//! comparing:
//!
//! * **shared** — all rules carry the *same* condition query: the
//!   condition graph evaluates it once and serves the rest from the
//!   shared node (multiple-query optimization);
//! * **distinct** — every rule carries its own query: no sharing
//!   possible;
//! * **delta vs store** — the same sweep with conditions answerable
//!   from the update delta (no store access) versus conditions that
//!   must query the store.
//!
//! Expected shape: shared scales ~O(1) in evaluation work (the paper's
//! motivation for condition graphs), distinct scales O(rules); delta
//! evaluation beats store evaluation by a widening margin as data
//! grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac::prelude::*;
use hipac_bench::workload::{seed_securities, Market};

fn setup(rules: usize, shared: bool, delta: bool) -> (ActiveDatabase, Vec<ObjectId>) {
    let db = ActiveDatabase::builder().build().unwrap();
    let market = Market::new(64, 7, 0.05);
    let oids = seed_securities(&db, &market).unwrap();
    db.run_top(|t| {
        for i in 0..rules {
            let threshold = if shared { 1e9 } else { 1e9 + i as f64 };
            let predicate = if delta {
                Expr::NewAttr("price".into()).bin(BinOp::Ge, Expr::lit(threshold))
            } else {
                Expr::attr("price").bin(BinOp::Ge, Expr::lit(threshold))
            };
            db.rules().create_rule(
                t,
                RuleDef::new(format!("r{i}"))
                    .on(EventSpec::on_update("stock"))
                    .when(Query::filtered("stock", predicate))
                    .then(Action::none()),
            )?;
        }
        Ok(())
    })
    .unwrap();
    (db, oids)
}

/// Install `n` threshold rules whose guards can never match a quoted
/// price (distinct thresholds, so the discrimination network spreads
/// them across range-node entries) plus four that always stay
/// candidates. Chunked commits keep any single transaction's unstable
/// set bounded.
fn setup_wall(matching: Matching, n: usize) -> (ActiveDatabase, Vec<ObjectId>) {
    let db = ActiveDatabase::builder().matching(matching).build().unwrap();
    let market = Market::new(16, 7, 0.05);
    let oids = seed_securities(&db, &market).unwrap();
    let mut made = 0usize;
    while made < n {
        let end = (made + 10_000).min(n);
        db.run_top(|t| {
            for i in made..end {
                db.rules().create_rule(
                    t,
                    RuleDef::new(format!("cold{i}"))
                        .on(EventSpec::on_update("stock"))
                        .when(Query::filtered(
                            "stock",
                            Expr::NewAttr("price".into())
                                .bin(BinOp::Ge, Expr::lit(1e6 + i as f64)),
                        ))
                        .then(Action::none()),
                )?;
            }
            Ok(())
        })
        .unwrap();
        made = end;
    }
    db.run_top(|t| {
        for i in 0..4 {
            db.rules().create_rule(
                t,
                RuleDef::new(format!("hot{i}"))
                    .on(EventSpec::on_update("stock"))
                    .when(Query::filtered(
                        "stock",
                        Expr::NewAttr("price".into()).bin(BinOp::Ge, Expr::lit(0.0)),
                    ))
                    .then(Action::none()),
            )?;
        }
        Ok(())
    })
    .unwrap();
    (db, oids)
}

/// MATCH: candidate resolution as the rule base grows to 1M rules.
/// Network-mode updates should stay near-flat across the sweep
/// (O(matches) candidate resolution); naive dispatch is measured only
/// to 10k rules because it is linear by construction.
fn bench_match_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("MATCH_rule_base_sweep");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let (db, oids) = setup_wall(Matching::Network, n);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("network", n), |b| {
            b.iter(|| {
                i = (i + 1) % oids.len();
                db.run_top(|t| {
                    db.store()
                        .update(t, oids[i], &[("price", Value::from(50.0))])
                })
                .unwrap();
            })
        });
    }
    for &n in &[1_000usize, 10_000] {
        let (db, oids) = setup_wall(Matching::Naive, n);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("naive", n), |b| {
            b.iter(|| {
                i = (i + 1) % oids.len();
                db.run_top(|t| {
                    db.store()
                        .update(t, oids[i], &[("price", Value::from(50.0))])
                })
                .unwrap();
            })
        });
    }
    group.finish();
}

fn bench_condition_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_condition_graph");
    group.sample_size(20);
    for &n in &[1usize, 4, 16, 64, 256, 1024] {
        for (label, shared, delta) in [
            ("shared_delta", true, true),
            ("distinct_delta", false, true),
            ("shared_store", true, false),
            ("distinct_store", false, false),
        ] {
            let (db, oids) = setup(n, shared, delta);
            let mut i = 0usize;
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter(|| {
                    i = (i + 1) % oids.len();
                    db.run_top(|t| {
                        db.store()
                            .update(t, oids[i], &[("price", Value::from(50.0))])
                    })
                    .unwrap();
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_condition_graph, bench_match_sweep);
criterion_main!(benches);
