//! E11 (ISSUE 3): fan-out firing — one update triggers N rules whose
//! action subtransactions run as concurrent siblings of the suspended
//! parent.
//!
//! Each rule's action issues an `AppRequest` to a handler that blocks
//! ~200µs, modelling the paper's §4.1 application service round trips;
//! overlapping those waits is what the firing pool buys, even on one
//! core. Expected shape: at parallelism 1 the cost grows linearly with
//! N; at parallelism 4 it grows at roughly N/4 once N exceeds the
//! pool width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac::prelude::*;

fn setup(n: usize, parallelism: usize) -> (ActiveDatabase, ObjectId) {
    let db = ActiveDatabase::builder()
        .firing_parallelism(parallelism)
        .build()
        .unwrap();
    db.register_handler("service", |_req: &str, _args: &Args| {
        std::thread::sleep(std::time::Duration::from_micros(200));
        Ok(())
    });
    db.run_top(|t| {
        db.store()
            .create_class(t, "src", None, vec![AttrDef::new("val", ValueType::Int)])?;
        for i in 0..n {
            db.rules().create_rule(
                t,
                RuleDef::new(format!("fan{i}"))
                    .on(EventSpec::on_update("src"))
                    .then(Action::single(ActionOp::AppRequest {
                        handler: "service".into(),
                        request: format!("r{i}"),
                        args: vec![],
                    })),
            )?;
        }
        Ok(())
    })
    .unwrap();
    let oid = db
        .run_top(|t| db.store().insert(t, "src", vec![Value::from(0)]))
        .unwrap();
    (db, oid)
}

fn bench_fanout(c: &mut Criterion) {
    for &parallelism in &[1usize, 4] {
        let mut group = c.benchmark_group(format!("E11_fanout_p{parallelism}"));
        group.sample_size(10);
        for &n in &[1usize, 4, 16, 64] {
            let (db, oid) = setup(n, parallelism);
            let mut v = 0i64;
            group.bench_function(BenchmarkId::new("update_fanout", n), |b| {
                b.iter(|| {
                    v += 1;
                    db.run_top(|t| db.store().update(t, oid, &[("val", Value::from(v))]))
                        .unwrap();
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
