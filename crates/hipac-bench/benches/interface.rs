//! F4.1 (Figure 4.1): cost of crossing the application/DBMS interface
//! through each of its four modules — operations on data, on
//! transactions, on events, and application operations (a rule action
//! calling back into the application).

use criterion::{criterion_group, criterion_main, Criterion};
use hipac::prelude::*;
use hipac_bench::workload::counting_handler;
use std::collections::HashMap;

fn bench_interface(c: &mut Criterion) {
    let mut group = c.benchmark_group("F4_1_interface_modules");

    let db = ActiveDatabase::builder().build().unwrap();
    db.run_top(|t| {
        db.store().create_class(
            t,
            "datum",
            None,
            vec![AttrDef::new("v", ValueType::Int)],
        )
    })
    .unwrap();
    let oid = db
        .run_top(|t| db.store().insert(t, "datum", vec![Value::from(0)]))
        .unwrap();

    // Module 1: operations on transactions (empty begin/commit).
    group.bench_function("txn_begin_commit", |b| {
        b.iter(|| {
            let t = db.begin();
            db.commit(t).unwrap();
        })
    });

    // Module 2: operations on data (one update inside a transaction).
    group.bench_function("data_update", |b| {
        b.iter(|| {
            db.run_top(|t| db.store().update(t, oid, &[("v", Value::from(1))]))
                .unwrap();
        })
    });

    // Module 3: operations on events (define once, signal many).
    db.define_event("app_event", &["n"]).unwrap();
    group.bench_function("event_signal_no_rules", |b| {
        let mut args = HashMap::new();
        args.insert("n".to_string(), Value::from(0));
        b.iter(|| {
            db.signal_event("app_event", args.clone(), None).unwrap();
        })
    });

    // Module 4: application operations (event → rule → handler).
    let counter = counting_handler(&db, "app");
    db.run_top(|t| {
        db.rules().create_rule(
            t,
            RuleDef::new("echo")
                .on(EventSpec::external("app_event"))
                .then(Action::single(ActionOp::AppRequest {
                    handler: "app".into(),
                    request: "echo".into(),
                    args: vec![("n".into(), Expr::param("n"))],
                })),
        )
    })
    .unwrap();
    group.bench_function("event_to_application_roundtrip", |b| {
        let mut args = HashMap::new();
        args.insert("n".to_string(), Value::from(1));
        b.iter(|| {
            db.signal_event("app_event", args.clone(), None).unwrap();
            db.quiesce();
        })
    });
    assert!(counter.load(std::sync::atomic::Ordering::Relaxed) > 0);
    group.finish();
}

criterion_group!(benches, bench_interface);
criterion_main!(benches);
