//! F5.1 (Figure 5.1): the functional-component interaction path —
//! cost of one event signal flowing Object Manager → Event Detector →
//! Rule Manager → Transaction Manager → Condition Evaluator, as the
//! number of attached rules grows (0, 1, N), separating dispatch cost
//! from evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hipac::prelude::*;
use hipac_bench::workload::{seed_securities, threshold_rules, Market};

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("F5_1_component_path");
    group.sample_size(30);
    for &rules in &[0usize, 1, 8, 64] {
        let db = ActiveDatabase::builder().build().unwrap();
        let market = Market::new(8, 3, 0.02);
        let oids = seed_securities(&db, &market).unwrap();
        if rules > 0 {
            threshold_rules(&db, rules, false, CouplingMode::Immediate).unwrap();
        }
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("signal_path_rules", rules), |b| {
            b.iter(|| {
                i = (i + 1) % oids.len();
                db.run_top(|t| {
                    db.store()
                        .update(t, oids[i], &[("price", Value::from(55.0))])
                })
                .unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
