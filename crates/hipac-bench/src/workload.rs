//! Workload generators for the benchmark suite.
//!
//! The paper's SAA application consumed a live wire-service price feed;
//! per DESIGN.md we substitute a seeded synthetic quote stream with the
//! same shape (symbol, new price) and configurable volatility.

use hipac::prelude::*;
use rand::prelude::*;
use std::sync::Arc;

/// A synthetic market: `n` securities with geometric random-walk
/// prices.
pub struct Market {
    pub symbols: Vec<String>,
    prices: Vec<f64>,
    rng: StdRng,
    volatility: f64,
}

impl Market {
    /// Deterministic market with `n` symbols starting at 100.0.
    pub fn new(n: usize, seed: u64, volatility: f64) -> Market {
        Market {
            symbols: (0..n).map(|i| format!("SYM{i:04}")).collect(),
            prices: vec![100.0; n],
            rng: StdRng::seed_from_u64(seed),
            volatility,
        }
    }

    /// Next quote: (symbol index, new price).
    pub fn quote(&mut self) -> (usize, f64) {
        let i = self.rng.gen_range(0..self.symbols.len());
        let step = 1.0 + self.volatility * (self.rng.gen::<f64>() - 0.5);
        self.prices[i] = (self.prices[i] * step).max(0.01);
        (i, self.prices[i])
    }

    /// Current price of symbol `i`.
    pub fn price(&self, i: usize) -> f64 {
        self.prices[i]
    }
}

/// Create the SAA securities schema and populate `n` stocks; returns
/// their object ids in symbol order.
pub fn seed_securities(db: &ActiveDatabase, market: &Market) -> Result<Vec<ObjectId>> {
    db.run_top(|t| {
        db.store().create_class(
            t,
            "security",
            None,
            vec![
                AttrDef::new("symbol", ValueType::Str).indexed(),
                AttrDef::new("price", ValueType::Float),
            ],
        )?;
        db.store().create_class(
            t,
            "stock",
            Some("security"),
            vec![AttrDef::new("exchange", ValueType::Str).nullable()],
        )?;
        let mut oids = Vec::with_capacity(market.symbols.len());
        for (i, sym) in market.symbols.iter().enumerate() {
            oids.push(db.store().insert(
                t,
                "stock",
                vec![
                    Value::from(sym.as_str()),
                    Value::from(market.price(i)),
                    Value::from("NYSE"),
                ],
            )?);
        }
        Ok(oids)
    })
}

/// Apply one ticker quote: update the stock's price in its own
/// transaction (the Ticker program of §4.2).
pub fn apply_quote(
    db: &ActiveDatabase,
    oids: &[ObjectId],
    quote: (usize, f64),
) -> Result<()> {
    db.run_top(|t| {
        db.store()
            .update(t, oids[quote.0], &[("price", Value::from(quote.1))])
    })
}

/// Build a fleet of threshold rules ("buy when price crosses K"), one
/// per rule index, optionally all sharing one condition (for the
/// condition-graph sharing experiment).
pub fn threshold_rules(
    db: &ActiveDatabase,
    count: usize,
    shared_condition: bool,
    coupling: CouplingMode,
) -> Result<Vec<RuleId>> {
    db.run_top(|t| {
        let mut ids = Vec::with_capacity(count);
        for i in 0..count {
            let threshold = if shared_condition {
                1_000_000.0 // never satisfied; we measure evaluation cost
            } else {
                1_000_000.0 + i as f64
            };
            let rule = RuleDef::new(format!("threshold-{i}"))
                .on(EventSpec::on_update("stock"))
                .when(Query::filtered(
                    "stock",
                    Expr::NewAttr("price".into()).bin(BinOp::Ge, Expr::lit(threshold)),
                ))
                .then(Action::none())
                .ec(coupling);
            ids.push(db.rules().create_rule(t, rule)?);
        }
        Ok(ids)
    })
}

/// A no-op application handler counting invocations.
pub fn counting_handler(db: &ActiveDatabase, name: &str) -> Arc<std::sync::atomic::AtomicU64> {
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let c = Arc::clone(&counter);
    db.register_handler(name, move |_req: &str, _args: &Args| {
        c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    });
    counter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn market_is_deterministic() {
        let mut a = Market::new(4, 7, 0.02);
        let mut b = Market::new(4, 7, 0.02);
        for _ in 0..100 {
            assert_eq!(a.quote(), b.quote());
        }
        assert!(a.price(0) > 0.0);
    }

    #[test]
    fn seed_and_quote_roundtrip() {
        let db = ActiveDatabase::open_in_memory().unwrap();
        let mut market = Market::new(8, 1, 0.05);
        let oids = seed_securities(&db, &market).unwrap();
        assert_eq!(oids.len(), 8);
        for _ in 0..20 {
            let q = market.quote();
            apply_quote(&db, &oids, q).unwrap();
        }
        db.run_top(|t| {
            let rows = db.store().query(t, &Query::all("stock"), None)?;
            assert_eq!(rows.len(), 8);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn threshold_rules_install() {
        let db = ActiveDatabase::open_in_memory().unwrap();
        let market = Market::new(2, 1, 0.05);
        let oids = seed_securities(&db, &market).unwrap();
        let ids = threshold_rules(&db, 16, true, CouplingMode::Immediate).unwrap();
        assert_eq!(ids.len(), 16);
        // Updates never satisfy: the naive path triggers (and fails)
        // every rule; the discrimination network prunes them before
        // they trigger at all.
        apply_quote(&db, &oids, (0, 50.0)).unwrap();
        use std::sync::atomic::Ordering;
        match db.rules().matching() {
            hipac::Matching::Naive => {
                assert!(db.rules().stats.rules_triggered.load(Ordering::Relaxed) >= 16);
            }
            hipac::Matching::Network => {
                assert!(db.rules().match_pruned() >= 16);
            }
        }
        assert_eq!(
            db.rules().stats.conditions_satisfied.load(Ordering::Relaxed),
            0
        );
    }
}
