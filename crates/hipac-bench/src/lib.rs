//! Benchmark harness crate: workload generators shared by the Criterion
//! benches (see `benches/`) that regenerate the experiments indexed in
//! `DESIGN.md` §5 / `EXPERIMENTS.md`.

pub mod workload;
