#!/usr/bin/env bash
# CI gate: build, full test suite, the deterministic fault/serializability
# torture suites, and (when available) clippy as a hard error.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (full workspace, network matching — the default)"
cargo test -q

echo "==> cargo test -q (naive matching: engine-level suites under the oracle dispatch path)"
HIPAC_MATCHING=naive cargo test -q -p hipac -p hipac-rules -p hipac-bench

echo "==> matching differential suite (naive vs network, both default modes)"
cargo test -q -p hipac --test matching_diff
HIPAC_MATCHING=naive cargo test -q -p hipac --test matching_diff

echo "==> discrimination-network property suite (prune exactness, memo staleness)"
cargo test -q -p hipac-rules --test match_properties

echo "==> match bench smoke (1k/10k rules, network vs naive dispatch)"
cargo run --release -q -p hipac-bench --bin report -- --only match --smoke

echo "==> crash matrix (deterministic, fixed seed)"
cargo test -q -p hipac-storage --test crash_matrix

echo "==> serializability-checked stress suites"
cargo test -q -p hipac --test chaos --test coupling_stress

echo "==> parallel-firing differential suite (includes parallelism 2)"
cargo test -q -p hipac --test parallel_firing

echo "==> fanout bench smoke (N=16, 1 iteration, both parallelism levels)"
cargo run --release -q -p hipac-bench --bin report -- --only fanout --smoke

echo "==> network chaos suite (fixed seed matrix 11/22/33, exactly-once torture)"
cargo test -q -p hipac-net --test resilience

echo "==> separate-mode firing recovery (deadlock retry + dead-letter)"
cargo test -q -p hipac-rules --test rule_manager_tests separate

echo "==> netchaos bench smoke (0% vs 5% faults, seed 4242)"
cargo run --release -q -p hipac-bench --bin report -- --only netchaos --smoke --json netchaos

echo "==> crash-restart torture (fixed seeds 101/202/303, durable exactly-once)"
cargo test -q -p hipac-check --test restart_torture

echo "==> restart bench cell (recovery time + journal replay hit rate)"
cargo run --release -q -p hipac-bench --bin report -- --only restart --smoke --json restart

echo "==> replication suite (WAL shipping, replica reads, promotion)"
cargo test -q -p hipac-repl

echo "==> failover torture (fixed seeds 101/202/303, exactly-once across promotion)"
cargo test -q -p hipac-check --test failover_torture

echo "==> split-brain torture (fixed seeds 101/202/303, epoch fence + divergence repair + 3-replica quorum)"
cargo test -q -p hipac-check --test splitbrain_torture

echo "==> ReplGap resubscribe under group commit (cohort batch boundaries)"
cargo test -q -p hipac-check --test repl_gap
cargo test -q -p hipac-storage --test wal_tail gap

echo "==> repl bench cell (lag, replica vs primary serving, failover + splitbrain + quorum)"
cargo run --release -q -p hipac-bench --bin report -- --only repl --smoke --json repl

echo "==> group commit: tier-1 engine suites in both commit modes"
HIPAC_GROUP_COMMIT=on cargo test -q -p hipac -p hipac-storage
HIPAC_GROUP_COMMIT=off cargo test -q -p hipac -p hipac-storage

echo "==> group commit differential suite (on vs off, both matching modes, crash sweep)"
cargo test -q -p hipac-check --test group_commit_diff

echo "==> group crash matrix (pre-fsync / post-fsync-pre-wake) + interleaving property test"
cargo test -q -p hipac-check --test restart_torture group_commit_crash_matrix
cargo test -q -p hipac-storage --test proptests group_commit_interleavings

echo "==> reactor load suite (idle horde, slow subscriber, cross-shard dedup)"
HORDE_N=2000 cargo test -q -p hipac-net --test reactor_load

echo "==> groupcommit bench cell (substrate + full stack + push latency)"
cargo run --release -q -p hipac-bench --bin report -- --only groupcommit --smoke --json groupcommit

echo "==> multi-tenant suite (auth sessions, tenant caps, slow-subscriber eviction)"
cargo test -q -p hipac-net --test tenants

echo "==> tenant-isolation torture (fixed seeds 101/202/303, eviction crash sweep)"
cargo test -q -p hipac-check --test tenant_torture

echo "==> qos bench cell (quiet-tenant p50/p99 unloaded vs noisy-neighbor flood)"
cargo run --release -q -p hipac-bench --bin report -- --only qos --smoke --json qos

# The offline toolchain may ship without clippy; lint hard when present.
if cargo clippy --version >/dev/null 2>&1; then
  echo "==> cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "==> clippy unavailable in this toolchain; skipping lint"
fi

echo "==> CI OK"
